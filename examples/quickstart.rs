//! Quickstart: the pentagon code end to end.
//!
//! Builds the pentagon code, encodes a stripe, survives a two-node failure,
//! plans the repair (10 block transfers, as in §2.1 of the paper), and
//! computes the code's storage overhead and MTTDL.
//!
//! Run with: `cargo run --example quickstart`

use std::collections::{BTreeMap, BTreeSet};

use drc_core::codes::CodeKind;
use drc_core::reliability::{group_mttdl, ReliabilityParams};
use drc_core::DrcError;

fn main() -> Result<(), DrcError> {
    // 1. Build the pentagon code: 9 data blocks -> 20 stored blocks on 5 nodes.
    let pentagon = CodeKind::Pentagon.build()?;
    println!(
        "{}: {} data blocks, {} stored blocks on {} nodes ({:.2}x overhead, tolerates {} failures)",
        pentagon.name(),
        pentagon.data_blocks(),
        pentagon.stored_blocks(),
        pentagon.node_count(),
        pentagon.storage_overhead(),
        pentagon.fault_tolerance(),
    );

    // 2. Encode a stripe of real data.
    let data: Vec<Vec<u8>> = (0..9).map(|i| vec![i as u8 + 1; 64 * 1024]).collect();
    let coded = pentagon.encode(&data)?;
    println!(
        "encoded {} distinct blocks (the last one is the XOR parity)",
        coded.len()
    );

    // 3. Lose two nodes and decode from the survivors.
    let failed: BTreeSet<usize> = [0, 1].into_iter().collect();
    assert!(pentagon.can_recover(&failed));
    let mut available = BTreeMap::new();
    for node in 0..pentagon.node_count() {
        if failed.contains(&node) {
            continue;
        }
        for &block in pentagon.node_blocks(node) {
            available.insert(block, coded[block].clone());
        }
    }
    let recovered = pentagon.decode(&available, 64 * 1024)?;
    assert_eq!(recovered, data);
    println!("decoded all 9 data blocks from the 3 surviving nodes");

    // 4. Plan the repair of the two failed nodes.
    let plan = pentagon.repair_plan(&failed)?;
    println!(
        "repairing nodes {:?} moves {} blocks over the network ({} of them partial parities)",
        plan.failed_nodes,
        plan.network_blocks(),
        plan.partial_parity_transfers(),
    );

    // 5. Reliability: compare the pentagon with 3-way replication (Table 1).
    let params = ReliabilityParams::default();
    let pentagon_mttdl = group_mttdl(pentagon.as_ref(), &params)?;
    let three_rep = CodeKind::THREE_REP.build()?;
    let three_rep_mttdl = group_mttdl(three_rep.as_ref(), &params)?;
    println!(
        "MTTDL: pentagon {:.2e} years vs 3-rep {:.2e} years (storage {:.2}x vs 3x)",
        pentagon_mttdl.mttdl_years,
        three_rep_mttdl.mttdl_years,
        pentagon.storage_overhead(),
    );
    Ok(())
}
