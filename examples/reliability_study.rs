//! Reliability study: Table 1 plus a sensitivity analysis.
//!
//! Reproduces the paper's Table 1 (storage overhead, code length, MTTDL) with
//! the default failure/repair calibration, then shows how the MTTDL of each
//! code responds to the repair time, and cross-checks the Markov model
//! against Monte-Carlo simulation with artificially failure-prone parameters.
//!
//! Run with: `cargo run --release --example reliability_study`

use drc_core::codes::CodeKind;
use drc_core::experiments::table1::run_table1;
use drc_core::reliability::{group_mttdl, monte_carlo_mttdl, FatalityModel, ReliabilityParams};
use drc_core::{scientific, DrcError, TextTable};

fn main() -> Result<(), DrcError> {
    // 1. Table 1 with the default calibration.
    let table1 = run_table1(&ReliabilityParams::default())?;
    println!("{table1}");

    // 2. Sensitivity: how MTTDL scales with repair time.
    let mut sensitivity = TextTable::new(
        "MTTDL (years) vs repair time",
        &["Code", "0.5 h", "1.2 h", "6 h", "24 h"],
    );
    for kind in CodeKind::table1_set() {
        let code = kind.build()?;
        let mut cells = vec![kind.to_string()];
        for hours in [0.5, 1.2, 6.0, 24.0] {
            let params = ReliabilityParams {
                node_repair_hours: hours,
                ..ReliabilityParams::default()
            };
            cells.push(scientific(group_mttdl(code.as_ref(), &params)?.mttdl_years));
        }
        sensitivity.push_row(cells);
    }
    println!("{sensitivity}");

    // 3. Pattern-aware vs worst-case models.
    let mut models = TextTable::new(
        "Worst-case vs pattern-aware fatality model (years)",
        &["Code", "Worst-case", "Pattern-aware"],
    );
    for kind in [
        CodeKind::RAID_M_10_9,
        CodeKind::HeptagonLocal,
        CodeKind::Pentagon,
    ] {
        let code = kind.build()?;
        let worst = group_mttdl(code.as_ref(), &ReliabilityParams::default())?;
        let aware = group_mttdl(
            code.as_ref(),
            &ReliabilityParams::default().with_fatality_model(FatalityModel::PatternAware),
        )?;
        models.push_row(vec![
            kind.to_string(),
            scientific(worst.mttdl_years),
            scientific(aware.mttdl_years),
        ]);
    }
    println!("{models}");

    // 4. Monte-Carlo cross-check with failure-prone parameters.
    let fast = ReliabilityParams {
        node_mttf_hours: 100.0,
        node_repair_hours: 40.0,
        ..ReliabilityParams::default()
    };
    let mut check = TextTable::new(
        "Markov vs Monte-Carlo (failure-prone parameters, hours)",
        &["Code", "Markov", "Monte-Carlo", "Std error"],
    );
    for kind in [CodeKind::THREE_REP, CodeKind::Pentagon, CodeKind::Heptagon] {
        let code = kind.build()?;
        let markov = group_mttdl(code.as_ref(), &fast)?;
        let mc = monte_carlo_mttdl(code.as_ref(), &fast, 3000, 7);
        check.push_row(vec![
            kind.to_string(),
            format!("{:.1}", markov.mttdl_hours),
            format!("{:.1}", mc.mean_hours),
            format!("{:.1}", mc.std_error_hours),
        ]);
    }
    println!("{check}");
    Ok(())
}
