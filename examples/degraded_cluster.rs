//! Degraded-cluster walk-through on the simulated HDFS.
//!
//! Writes a file protected by the heptagon-local code, kills three nodes of
//! one heptagon, reads the file back through degraded reads, lets the
//! RaidNode repair the lost replicas, and prints the network traffic of every
//! step.
//!
//! Run with: `cargo run --release --example degraded_cluster`

use drc_core::cluster::ClusterSpec;
use drc_core::codes::CodeKind;
use drc_core::hdfs::DistributedFileSystem;
use drc_core::DrcError;

fn main() -> Result<(), DrcError> {
    // A 25-node cluster with 1 MiB blocks keeps the walk-through instant.
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = 1;
    let mut fs = DistributedFileSystem::new(spec, 2014);

    // Write one heptagon-local file (40 data blocks per stripe) and one
    // pentagon file for comparison.
    let payload: Vec<u8> = (0..40 * 1024 * 1024u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 16) as u8)
        .collect();
    let hl_file = fs.write_file("/warehouse/part-00000", &payload, CodeKind::HeptagonLocal)?;
    let pent_file = fs.write_file(
        "/warehouse/part-00001",
        &payload[..9 * 1024 * 1024],
        CodeKind::Pentagon,
    )?;
    let after_write = fs.stats();
    println!(
        "wrote 2 files: {} stored blocks, {:.1} MiB stored, {:.1} MiB written over the network",
        after_write.stored_blocks,
        after_write.stored_bytes as f64 / (1024.0 * 1024.0),
        after_write.write_network_bytes as f64 / (1024.0 * 1024.0),
    );

    // Kill three nodes hosting the heptagon-local file (its full tolerance).
    let meta = fs.namenode().file(hl_file)?.clone();
    let victims: Vec<_> = meta.placement.stripe_hosts(0).unwrap()[0..3].to_vec();
    for &v in &victims {
        fs.fail_node_permanently(v);
    }
    println!("permanently failed nodes {victims:?}");

    // Reads still succeed via degraded reads.
    let read_back = fs.read_file(hl_file)?;
    assert_eq!(read_back, payload);
    let pent_back = fs.read_file(pent_file)?;
    assert_eq!(pent_back, &payload[..9 * 1024 * 1024]);
    let after_read = fs.stats();
    println!(
        "read both files back correctly; read path moved {:.1} MiB over the network",
        after_read.read_network_bytes as f64 / (1024.0 * 1024.0),
    );

    // The RaidNode repairs the wiped nodes.
    let report = fs.repair_nodes(&victims)?;
    println!(
        "RaidNode repaired {} stripes / {} blocks using {:.1} MiB of repair traffic \
         ({} unrecoverable stripes)",
        report.stripes_repaired,
        report.blocks_restored,
        report.network_bytes as f64 / (1024.0 * 1024.0),
        report.unrecoverable_stripes,
    );

    // After repair, reads are replica reads again and the data is intact.
    let final_read = fs.read_file(hl_file)?;
    assert_eq!(final_read, payload);
    println!("post-repair read verified byte-for-byte");
    Ok(())
}
