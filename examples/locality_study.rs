//! Locality study: a compact version of the paper's Fig. 3.
//!
//! Sweeps load from 25% to 100% on the 25-node simulation cluster and prints
//! the map-task data locality of 2-rep, pentagon and heptagon under the delay
//! scheduler, the maximum-matching benchmark and the peeling algorithm, for a
//! chosen number of map slots per node.
//!
//! Run with: `cargo run --release --example locality_study [-- <map_slots>]`

use drc_core::codes::CodeKind;
use drc_core::mapreduce::{simulate_locality, LocalityConfig, SchedulerKind};
use drc_core::workloads::fig3_loads;
use drc_core::{DrcError, TextTable};

fn main() -> Result<(), DrcError> {
    let map_slots: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let trials = 100;
    println!(
        "Map-task data locality on a 25-node cluster with {map_slots} map slots per node \
         ({trials} random placements per point)\n"
    );

    for scheduler in [
        SchedulerKind::Delay,
        SchedulerKind::MaxMatching,
        SchedulerKind::Peeling,
    ] {
        let mut table = TextTable::new(
            format!("{scheduler}"),
            &["Code", "25% load", "50% load", "75% load", "100% load"],
        );
        for code in [CodeKind::TWO_REP, CodeKind::Pentagon, CodeKind::Heptagon] {
            let mut cells = vec![code.to_string()];
            for load in fig3_loads() {
                let result = simulate_locality(
                    &LocalityConfig::new(code, scheduler, map_slots, load.percent)
                        .with_trials(trials),
                )?;
                cells.push(format!("{:.1}%", result.mean_locality_percent));
            }
            table.push_row(cells);
        }
        println!("{table}");
    }
    println!(
        "Reading the tables: the pentagon and heptagon codes concentrate 4 and 6 blocks of a \
         stripe on each node, so they lose locality at low slot counts; the loss shrinks as the \
         number of map slots grows, and better schedulers (matching, peeling) recover part of it."
    );
    Ok(())
}
