#!/usr/bin/env bash
# Best-effort Miri pass over the crates that contain unsafe code:
# drc_gf (SIMD kernels + raw-pointer XOR paths) and the vendored rayon
# stub (lifetime-transmuting scoped pool).
#
# Miri interprets the non-SIMD code paths and catches undefined behaviour
# (OOB, use-after-free, invalid transmutes) that tests alone cannot.
# `#[target_feature]` kernels are unsafe-to-call and dispatch-gated, so
# under Miri the portable fallbacks run instead — that is expected: the
# interesting UB surface (pointer arithmetic in the wide-XOR path, the
# pool's scope transmute) is fully exercised.
#
# This script is BEST EFFORT: a nightly toolchain with the miri component
# is not part of the pinned environment. When it is missing we skip LOUDLY
# but successfully, so constrained environments stay green while hosted CI
# (which installs nightly+miri first, see .github/workflows/ci.yml) gets
# the real pass.

set -u

say() { printf '%s\n' "$*" >&2; }

if ! command -v rustup >/dev/null 2>&1; then
    say "miri.sh: SKIP — rustup not available; cannot locate a nightly toolchain."
    exit 0
fi

if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    say "miri.sh: SKIP — no nightly toolchain installed."
    say "miri.sh:        install with: rustup toolchain install nightly --component miri"
    exit 0
fi

if ! rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'miri.*(installed)'; then
    say "miri.sh: SKIP — nightly toolchain has no miri component."
    say "miri.sh:        install with: rustup component add miri --toolchain nightly"
    exit 0
fi

say "miri.sh: running cargo +nightly miri test -p drc_gf -p rayon"
# MIRIFLAGS: isolation stays ON (default) — the sim is deterministic and
# nothing under test touches the host. Leak check stays ON.
cargo +nightly miri setup >/dev/null 2>&1 || {
    say "miri.sh: SKIP — 'cargo miri setup' failed (offline sysroot build unavailable)."
    exit 0
}

if cargo +nightly miri test -p drc_gf -p rayon; then
    say "miri.sh: PASS — no undefined behaviour detected in drc_gf or rayon."
    exit 0
else
    say "miri.sh: FAIL — Miri reported undefined behaviour (or a test failed under Miri)."
    exit 1
fi
