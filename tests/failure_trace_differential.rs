//! Differential tests locking the trace-driven failure engine to the old
//! static failure model: a `FailureTrace` with every failure at t = 0,
//! processed under a zero detection timeout, must reproduce the static
//! scenario's results **byte-for-byte** — traffic counters, repair bytes
//! and job metrics — for every `CodeKind`.
//!
//! The static path is `fail_node_permanently` + caller-invoked
//! `repair_nodes` (storage) and a cluster whose victims start down
//! (MapReduce). The traced path starts healthy and replays the same
//! failures through the detection/auto-repair engine. Virtual *timings* may
//! differ (the two paths issue events in different orders); the bytes may
//! not.

use drc_core::cluster::{Cluster, ClusterSpec, FailureScenario, NodeId};
use drc_core::codes::CodeKind;
use drc_core::hdfs::DistributedFileSystem;
use drc_core::mapreduce::{
    run_job_on, run_job_traced, FailureModel, JobSite, JobSpec, SchedulerKind,
};
use drc_core::sim::{SimDuration, SimTime};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Every code kind the registry evaluates.
fn all_codes() -> Vec<CodeKind> {
    vec![
        CodeKind::TWO_REP,
        CodeKind::THREE_REP,
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
        CodeKind::RAID_M_10_9,
        CodeKind::RAID_M_12_11,
        CodeKind::ReedSolomon {
            data: 10,
            parity: 4,
        },
    ]
}

fn small_cluster() -> ClusterSpec {
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = 1;
    spec
}

fn payload(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(2654435761) >> 8) as u8)
        .collect()
}

/// Storage layer: write → fail → repair → read, on the static path and on
/// the t = 0 trace path, must move identical bytes for every code kind.
#[test]
fn t0_trace_reproduces_static_repair_bytes_for_every_code_kind() {
    for kind in all_codes() {
        let code = kind.build().unwrap();
        let victims_of = |fs: &DistributedFileSystem, id| {
            let meta = fs.namenode().file(id).unwrap().clone();
            let tolerance = code.fault_tolerance().min(2);
            meta.placement.stripe_hosts(0).unwrap()[..tolerance].to_vec()
        };
        let data = payload(5 * 1024 * 1024 + 77);

        // Static path.
        let mut static_fs = DistributedFileSystem::new(small_cluster(), 4021);
        let id = static_fs.write_file("/diff", &data, kind).unwrap();
        let victims: Vec<NodeId> = victims_of(&static_fs, id);
        for &v in &victims {
            static_fs.fail_node_permanently(v);
        }
        let static_report = static_fs.repair_nodes(&victims).unwrap();
        assert_eq!(static_fs.read_file(id).unwrap(), data, "{kind}");

        // Traced path: identical seed, failures arrive as a t = 0 trace
        // under a zero detection timeout.
        let mut traced_fs = DistributedFileSystem::new(small_cluster(), 4021);
        let id2 = traced_fs.write_file("/diff", &data, kind).unwrap();
        assert_eq!(id, id2, "{kind}: same seed, same namespace");
        assert_eq!(victims, victims_of(&traced_fs, id2), "{kind}");
        traced_fs.set_detection_timeout(SimDuration::ZERO);
        traced_fs.schedule_trace(&FailureScenario::nodes(victims.clone()).to_trace());
        let reports = traced_fs.process_all_events().unwrap();
        assert_eq!(reports.len(), 1, "{kind}: one batched auto-repair pass");
        assert_eq!(traced_fs.read_file(id2).unwrap(), data, "{kind}");

        // Byte-for-byte: the repair report and every traffic counter.
        let auto = &reports[0];
        assert_eq!(auto.network_bytes, static_report.network_bytes, "{kind}");
        assert_eq!(
            auto.blocks_restored, static_report.blocks_restored,
            "{kind}"
        );
        assert_eq!(
            auto.stripes_repaired, static_report.stripes_repaired,
            "{kind}"
        );
        assert_eq!(
            auto.unrecoverable_stripes, static_report.unrecoverable_stripes,
            "{kind}"
        );
        assert_eq!(traced_fs.stats(), static_fs.stats(), "{kind}");
    }
}

/// Storage layer, detection semantics: a *large* detection timeout means no
/// repair runs, and the degraded reads of the trace path cost exactly what
/// the static path's degraded reads cost.
#[test]
fn undetected_t0_trace_reproduces_static_degraded_read_bytes() {
    for kind in all_codes() {
        let code = kind.build().unwrap();
        let data = payload(3 * 1024 * 1024 + 11);

        let mut static_fs = DistributedFileSystem::new(small_cluster(), 777);
        let id = static_fs.write_file("/deg", &data, kind).unwrap();
        let meta = static_fs.namenode().file(id).unwrap().clone();
        let tolerance = code.fault_tolerance().min(2);
        let victims: Vec<NodeId> = meta.placement.stripe_hosts(0).unwrap()[..tolerance].to_vec();
        for &v in &victims {
            static_fs.fail_node_permanently(v);
        }
        assert_eq!(static_fs.read_file(id).unwrap(), data, "{kind}");

        let mut traced_fs = DistributedFileSystem::new(small_cluster(), 777);
        let id2 = traced_fs.write_file("/deg", &data, kind).unwrap();
        // Detection far in the future: the failure engine applies the
        // fail-stops but never repairs inside this window.
        traced_fs.set_detection_timeout(SimDuration::from_secs_f64(1e6));
        traced_fs.schedule_trace(&FailureScenario::nodes(victims).to_trace());
        let reports = traced_fs.process_events_until(traced_fs.now()).unwrap();
        assert!(reports.is_empty(), "{kind}: nothing detected yet");
        assert_eq!(traced_fs.read_file(id2).unwrap(), data, "{kind}");

        assert_eq!(traced_fs.stats(), static_fs.stats(), "{kind}");
        assert!(traced_fs.auto_repair_reports().is_empty(), "{kind}");
    }
}

/// MapReduce layer: `run_job_traced` with the t = 0 trace and zero timeout
/// must equal `run_job_on` with the victims statically down — the full
/// `JobMetrics`, timeline included — for every code kind.
#[test]
fn t0_trace_reproduces_static_job_metrics_for_every_code_kind() {
    use drc_core::cluster::{PlacementMap, PlacementPolicy};
    for kind in all_codes() {
        let code = kind.build().unwrap();
        let cluster = Cluster::new(small_cluster());
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let stripes = 40usize.div_ceil(code.data_blocks());
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        // Fail as many hosts of data block 0 as the code tolerates.
        let block = drc_core::cluster::GlobalBlockId::new(0, 0);
        let tolerance = code.fault_tolerance().min(2);
        let locations = placement.locations(block).unwrap();
        let victims: Vec<NodeId> = locations[..tolerance.min(locations.len())].to_vec();
        let job = JobSpec::new("differential", placement.data_blocks()).with_reduce_tasks(7);
        let scheduler = SchedulerKind::Delay.build();

        let mut down_cluster = cluster.clone();
        for &v in &victims {
            down_cluster.set_down(v);
        }
        let net_a = drc_core::sim::ClusterNet::new(cluster.spec());
        let mut rng_a = ChaCha8Rng::seed_from_u64(17);
        let static_metrics = run_job_on(
            &job,
            code.as_ref(),
            &placement,
            &down_cluster,
            scheduler.as_ref(),
            &mut rng_a,
            JobSite {
                net: &net_a,
                start: SimTime::ZERO,
            },
        )
        .unwrap();

        let trace = FailureScenario::nodes(victims).to_trace();
        let net_b = drc_core::sim::ClusterNet::new(cluster.spec());
        let mut rng_b = ChaCha8Rng::seed_from_u64(17);
        let traced_metrics = run_job_traced(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            scheduler.as_ref(),
            &mut rng_b,
            JobSite {
                net: &net_b,
                start: SimTime::ZERO,
            },
            FailureModel::new(&trace, SimDuration::ZERO),
        )
        .unwrap();

        assert_eq!(
            static_metrics, traced_metrics,
            "{kind}: t0 trace with zero timeout must equal the static model"
        );
        assert_eq!(traced_metrics.tasks_reexecuted, 0, "{kind}");
    }
}
