//! Integration tests for the experiment drivers: every table/figure driver
//! runs, produces structurally-complete output, renders to text, and
//! round-trips through JSON (the format the `repro --json` flag emits).

use drc_core::codes::CodeKind;
use drc_core::experiments::{
    degraded_mr::run_degraded_mr,
    encoding::run_encoding,
    fig3::{run_fig3, Fig3Data},
    fig4::{run_fig4, TerasortSweep},
    fig5::run_fig5,
    repair_bandwidth::{run_repair_bandwidth, RepairBandwidthTable},
    table1::{run_table1, Table1},
    Effort,
};
use drc_core::mapreduce::SchedulerKind;
use drc_core::reliability::ReliabilityParams;

#[test]
fn table1_serialises_and_renders() {
    let table = run_table1(&ReliabilityParams::default()).unwrap();
    let json = serde_json::to_string(&table).unwrap();
    let back: Table1 = serde_json::from_str(&json).unwrap();
    assert_eq!(table, back);
    let text = table.to_string();
    for code in CodeKind::table1_set() {
        assert!(
            text.contains(&code.to_string()),
            "missing {code} in rendering"
        );
    }
}

#[test]
fn repair_bandwidth_serialises_and_covers_all_codes() {
    let table = run_repair_bandwidth().unwrap();
    assert_eq!(table.rows.len(), 7); // 2-rep + the six Table 1 codes
    let json = serde_json::to_string(&table).unwrap();
    let back: RepairBandwidthTable = serde_json::from_str(&json).unwrap();
    assert_eq!(table, back);
}

#[test]
fn fig3_data_is_complete_and_serialisable() {
    let data = run_fig3(Effort::Quick).unwrap();
    let json = serde_json::to_string(&data).unwrap();
    let back: Fig3Data = serde_json::from_str(&json).unwrap();
    assert_eq!(data.points.len(), back.points.len());
    // Every (mu, code, load) combination exists for the delay scheduler.
    for mu in [2usize, 4, 8] {
        for code in CodeKind::fig3_set() {
            for load in [25.0, 50.0, 75.0, 100.0] {
                assert!(
                    data.point(mu, SchedulerKind::Delay, code, load).is_some(),
                    "missing point mu={mu} {code} load={load}"
                );
            }
        }
    }
    // Locality percentages are valid percentages.
    for p in &data.points {
        assert!(p.mean_locality_percent >= 0.0 && p.mean_locality_percent <= 100.0);
        assert!(p.std_dev_percent >= 0.0);
        assert!(p.trials > 0);
    }
}

#[test]
fn fig4_and_fig5_are_consistent_with_their_setups() {
    let fig4 = run_fig4(Effort::Quick).unwrap();
    let fig5 = run_fig5(Effort::Quick).unwrap();
    assert!(fig4.setup.contains("setup1"));
    assert!(fig5.setup.contains("setup2"));
    // Set-up 1 sweeps 4 codes over 3 loads; set-up 2 sweeps 3 codes over 4 loads.
    assert_eq!(fig4.points.len(), 12);
    assert_eq!(fig5.points.len(), 12);
    // The heptagon is only measured on set-up 1 (like the paper).
    assert!(fig5.point(CodeKind::Heptagon, 100.0).is_none());
    // JSON round-trip preserves the structure (float comparison with a
    // tolerance: serialisation may drop the last ulp).
    let json = serde_json::to_string(&fig4).unwrap();
    let back: TerasortSweep = serde_json::from_str(&json).unwrap();
    assert_eq!(fig4.points.len(), back.points.len());
    for (a, b) in fig4.points.iter().zip(&back.points) {
        assert_eq!(a.code, b.code);
        assert!((a.job_time_s - b.job_time_s).abs() < 1e-6);
        assert!((a.network_traffic_gb - b.network_traffic_gb).abs() < 1e-6);
        assert!((a.data_locality_percent - b.data_locality_percent).abs() < 1e-6);
    }
    // Input volume grows with load, so traffic at 100% exceeds the lowest load
    // for the same code, for both figures.
    for sweep in [&fig4, &fig5] {
        let codes: Vec<CodeKind> = sweep.points.iter().map(|p| p.code).collect();
        for code in codes {
            let min_load = sweep
                .points
                .iter()
                .filter(|p| p.code == code)
                .map(|p| p.load_percent)
                .fold(f64::INFINITY, f64::min);
            let lo = sweep.point(code, min_load).unwrap();
            let hi = sweep.point(code, 100.0).unwrap();
            assert!(hi.network_traffic_gb >= lo.network_traffic_gb);
            assert!(hi.job_time_s >= lo.job_time_s * 0.9);
        }
    }
}

#[test]
fn encoding_report_scales_with_parity_work() {
    let report = run_encoding(32 * 1024, 4).unwrap();
    let row = |kind: CodeKind| report.rows.iter().find(|r| r.code == kind).unwrap();
    // Replication does no parity work; coded schemes do.
    assert_eq!(row(CodeKind::THREE_REP).stripe_parity_bytes, 0);
    assert!(
        row(CodeKind::HeptagonLocal).stripe_parity_bytes
            > row(CodeKind::Pentagon).stripe_parity_bytes
    );
    // Throughput numbers are positive and the report renders.
    assert!(report.rows.iter().all(|r| r.throughput_mb_per_s > 0.0));
    assert!(report.to_string().contains("Encoding throughput"));
}

#[test]
fn degraded_mr_report_counts_failures_sensibly() {
    let report = run_degraded_mr(Effort::Quick).unwrap();
    // Degraded reads can only appear when nodes have failed.
    for p in &report.points {
        if p.failed_nodes == 0 {
            assert_eq!(p.degraded_reads, 0.0);
            assert_eq!(p.failed_job_fraction, 0.0);
        }
        assert!(p.data_locality_percent <= 100.0);
    }
    // The report includes every Fig. 4 code at 0, 1 and 2 failures.
    for code in CodeKind::fig4_set() {
        for failed in [0usize, 1, 2] {
            assert!(report.point(code, failed).is_some());
        }
    }
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("failed_nodes"));
}
