//! The paper's explicit quantitative claims, checked one by one against the
//! implementation. Each test cites the section it reproduces.

use std::collections::BTreeSet;

use drc_core::codes::{CodeKind, ErasureCode, PolygonCode, PolygonLocalCode};
use drc_core::experiments::table1::{paper_mttdl_years, run_table1};
use drc_core::experiments::Effort;
use drc_core::mapreduce::{simulate_locality, LocalityConfig, SchedulerKind};
use drc_core::reliability::ReliabilityParams;

/// §2.1: "9 data blocks are encoded into 20 coded blocks and stored in 5
/// nodes with 4 blocks assigned to each node."
#[test]
fn pentagon_encoding_geometry() {
    let pentagon = PolygonCode::pentagon();
    assert_eq!(pentagon.data_blocks(), 9);
    assert_eq!(pentagon.stored_blocks(), 20);
    assert_eq!(pentagon.node_count(), 5);
    for node in 0..5 {
        assert_eq!(pentagon.node_blocks(node).len(), 4);
    }
    // "no two replicas of the same block are stored in the same storage node"
    for block in 0..pentagon.distinct_blocks() {
        let locations = pentagon.block_locations(block);
        assert_eq!(locations.len(), 2);
        assert_ne!(locations[0], locations[1]);
    }
}

/// §2.1: "It can be readily verified that the contents of any 3 nodes suffice
/// to recover all 9 data blocks and thus the code is resilient to 2-node
/// failure."
#[test]
fn pentagon_any_three_nodes_suffice() {
    let pentagon = PolygonCode::pentagon();
    for a in 0..5usize {
        for b in (a + 1)..5 {
            let failed: BTreeSet<usize> = [a, b].into_iter().collect();
            assert!(pentagon.can_recover(&failed));
        }
    }
    assert_eq!(pentagon.fault_tolerance(), 2);
}

/// §2.1: "the overall network data transfer incurred in repairing the two
/// nodes (also known as repair bandwidth) is 10 blocks."
#[test]
fn pentagon_two_node_repair_is_ten_blocks() {
    let pentagon = PolygonCode::pentagon();
    for a in 0..5usize {
        for b in (a + 1)..5 {
            let plan = pentagon.repair_plan(&[a, b].into_iter().collect()).unwrap();
            assert_eq!(plan.network_blocks(), 10, "pair ({a},{b})");
        }
    }
}

/// §2.2: "The heptagon code encodes 20 data blocks into 42 blocks and stores
/// them in 7 nodes, with each node hosting 6 blocks"; "The storage overhead
/// of the heptagon code is less than that of the pentagon code".
#[test]
fn heptagon_geometry_and_overhead() {
    let heptagon = PolygonCode::heptagon();
    assert_eq!(heptagon.data_blocks(), 20);
    assert_eq!(heptagon.stored_blocks(), 42);
    assert_eq!(heptagon.node_count(), 7);
    for node in 0..7 {
        assert_eq!(heptagon.node_blocks(node).len(), 6);
    }
    let pentagon = PolygonCode::pentagon();
    assert!(heptagon.storage_overhead() < pentagon.storage_overhead());
}

/// §2.2: "40 data blocks are encoded into 86 blocks and stored in 15 nodes";
/// "The heptagon-local code can recover from any pattern of 3 node erasures";
/// "The failure of 1 or 2 nodes lying within a heptagon can be handled
/// locally."
#[test]
fn heptagon_local_geometry_and_local_repair() {
    let hl = PolygonLocalCode::heptagon_local();
    assert_eq!(hl.data_blocks(), 40);
    assert_eq!(hl.stored_blocks(), 86);
    assert_eq!(hl.node_count(), 15);
    assert_eq!(hl.fault_tolerance(), 3);
    // Local repair: a 2-node failure inside heptagon 1 only touches heptagon 1.
    let plan = hl.repair_plan(&[8, 11].into_iter().collect()).unwrap();
    for t in &plan.transfers {
        assert!((7..14).contains(&t.from_node));
        assert!((7..14).contains(&t.to_node));
    }
}

/// Table 1: storage overhead and code length columns, exactly as printed.
#[test]
fn table1_storage_overhead_and_code_length() {
    let expected = [
        (CodeKind::THREE_REP, 3.00, 3),
        (CodeKind::Pentagon, 2.22, 5),
        (CodeKind::Heptagon, 2.10, 7),
        (CodeKind::HeptagonLocal, 2.15, 15),
        (CodeKind::RAID_M_10_9, 2.22, 20),
        (CodeKind::RAID_M_12_11, 2.18, 24),
    ];
    for (kind, overhead, length) in expected {
        let code = kind.build().unwrap();
        assert!(
            (code.storage_overhead() - overhead).abs() < 0.005,
            "{kind} overhead {} != {overhead}",
            code.storage_overhead()
        );
        assert_eq!(code.node_count(), length, "{kind}");
    }
}

/// Table 1: the MTTDL column. The absolute values depend on the calibration
/// of the failure/repair model, but the reproduced numbers stay within a
/// small factor of the paper's and preserve its complete ordering.
#[test]
fn table1_mttdl_reproduction() {
    let table = run_table1(&ReliabilityParams::default()).unwrap();
    for row in &table.rows {
        let paper = paper_mttdl_years(row.code).unwrap();
        let ratio = row.mttdl_years / paper;
        assert!(
            ratio > 0.25 && ratio < 4.0,
            "{}: {:.2e} years vs paper {:.2e}",
            row.code,
            row.mttdl_years,
            paper
        );
    }
    // Ordering: heptagon-local > (10,9) RAID+m > 3-rep > (12,11) RAID+m >
    // pentagon > heptagon.
    let years: Vec<f64> = [
        CodeKind::HeptagonLocal,
        CodeKind::RAID_M_10_9,
        CodeKind::THREE_REP,
        CodeKind::RAID_M_12_11,
        CodeKind::Pentagon,
        CodeKind::Heptagon,
    ]
    .iter()
    .map(|k| {
        table
            .rows
            .iter()
            .find(|r| r.code == *k)
            .unwrap()
            .mttdl_years
    })
    .collect();
    for pair in years.windows(2) {
        assert!(pair[0] > pair[1]);
    }
}

/// §3.1: "both the pentagon and the (10,9) RAID+m code have a storage
/// overhead of 2.22; clearly between the two codes, only the pentagon code is
/// feasible in a Hadoop system possessing just 20 nodes."
#[test]
fn code_length_feasibility_argument() {
    let pentagon = CodeKind::Pentagon.build().unwrap();
    let raid_m = CodeKind::RAID_M_10_9.build().unwrap();
    assert!((pentagon.storage_overhead() - raid_m.storage_overhead()).abs() < 1e-9);
    assert!(pentagon.node_count() <= 20);
    assert!(raid_m.node_count() == 20);
    // On a 9-node cluster (set-up 2) the RAID+m stripe cannot even be placed.
    use drc_core::cluster::{Cluster, ClusterSpec, PlacementMap, PlacementPolicy};
    use rand::SeedableRng;
    let cluster = Cluster::new(ClusterSpec::setup2());
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    assert!(PlacementMap::place(
        raid_m.as_ref(),
        &cluster,
        1,
        PlacementPolicy::Random,
        &mut rng
    )
    .is_err());
    assert!(PlacementMap::place(
        pentagon.as_ref(),
        &cluster,
        1,
        PlacementPolicy::Random,
        &mut rng
    )
    .is_ok());
}

/// §3.1: "While the (10,9) RAID+m solution needs a repair bandwidth of 9
/// blocks, a repair bandwidth of 3 blocks suffices in the case of the
/// pentagon code."
#[test]
fn on_the_fly_repair_bandwidth_three_vs_nine() {
    let pentagon = CodeKind::Pentagon.build().unwrap();
    let raid_m = CodeKind::RAID_M_10_9.build().unwrap();
    let pent_hosts: BTreeSet<usize> = pentagon.block_locations(0).iter().copied().collect();
    let raid_hosts: BTreeSet<usize> = raid_m.block_locations(0).iter().copied().collect();
    assert_eq!(
        pentagon
            .degraded_read_plan(0, &pent_hosts)
            .unwrap()
            .network_blocks,
        3
    );
    assert_eq!(
        raid_m
            .degraded_read_plan(0, &raid_hosts)
            .unwrap()
            .network_blocks,
        9
    );
}

/// §3.2 / Fig. 3: "there is a significant loss in data locality with 2 map
/// slots per node for the proposed coding schemes with respect to double
/// replication", "the heptagon code ... suffers more", and "the loss in
/// locality decreases with increasing number of map slots per node."
#[test]
fn locality_claims_from_fig3() {
    let point = |code, mu, load| {
        simulate_locality(
            &LocalityConfig::new(code, SchedulerKind::Delay, mu, load).with_trials(60),
        )
        .unwrap()
        .mean_locality_percent
    };
    let two_rep = point(CodeKind::TWO_REP, 2, 100.0);
    let pentagon2 = point(CodeKind::Pentagon, 2, 100.0);
    let heptagon2 = point(CodeKind::Heptagon, 2, 100.0);
    assert!(
        two_rep - pentagon2 > 10.0,
        "two_rep {two_rep} pentagon {pentagon2}"
    );
    assert!(pentagon2 > heptagon2);
    let pentagon8 = point(CodeKind::Pentagon, 8, 100.0);
    let heptagon8 = point(CodeKind::Heptagon, 8, 100.0);
    assert!(pentagon8 > pentagon2 + 10.0);
    assert!(heptagon8 > heptagon2 + 10.0);
}

/// §3.2: "the locality of the 2-rep systems is indicative of the locality of
/// any of the RAID+m solutions" — RAID+m places one block per node, exactly
/// like replication, so the task-node graph has the same left degree.
#[test]
fn raid_m_locality_structure_matches_two_rep() {
    let raid_m = CodeKind::RAID_M_10_9.build().unwrap();
    let two_rep = CodeKind::TWO_REP.build().unwrap();
    for block in 0..raid_m.data_blocks() {
        assert_eq!(raid_m.block_locations(block).len(), 2);
    }
    assert_eq!(two_rep.block_locations(0).len(), 2);
    assert_eq!(raid_m.structure().layout.max_blocks_per_node(), 1);
}

/// §4 conclusions (i) and (iv), via the Fig. 4 / Fig. 5 reproductions:
/// 2-rep ≈ 3-rep at moderate load, and with 4 map slots the pentagon is close
/// to 2-rep even at 75% load.
#[test]
fn cluster_experiment_conclusions() {
    let fig4 = drc_core::experiments::fig4::run_fig4(Effort::Quick).unwrap();
    let two = fig4.point(CodeKind::TWO_REP, 50.0).unwrap();
    let three = fig4.point(CodeKind::THREE_REP, 50.0).unwrap();
    assert!((two.job_time_s - three.job_time_s).abs() / three.job_time_s < 0.15);

    let fig5 = drc_core::experiments::fig5::run_fig5(Effort::Quick).unwrap();
    let pent = fig5.point(CodeKind::Pentagon, 75.0).unwrap();
    let two5 = fig5.point(CodeKind::TWO_REP, 75.0).unwrap();
    assert!(pent.data_locality_percent > 85.0);
    assert!((pent.job_time_s - two5.job_time_s).abs() / two5.job_time_s < 0.2);
}
