//! End-to-end integration tests spanning the whole stack: codes → placement →
//! simulated HDFS → MapReduce engine.

use drc_core::cluster::{Cluster, ClusterSpec, FailureScenario, NodeId};
use drc_core::codes::CodeKind;
use drc_core::hdfs::DistributedFileSystem;
use drc_core::mapreduce::{run_job, SchedulerKind};
use drc_core::workloads::{provision_workload, WorkloadKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_cluster() -> ClusterSpec {
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = 1;
    spec
}

fn payload(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(2654435761) >> 8) as u8)
        .collect()
}

#[test]
fn hdfs_full_lifecycle_for_every_paper_code() {
    for kind in [
        CodeKind::TWO_REP,
        CodeKind::THREE_REP,
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
    ] {
        let mut fs = DistributedFileSystem::new(small_cluster(), 99);
        let data = payload(5 * 1024 * 1024 + 77);
        let id = fs.write_file("/it/file", &data, kind).unwrap();

        // Storage overhead observed on disk matches the code's promise.
        let code = kind.build().unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        let stats = fs.stats();
        let expected_stored = meta.stripes as u64 * code.stored_blocks() as u64 * meta.block_size;
        assert_eq!(stats.stored_bytes, expected_stored, "{kind}");

        // Tolerate `fault_tolerance` permanent failures of stripe nodes.
        let tolerance = code.fault_tolerance();
        let victims: Vec<NodeId> = meta.placement.stripe_hosts(0).unwrap()[..tolerance].to_vec();
        for &v in &victims {
            fs.fail_node_permanently(v);
        }
        assert_eq!(fs.read_file(id).unwrap(), data, "{kind} degraded read");

        // RaidNode repair restores every lost replica and the data survives.
        let report = fs.repair_nodes(&victims).unwrap();
        assert_eq!(report.unrecoverable_stripes, 0, "{kind}");
        assert!(report.network_bytes > 0, "{kind}");
        assert_eq!(fs.read_file(id).unwrap(), data, "{kind} post-repair read");

        // After repair the stored volume is back to the full redundancy level.
        assert_eq!(
            fs.stats().stored_bytes,
            expected_stored,
            "{kind} after repair"
        );
    }
}

#[test]
fn engine_locality_is_consistent_with_placement_structure() {
    // For 2-rep, every map task has 2 candidate nodes; with ample slots and
    // low load, the engine should achieve (near-)full locality, and the
    // pentagon at the same load should not exceed it.
    let spec = ClusterSpec::simulation_25(8);
    let cluster = Cluster::new(spec);
    let scheduler = SchedulerKind::Delay.build();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut localities = Vec::new();
    for kind in [CodeKind::TWO_REP, CodeKind::Pentagon] {
        let code = kind.build().unwrap();
        let workload =
            provision_workload(WorkloadKind::Terasort, kind, &cluster, 50.0, &mut rng).unwrap();
        let metrics = run_job(
            &workload.job,
            code.as_ref(),
            &workload.placement,
            &cluster,
            scheduler.as_ref(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(metrics.map_tasks, 100);
        localities.push(metrics.data_locality_percent());
    }
    assert!(localities[0] > 95.0);
    assert!(localities[0] >= localities[1] - 1.0);
}

#[test]
fn transient_failures_trigger_degraded_reads_with_partial_parity_cost() {
    // Take down both replicas of one pentagon block during a job and check
    // that the engine charges exactly 3 blocks of reconstruction traffic.
    let spec = small_cluster();
    let mut cluster = Cluster::new(spec);
    let kind = CodeKind::Pentagon;
    let code = kind.build().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let workload =
        provision_workload(WorkloadKind::Terasort, kind, &cluster, 50.0, &mut rng).unwrap();
    // Fail both hosts of the first task's block.
    let first_block = workload.job.map_tasks()[0].block;
    let hosts: Vec<NodeId> = workload.placement.locations(first_block).unwrap().to_vec();
    let scenario = FailureScenario::nodes(hosts);
    scenario.apply(&mut cluster);

    let scheduler = SchedulerKind::Delay.build();
    let metrics = run_job(
        &workload.job,
        code.as_ref(),
        &workload.placement,
        &cluster,
        scheduler.as_ref(),
        &mut rng,
    )
    .unwrap();
    assert!(metrics.degraded_reads >= 1);
    // Each pentagon degraded read fetches 3 blocks of 1 MiB.
    assert!(metrics.degraded_read_bytes >= 3 * 1024 * 1024);
    assert_eq!(metrics.degraded_read_bytes % (1024 * 1024), 0);
}

#[test]
fn repair_traffic_ordering_matches_the_paper_argument() {
    // For the same amount of lost data, the pentagon's two-node repair moves
    // less than a Reed-Solomon-style full decode per lost block, but more
    // than plain replication's single copy.
    let two_rep = CodeKind::TWO_REP.build().unwrap();
    let pentagon = CodeKind::Pentagon.build().unwrap();
    let raid_m = CodeKind::RAID_M_10_9.build().unwrap();

    let rep_repair = two_rep
        .repair_plan(&[0].into_iter().collect())
        .unwrap()
        .network_blocks();
    let pent_repair = pentagon
        .repair_plan(&[0, 1].into_iter().collect())
        .unwrap()
        .network_blocks();
    let raid_repair = raid_m
        .repair_plan(&[0, 1].into_iter().collect())
        .unwrap()
        .network_blocks();
    // 2-rep: 1 block per failed node; pentagon: 10 blocks for 7 lost distinct
    // blocks; RAID+m pair loss: 10 blocks for a single lost distinct block.
    assert_eq!(rep_repair, 1);
    assert_eq!(pent_repair, 10);
    assert_eq!(raid_repair, 10);
    // Per distinct block recovered, the pentagon is far cheaper than RAID+m.
    let pent_lost = 7.0;
    let raid_lost = 1.0;
    assert!((pent_repair as f64 / pent_lost) < (raid_repair as f64 / raid_lost));
}
