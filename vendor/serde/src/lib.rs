//! Offline, API-surface-compatible subset of `serde` for this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small part of serde the workspace actually uses: the `Serialize` /
//! `Deserialize` traits plus derive macros, backed by a simple JSON-like
//! [`value::Value`] data model that `serde_json` (the sibling stub) renders
//! and parses. The wire format is self-consistent (everything this workspace
//! serialises, it can deserialise) but makes no compatibility promises to the
//! real serde ecosystem.

#![allow(clippy::all)]

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use de::DeError;
use value::Value;

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(DeError::new("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(DeError::new("expected sequence")),
        }
    }
}

/// Serialises map entries: an object when every key renders as a scalar
/// (string / integer / bool), a sequence of `[key, value]` pairs otherwise
/// (JSON objects only admit string keys).
fn serialize_map<'a, K, V, I>(iter: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let entries: Vec<(Value, Value)> = iter.map(|(k, v)| (k.serialize(), v.serialize())).collect();
    let scalar_keys = entries.iter().all(|(k, _)| {
        matches!(
            k,
            Value::Str(_) | Value::UInt(_) | Value::Int(_) | Value::Bool(_)
        )
    });
    if scalar_keys {
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| {
                    let key = match k {
                        Value::Str(s) => s,
                        Value::UInt(n) => n.to_string(),
                        Value::Int(n) => n.to_string(),
                        Value::Bool(b) => b.to_string(),
                        _ => unreachable!("checked scalar above"),
                    };
                    (key, v)
                })
                .collect(),
        )
    } else {
        Value::Seq(
            entries
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::deserialize(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::Int(n)) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::deserialize(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(DeError::new("unparseable map key"))
}

fn deserialize_map<K, V, C>(v: &Value) -> Result<C, DeError>
where
    K: Deserialize,
    V: Deserialize,
    C: FromIterator<(K, V)>,
{
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::deserialize(val)?)))
            .collect(),
        Value::Seq(items) => items
            .iter()
            .map(|item| match item.as_seq() {
                Some([k, val]) => Ok((K::deserialize(k)?, V::deserialize(val)?)),
                _ => Err(DeError::new("expected [key, value] pair")),
            })
            .collect(),
        _ => Err(DeError::new("expected map")),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        deserialize_map::<K, V, Self>(v)
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn serialize(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        deserialize_map::<K, V, Self>(v)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $n;
                            $t::deserialize(it.next().ok_or_else(|| DeError::new("tuple too short"))?)?
                        },)+))
                    }
                    _ => Err(DeError::new("expected sequence for tuple")),
                }
            }
        }
    )+};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
