//! The JSON-like data model backing the offline serde subset.

use crate::de::DeError;
use crate::{Deserialize, Serialize};

/// A JSON-like value tree.
///
/// Maps preserve insertion order (they are association lists, not sorted
/// maps), which keeps serialised struct fields in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers use [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, as an ordered association list.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a float; integers are widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Str(s) => match s.as_str() {
                // Non-finite floats are serialised as tagged strings because
                // JSON has no literal for them.
                "__f64::inf" => Some(f64::INFINITY),
                "__f64::-inf" => Some(f64::NEG_INFINITY),
                "__f64::nan" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object association list, if it is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| map_get(m, key))
    }
}

/// Looks up a key in an object association list.
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, DeError> {
    T::deserialize(value)
}
