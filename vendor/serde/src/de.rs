//! Deserialisation errors for the offline serde subset.

use std::fmt;

/// An error produced while rebuilding a value from the data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Creates an error with the given message (serde-compatible spelling).
    pub fn custom(message: impl fmt::Display) -> Self {
        DeError {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}
