//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde subset.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; this macro parses the derive input token stream directly. It
//! supports the shapes this workspace actually uses:
//!
//! * structs with named fields,
//! * tuple structs (a single field — including `#[serde(transparent)]` — is
//!   serialised as the inner value; longer tuples as a sequence),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics, lifetimes and serde attributes other than `transparent` are not
//! supported and produce a compile error.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    transparent: bool,
    shape: Shape,
}

/// Derives the offline `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated code parses")
}

/// Derives the offline `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated code parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    let transparent = skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("offline serde derive does not support generic types (on `{name}`)");
    }
    let shape = match keyword.as_str() {
        "struct" => parse_struct_body(&tokens, &mut i, &name),
        "enum" => parse_enum_body(&tokens, &mut i, &name),
        other => panic!("offline serde derive expected struct or enum, found `{other}`"),
    };
    Input {
        name,
        transparent,
        shape,
    }
}

/// Skips leading attributes, returning whether `#[serde(transparent)]` was
/// among them.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut transparent = false;
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            let args = args.stream().to_string();
                            if args.contains("transparent") {
                                transparent = true;
                            } else {
                                panic!(
                                    "offline serde derive supports only #[serde(transparent)], found #[serde({args})]"
                                );
                            }
                        }
                    }
                }
                *i += 2;
            }
            _ => return transparent,
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("offline serde derive expected identifier, found {other:?}"),
    }
}

fn parse_struct_body(tokens: &[TokenTree], i: &mut usize, name: &str) -> Shape {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream(), name))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("offline serde derive: malformed struct `{name}` body: {other:?}"),
    }
}

fn parse_enum_body(tokens: &[TokenTree], i: &mut usize, name: &str) -> Shape {
    let group = match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("offline serde derive: malformed enum `{name}` body: {other:?}"),
    };
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0usize;
    while j < toks.len() {
        skip_attributes(&toks, &mut j);
        if j >= toks.len() {
            break;
        }
        let vname = expect_ident(&toks, &mut j);
        let kind = match toks.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                j += 1;
                VariantKind::Named(parse_named_fields(g.stream(), name))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                j += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= <discriminant>` and the trailing comma.
        while j < toks.len() && !matches!(&toks[j], TokenTree::Punct(p) if p.as_char() == ',') {
            j += 1;
        }
        j += 1; // past the comma (or end)
        variants.push(Variant { name: vname, kind });
    }
    Shape::Enum(variants)
}

/// Parses `vis name: Type, ...` from a brace group, returning the field names.
fn parse_named_fields(stream: TokenStream, owner: &str) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut j = 0usize;
    while j < toks.len() {
        skip_attributes(&toks, &mut j);
        if j >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut j);
        let fname = expect_ident(&toks, &mut j);
        match toks.get(j) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => j += 1,
            other => panic!("offline serde derive: expected `:` after field `{fname}` of `{owner}`, found {other:?}"),
        }
        skip_type(&toks, &mut j);
        j += 1; // past the comma (or end)
        fields.push(fname);
    }
    fields
}

/// Counts top-level comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut depth = 0i32;
    let mut saw_token_since_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Advances past a type, stopping at a top-level `,` (or the end).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Unit => "::serde::value::Value::Null".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                .collect();
            format!(
                "::serde::value::Value::Seq(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::value::Value::Map(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::value::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::value::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::serialize(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::value::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::value::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::value::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::value::Value::Map(::std::vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n            fn serialize(&self) -> ::serde::value::Value {{ {body} }}\n        }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let _ = input.transparent; // single-field tuples always delegate
    let body = match &input.shape {
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!(
                    "::serde::Deserialize::deserialize(__s.get({k}).ok_or_else(|| ::serde::de::DeError::new(\"{name}: tuple too short\"))?)?"
                ))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::de::DeError::new(\"{name}: expected sequence\"))?;\n                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let items: Vec<String> = fields.iter().map(|f| field_from_map(name, f)).collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::de::DeError::new(\"{name}: expected map\"))?;\n                 ::std::result::Result::Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize(__inner)?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!(
                                    "::serde::Deserialize::deserialize(__s.get({k}).ok_or_else(|| ::serde::de::DeError::new(\"{name}::{vname}: tuple too short\"))?)?"
                                ))
                                .collect();
                            format!(
                                "\"{vname}\" => {{ let __s = __inner.as_seq().ok_or_else(|| ::serde::de::DeError::new(\"{name}::{vname}: expected sequence\"))?; ::std::result::Result::Ok({name}::{vname}({})) }}",
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| field_from_map(&format!("{name}::{vname}"), f))
                                .collect();
                            format!(
                                "\"{vname}\" => {{ let __m = __inner.as_map().ok_or_else(|| ::serde::de::DeError::new(\"{name}::{vname}: expected map\"))?; ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n                    ::serde::value::Value::Str(__s) => match __s.as_str() {{\n                        {unit}\n                        __other => ::std::result::Result::Err(::serde::de::DeError::new(::std::format!(\"{name}: unknown variant {{__other}}\"))),\n                    }},\n                    ::serde::value::Value::Map(__m) if __m.len() == 1 => {{\n                        let (__tag, __inner) = &__m[0];\n                        match __tag.as_str() {{\n                            {data}\n                            __other => ::std::result::Result::Err(::serde::de::DeError::new(::std::format!(\"{name}: unknown variant {{__other}}\"))),\n                        }}\n                    }}\n                    _ => ::std::result::Result::Err(::serde::de::DeError::new(\"{name}: expected externally tagged enum\")),\n                }}",
                unit = unit_arms.join("\n                        "),
                data = data_arms.join("\n                            "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n            fn deserialize(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::DeError> {{ {body} }}\n        }}"
    )
}

fn field_from_map(owner: &str, field: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::deserialize(::serde::value::map_get(__m, \"{field}\").ok_or_else(|| ::serde::de::DeError::new(\"{owner}: missing field {field}\"))?)?"
    )
}
