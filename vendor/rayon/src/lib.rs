//! Offline, API-subset stand-in for `rayon`: a **persistent** worker pool
//! with a rayon-shaped scoped-task surface.
//!
//! The workspace threads its encode/repair hot paths through this crate so
//! that swapping in the real `rayon` is a manifest-only change. Supported
//! surface: [`join`], [`scope`] / [`Scope::spawn`], [`current_num_threads`]
//! and [`ThreadPoolBuilder::build_global`].
//!
//! # Pool architecture
//!
//! Workers are OS threads spawned **once**, lazily, the first time a scope
//! needs them, and kept parked on a condvar between calls. A [`scope`]
//! submits its collected tasks to a small global injector queue (one mutex
//! acquisition for the whole batch), wakes the pool, and then *helps*: the
//! calling thread pops and executes queued tasks itself until its own batch
//! has completed. Steady-state dispatch therefore costs a queue push plus a
//! condvar wake (measured ~0.5 µs at width 2 versus ~12 µs for a single
//! per-call thread spawn — `pool_dispatch_ns` in `BENCH_sim.json`), no
//! thread spawn and no per-call allocation beyond the boxed tasks — which
//! is what lets `drc_gf::slice` split with a 16 KiB per-worker share
//! (`PAR_MIN_LEN`) and engage the pool at 64 KiB total (`PAR_ENGAGE_MIN`),
//! half the 128 KiB engagement the old per-call `std::thread::scope` pool
//! needed.
//!
//! Tasks may borrow from the caller's stack (`'env` lifetimes, like real
//! rayon scopes): the boxed closures are lifetime-erased before entering the
//! queue, which is sound because [`scope`] does not return until every task
//! it submitted has finished (a per-batch completion latch, decremented as
//! each task retires, gates the return).
//!
//! Because *waiting threads execute queued tasks* instead of blocking idly,
//! re-entrant use is deadlock-free: a task that itself calls [`scope`] (or
//! [`join`]) enqueues its sub-tasks and drains the same queue while it
//! waits, so there is always at least one thread making progress on any
//! batch. A panic in a task is caught on the worker, stashed in the batch's
//! latch, and re-raised with its original payload on the thread that called
//! [`scope`] once the rest of the batch has retired.
//!
//! The pool grows to the widest worker count ever requested and never
//! shrinks; parked workers cost a few KiB of stack each and zero CPU.
//!
//! # Thread-count resolution
//!
//! The effective worker count is resolved, in priority order, from
//!
//! 1. the calling thread's [`with_num_threads`] override (a test/bench
//!    extension the real rayon does not have),
//! 2. a [`ThreadPoolBuilder::build_global`] configuration,
//! 3. the `DRC_SIM_THREADS` environment variable (the workspace-wide
//!    threading knob, documented alongside `DRC_GF_KERNEL`), and
//! 4. `std::thread::available_parallelism()`.
//!
//! With one thread everything runs inline on the caller, in spawn order —
//! the deterministic, allocation-free fallback (`DRC_SIM_THREADS=1`) the
//! experiments use to reproduce single-threaded results exactly. The
//! persistent pool is never touched in that mode.
//!
//! # Differences from real rayon
//!
//! * There is no work stealing between per-worker deques — a single global
//!   injector queue hands out whole byte-range tasks. Fine for this
//!   workspace's block-sized work items.
//! * Tasks spawned by a [`scope`] closure start only after the closure
//!   returns (the scope still blocks until every task finishes).
//! * A task that calls [`Scope::spawn`] from inside a running task executes
//!   the nested task immediately, inline. Nested [`scope`]/[`join`] *calls*,
//!   by contrast, use the pool like any other caller.

#![allow(clippy::all)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Sentinel meaning "not configured".
const UNSET: usize = 0;

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(UNSET);
/// Whether `GLOBAL_THREADS` was set by an explicit `build_global` (as
/// opposed to the lazy env-resolution cache): only an explicit
/// configuration makes a later `build_global` fail, matching real rayon.
static GLOBAL_EXPLICIT: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

thread_local! {
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(UNSET) };
}

fn env_or_available_threads() -> usize {
    match std::env::var("DRC_SIM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The number of worker threads parallel operations will use.
///
/// Always at least 1. See the crate docs for the resolution order.
pub fn current_num_threads() -> usize {
    let tls = THREAD_OVERRIDE.with(|c| c.get());
    if tls != UNSET {
        return tls;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != UNSET {
        return global;
    }
    let n = env_or_available_threads();
    // First resolution wins; concurrent initialisers compute the same value.
    let _ = GLOBAL_THREADS.compare_exchange(UNSET, n, Ordering::Relaxed, Ordering::Relaxed);
    GLOBAL_THREADS.load(Ordering::Relaxed)
}

/// Runs `f` with the calling thread's worker count pinned to `n`
/// (an extension over real rayon, used by differential tests and benches).
///
/// The override is thread-local and restored on exit, including on panic.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "worker count must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = THREAD_OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(n);
        Restore(prev)
    });
    f()
}

/// Error type returned by [`ThreadPoolBuilder::build_global`].
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already configured")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global worker configuration (rayon-shaped).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = resolve from the environment).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs this configuration globally.
    ///
    /// Like real rayon, the first *explicit* configuration wins; later calls
    /// fail. A preceding [`current_num_threads`] only caches the environment
    /// default and does not count as a configuration.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            env_or_available_threads()
        } else {
            self.num_threads
        };
        if GLOBAL_EXPLICIT.swap(true, Ordering::Relaxed) {
            return Err(ThreadPoolBuildError(()));
        }
        GLOBAL_THREADS.store(n, Ordering::Relaxed);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The persistent pool.
// ---------------------------------------------------------------------------

/// A lifetime-erased task plus the latch of the batch it belongs to.
///
/// The closure is really `'env`-bounded; erasure is sound because the
/// submitting [`scope`]/[`join`] blocks until the latch opens.
struct RawTask {
    run: Box<dyn FnOnce() + Send>,
    latch: Arc<Latch>,
}

/// Per-batch completion latch: counts tasks still outstanding and carries
/// the first panic payload any of them raised.
///
/// Completion is signalled on the latch's *own* condvar, not the pool-wide
/// one: only the batch owner ever waits for a given latch, so retiring a
/// batch wakes exactly that thread instead of stampeding every parked
/// worker through the global state mutex on each hot-path dispatch.
struct Latch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Pairs the owner's check-then-wait with the completion signal.
    lock: Mutex<()>,
    /// The batch owner sleeps here once the shared queue is drained.
    done: Condvar,
}

impl Latch {
    fn new(tasks: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(tasks),
            panic: Mutex::new(None),
            lock: Mutex::new(()),
            done: Condvar::new(),
        }
    }

    fn is_open(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

struct PoolState {
    queue: VecDeque<RawTask>,
    /// Persistent workers spawned so far (they never exit).
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Idle workers park here and are woken by enqueues. Batch completion
    /// is signalled on the batch's own [`Latch::done`] condvar instead, so
    /// retiring a batch never wakes the whole pool.
    wakeup: Condvar,
}

static POOL: Pool = Pool {
    state: Mutex::new(PoolState {
        queue: VecDeque::new(),
        workers: 0,
    }),
    wakeup: Condvar::new(),
};

/// Number of persistent workers currently parked in or running on the pool
/// (grows to the widest width ever requested; exposed for tests/benches).
pub fn pool_workers() -> usize {
    POOL.state.lock().unwrap_or_else(|e| e.into_inner()).workers
}

/// Runs one task and retires it against its latch. Panics are caught here —
/// workers must never unwind — and re-raised by the batch owner.
fn execute(task: RawTask) {
    let result = catch_unwind(AssertUnwindSafe(task.run));
    if let Err(payload) = result {
        task.latch
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_or_insert(payload);
    }
    // Release-ordered so the batch owner's acquire load of `remaining == 0`
    // observes everything the task wrote.
    if task.latch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Lock/unlock the latch's own mutex to pair this notification with
        // the owner's check-then-wait (which holds the same mutex): no lost
        // wakeup. Only the owner sleeps on this condvar, so no other batch
        // can consume the signal and the pool-wide condvar (and its herd of
        // parked workers) stays untouched.
        drop(task.latch.lock.lock().unwrap_or_else(|e| e.into_inner()));
        task.latch.done.notify_all();
    }
}

fn worker_loop() {
    let mut guard = POOL.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if let Some(task) = guard.queue.pop_front() {
            drop(guard);
            execute(task);
            guard = POOL.state.lock().unwrap_or_else(|e| e.into_inner());
        } else {
            guard = POOL.wakeup.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Grows the pool to at least `target` persistent workers (under the state
/// lock held by the caller).
fn ensure_workers(state: &mut PoolState, target: usize) {
    while state.workers < target {
        std::thread::Builder::new()
            .name(format!("drc-pool-{}", state.workers))
            .spawn(worker_loop)
            .expect("spawning a pool worker thread");
        state.workers += 1;
    }
}

/// Blocks until `latch` opens, executing queued tasks (from *any* batch)
/// while the queue is non-empty — the property that makes nested scopes
/// deadlock-free: every batch owner drains the shared queue before it
/// sleeps, and a batch's tasks are all enqueued before its owner starts
/// waiting (never re-enqueued), so an owner only ever sleeps when its
/// remaining tasks are already running on other threads.
///
/// The sleep itself is on the latch's own condvar (woken by the last task
/// to retire), not the pool-wide one — tasks enqueued *after* this thread
/// sleeps are the enqueuing batch's own responsibility (its owner helps),
/// so missing those wake-ups cannot stall progress.
fn help_until(latch: &Latch) {
    loop {
        // Drain the shared queue first: helping keeps re-entrant scopes
        // deadlock-free and puts idle waiters to work.
        loop {
            if latch.is_open() {
                return;
            }
            let popped = POOL
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .pop_front();
            match popped {
                Some(task) => execute(task),
                None => break,
            }
        }
        // Queue empty: park on the latch until the batch retires. The
        // re-check under the latch mutex pairs with the completion signal's
        // lock/unlock of the same mutex, so the wakeup cannot be lost.
        let guard = latch.lock.lock().unwrap_or_else(|e| e.into_inner());
        if latch.is_open() {
            return;
        }
        drop(latch.done.wait(guard).unwrap_or_else(|e| e.into_inner()));
    }
}

/// Submits a batch of `'env` tasks to the pool and blocks (helping) until
/// all have retired; re-raises the first task panic.
///
/// # Safety invariant
///
/// The lifetime erasure below is sound because this function does not
/// return — normally or by unwind — until `latch` records every task
/// finished, so the `'env` borrows outlive all task executions.
fn run_batch(tasks: Vec<Task<'_>>, width: usize) {
    debug_assert!(tasks.len() > 1 && width > 1);
    let latch = Arc::new(Latch::new(tasks.len()));
    // The caller helps, so this many collaborators saturate the batch.
    let helpers = width.min(tasks.len()).saturating_sub(1);
    {
        let mut state = POOL.state.lock().unwrap_or_else(|e| e.into_inner());
        ensure_workers(&mut state, helpers);
        for task in tasks {
            // SAFETY: erasing `'env` to `'static`; see the invariant above.
            let run: Box<dyn FnOnce() + Send> = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(task)
            };
            state.queue.push_back(RawTask {
                run,
                latch: Arc::clone(&latch),
            });
        }
    }
    // Wake only as many threads as the batch can use — `notify_all` would
    // stampede every parked worker (pool width, not batch size) through the
    // state mutex on each dispatch. Only parked workers sleep on this
    // condvar (batch owners wait on their own latch), a wake landing on
    // nobody is absorbed by busy workers re-polling the queue, and the
    // caller's own help loop below guarantees completion regardless.
    for _ in 0..helpers {
        POOL.wakeup.notify_one();
    }
    help_until(&latch);
    if let Some(payload) = latch.take_panic() {
        resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// Rayon-shaped surface: join / scope.
// ---------------------------------------------------------------------------

/// Runs the two closures, potentially in parallel, returning both results.
///
/// With one worker thread both run sequentially on the caller (`a` first).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let latch = Arc::new(Latch::new(1));
    let mut rb: Option<RB> = None;
    {
        let slot = &mut rb;
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || *slot = Some(b()));
        let mut state = POOL.state.lock().unwrap_or_else(|e| e.into_inner());
        ensure_workers(&mut state, 1);
        state.queue.push_back(RawTask {
            // SAFETY: erasing the borrow of `rb`/`b`; we block on the latch
            // below before touching `rb` or returning, even if `a` panics.
            run: unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(task)
            },
            latch: Arc::clone(&latch),
        });
    }
    POOL.wakeup.notify_one();
    // Run `a` on the caller, but never unwind past the latch while `b` may
    // still be writing into our stack frame.
    let ra = catch_unwind(AssertUnwindSafe(a));
    help_until(&latch);
    if let Some(payload) = latch.take_panic() {
        resume_unwind(payload);
    }
    match ra {
        Ok(ra) => (ra, rb.expect("join task ran to completion")),
        Err(payload) => resume_unwind(payload),
    }
}

type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A scope in which borrowed tasks can be spawned; see [`scope`].
pub struct Scope<'env> {
    tasks: Mutex<Vec<Task<'env>>>,
    /// Inline scopes (single-thread mode, or nested spawns inside a running
    /// task) execute spawned tasks immediately instead of queueing them.
    inline: bool,
}

impl<'env> Scope<'env> {
    fn new(inline: bool) -> Self {
        Scope {
            tasks: Mutex::new(Vec::new()),
            inline,
        }
    }

    /// Spawns a task that may borrow from outside the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        if self.inline {
            f(&Scope::new(true));
            return;
        }
        self.tasks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::new(move || f(&Scope::new(true))));
    }
}

/// Creates a scope, runs `f` in it, then executes every spawned task across
/// the persistent worker pool (the caller participates), blocking until all
/// complete.
///
/// A panic in any task propagates to the caller with its original payload.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let threads = current_num_threads();
    if threads <= 1 {
        // Deterministic fallback: tasks run inline, in spawn order.
        return f(&Scope::new(true));
    }
    let s = Scope::new(false);
    let result = f(&s);
    let tasks = s.tasks.into_inner().unwrap_or_else(|e| e.into_inner());
    match tasks.len() {
        0 => {}
        // One task gains nothing from a handoff; run it on the caller.
        1 => {
            for task in tasks {
                task();
            }
        }
        _ => run_batch(tasks, threads),
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_runs_every_task_with_borrows() {
        let mut outs = vec![0u64; 64];
        let input = 7u64;
        scope(|s| {
            for (i, slot) in outs.iter_mut().enumerate() {
                s.spawn(move |_| *slot = input * i as u64);
            }
        });
        for (i, v) in outs.iter().enumerate() {
            assert_eq!(*v, 7 * i as u64);
        }
    }

    #[test]
    fn single_thread_override_is_inline_and_ordered() {
        let order = Mutex::new(Vec::new());
        let order_ref = &order;
        with_num_threads(1, || {
            assert_eq!(current_num_threads(), 1);
            scope(|s| {
                for i in 0..8 {
                    s.spawn(move |_| order_ref.lock().unwrap().push(i));
                }
            });
        });
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn override_restores_on_exit() {
        let outer = current_num_threads();
        with_num_threads(3, || assert_eq!(current_num_threads(), 3));
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn nested_spawn_executes_inline() {
        let hits = AtomicUsize::new(0);
        with_num_threads(4, || {
            scope(|s| {
                s.spawn(|inner| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    inner.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates() {
        with_num_threads(2, || {
            scope(|s| {
                s.spawn(|_| panic!("boom"));
                s.spawn(|_| {});
            });
        });
    }

    #[test]
    fn workers_persist_across_scopes() {
        let run = |salt: u64| {
            let mut outs = vec![0u64; 16];
            with_num_threads(4, || {
                scope(|s| {
                    for (i, slot) in outs.iter_mut().enumerate() {
                        s.spawn(move |_| *slot = salt + i as u64);
                    }
                });
            });
            outs
        };
        let _ = run(1);
        let after_first = pool_workers();
        assert!(after_first >= 3, "width-4 scope keeps >= 3 workers parked");
        let outs = run(100);
        assert_eq!(outs, (100..116).collect::<Vec<_>>());
        // The pool is process-global and libtest runs tests concurrently, so
        // other tests (e.g. the width-8 stress test) may legitimately grow it
        // between the two reads — only a shrink would mean workers exited.
        let after_second = pool_workers();
        assert!(
            after_second >= after_first,
            "the persistent pool never shrinks ({after_second} < {after_first})"
        );
    }

    #[test]
    fn reentrant_scope_inside_task_completes() {
        // A task that itself calls `scope` must drain the shared queue while
        // waiting (help-while-waiting) instead of deadlocking the pool.
        let mut outer = vec![0u32; 8];
        with_num_threads(4, || {
            scope(|s| {
                for (i, slot) in outer.iter_mut().enumerate() {
                    s.spawn(move |_| {
                        let mut inner = vec![0u32; 4];
                        scope(|s2| {
                            for (j, cell) in inner.iter_mut().enumerate() {
                                s2.spawn(move |_| *cell = (i * 10 + j) as u32);
                            }
                        });
                        *slot = inner.iter().sum();
                    });
                }
            });
        });
        for (i, v) in outer.iter().enumerate() {
            let expected: u32 = (0..4).map(|j| (i * 10 + j) as u32).sum();
            assert_eq!(*v, expected, "outer task {i}");
        }
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        // Several OS threads driving the one global pool at once: batches
        // must not steal each other's completions or results.
        let results: Vec<Mutex<Vec<u64>>> = (0..4).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|ts| {
            for (t, out) in results.iter().enumerate() {
                ts.spawn(move || {
                    with_num_threads(3, || {
                        let mut buf = vec![0u64; 32];
                        scope(|s| {
                            for (i, slot) in buf.iter_mut().enumerate() {
                                s.spawn(move |_| *slot = (t * 1000 + i) as u64);
                            }
                        });
                        *out.lock().unwrap() = buf;
                    });
                });
            }
        });
        for (t, out) in results.iter().enumerate() {
            let buf = out.lock().unwrap();
            for (i, v) in buf.iter().enumerate() {
                assert_eq!(*v, (t * 1000 + i) as u64);
            }
        }
    }

    #[test]
    fn thousand_task_stress() {
        let mut outs = vec![0u64; 1000];
        with_num_threads(8, || {
            scope(|s| {
                for (i, slot) in outs.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = (i as u64).wrapping_mul(2654435761));
                }
            });
        });
        for (i, v) in outs.iter().enumerate() {
            assert_eq!(*v, (i as u64).wrapping_mul(2654435761));
        }
    }

    #[test]
    #[should_panic(expected = "inner boom")]
    fn panic_in_reentrant_scope_propagates_to_outer_caller() {
        with_num_threads(4, || {
            scope(|s| {
                s.spawn(|_| {
                    scope(|s2| {
                        s2.spawn(|_| panic!("inner boom"));
                        s2.spawn(|_| {});
                    });
                });
                s.spawn(|_| {});
            });
        });
    }

    #[test]
    fn scope_survives_a_panicked_batch() {
        // After a panicked batch the pool must stay serviceable.
        let r = std::panic::catch_unwind(|| {
            with_num_threads(2, || {
                scope(|s| {
                    s.spawn(|_| panic!("first batch dies"));
                    s.spawn(|_| {});
                })
            })
        });
        assert!(r.is_err());
        let mut outs = vec![0u8; 8];
        with_num_threads(2, || {
            scope(|s| {
                for (i, slot) in outs.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = i as u8 + 1);
                }
            });
        });
        assert_eq!(outs, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn join_runs_tasks_and_propagates_second_panic() {
        let (a, b) = with_num_threads(4, || join(|| 1u32, || 2u32));
        assert_eq!((a, b), (1, 2));
        let r = std::panic::catch_unwind(|| {
            with_num_threads(4, || join(|| 1u32, || -> u32 { panic!("b boom") }))
        });
        assert!(r.is_err());
    }
}
