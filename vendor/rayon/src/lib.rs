//! Offline, API-subset stand-in for `rayon`: a scoped worker pool built on
//! `std::thread::scope`.
//!
//! The workspace threads its encode/repair hot paths through this crate so
//! that swapping in the real `rayon` is a manifest-only change. Supported
//! surface: [`join`], [`scope`] / [`Scope::spawn`], [`current_num_threads`]
//! and [`ThreadPoolBuilder::build_global`].
//!
//! # Thread-count resolution
//!
//! The effective worker count is resolved, in priority order, from
//!
//! 1. the calling thread's [`with_num_threads`] override (a test/bench
//!    extension the real rayon does not have),
//! 2. a [`ThreadPoolBuilder::build_global`] configuration,
//! 3. the `DRC_SIM_THREADS` environment variable (the workspace-wide
//!    threading knob, documented alongside `DRC_GF_KERNEL`), and
//! 4. `std::thread::available_parallelism()`.
//!
//! With one thread everything runs inline on the caller, in spawn order —
//! the deterministic fallback (`DRC_SIM_THREADS=1`) the experiments use to
//! reproduce single-threaded results exactly.
//!
//! # Differences from real rayon
//!
//! * There is no persistent pool: each [`scope`] spins up short-lived
//!   `std::thread::scope` workers. Fine for block-sized work items
//!   (microseconds of spawn cost against milliseconds of GF arithmetic).
//! * Tasks spawned by a [`scope`] closure start only after the closure
//!   returns (the scope still blocks until every task finishes).
//! * A task that calls [`Scope::spawn`] from inside a running task executes
//!   the nested task immediately, inline.

#![allow(clippy::all)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sentinel meaning "not configured".
const UNSET: usize = 0;

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(UNSET);
/// Whether `GLOBAL_THREADS` was set by an explicit `build_global` (as
/// opposed to the lazy env-resolution cache): only an explicit
/// configuration makes a later `build_global` fail, matching real rayon.
static GLOBAL_EXPLICIT: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

thread_local! {
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(UNSET) };
}

fn env_or_available_threads() -> usize {
    match std::env::var("DRC_SIM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The number of worker threads parallel operations will use.
///
/// Always at least 1. See the crate docs for the resolution order.
pub fn current_num_threads() -> usize {
    let tls = THREAD_OVERRIDE.with(|c| c.get());
    if tls != UNSET {
        return tls;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != UNSET {
        return global;
    }
    let n = env_or_available_threads();
    // First resolution wins; concurrent initialisers compute the same value.
    let _ = GLOBAL_THREADS.compare_exchange(UNSET, n, Ordering::Relaxed, Ordering::Relaxed);
    GLOBAL_THREADS.load(Ordering::Relaxed)
}

/// Runs `f` with the calling thread's worker count pinned to `n`
/// (an extension over real rayon, used by differential tests and benches).
///
/// The override is thread-local and restored on exit, including on panic.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "worker count must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = THREAD_OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(n);
        Restore(prev)
    });
    f()
}

/// Error type returned by [`ThreadPoolBuilder::build_global`].
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already configured")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global worker configuration (rayon-shaped).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = resolve from the environment).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs this configuration globally.
    ///
    /// Like real rayon, the first *explicit* configuration wins; later calls
    /// fail. A preceding [`current_num_threads`] only caches the environment
    /// default and does not count as a configuration.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            env_or_available_threads()
        } else {
            self.num_threads
        };
        if GLOBAL_EXPLICIT.swap(true, Ordering::Relaxed) {
            return Err(ThreadPoolBuildError(()));
        }
        GLOBAL_THREADS.store(n, Ordering::Relaxed);
        Ok(())
    }
}

/// Runs the two closures, potentially in parallel, returning both results.
///
/// With one worker thread both run sequentially on the caller (`a` first).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A scope in which borrowed tasks can be spawned; see [`scope`].
pub struct Scope<'env> {
    tasks: Mutex<Vec<Task<'env>>>,
    /// Inline scopes (single-thread mode, or nested spawns inside a running
    /// task) execute spawned tasks immediately instead of queueing them.
    inline: bool,
}

impl<'env> Scope<'env> {
    fn new(inline: bool) -> Self {
        Scope {
            tasks: Mutex::new(Vec::new()),
            inline,
        }
    }

    /// Spawns a task that may borrow from outside the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        if self.inline {
            f(&Scope::new(true));
            return;
        }
        self.tasks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::new(move || f(&Scope::new(true))));
    }
}

/// Creates a scope, runs `f` in it, then executes every spawned task across
/// the configured worker threads, blocking until all complete.
///
/// A panic in any task propagates to the caller.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let threads = current_num_threads();
    if threads <= 1 {
        // Deterministic fallback: tasks run inline, in spawn order.
        return f(&Scope::new(true));
    }
    let s = Scope::new(false);
    let result = f(&s);
    let tasks = s.tasks.into_inner().unwrap_or_else(|e| e.into_inner());
    run_tasks(tasks, threads);
    result
}

fn run_tasks(tasks: Vec<Task<'_>>, threads: usize) {
    if tasks.is_empty() {
        return;
    }
    if tasks.len() == 1 || threads <= 1 {
        for t in tasks {
            t();
        }
        return;
    }
    // Self-scheduling workers: a shared claim counter hands out tasks; each
    // slot's mutex lets a worker move the boxed task out of the shared list.
    let workers = threads.min(tasks.len());
    let slots: Vec<Mutex<Option<Task<'_>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|ts| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                ts.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let task = slots[i]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("each task slot is claimed exactly once");
                    task();
                })
            })
            .collect();
        // Join explicitly so a task panic is re-raised with its own payload.
        let mut panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_runs_every_task_with_borrows() {
        let mut outs = vec![0u64; 64];
        let input = 7u64;
        scope(|s| {
            for (i, slot) in outs.iter_mut().enumerate() {
                s.spawn(move |_| *slot = input * i as u64);
            }
        });
        for (i, v) in outs.iter().enumerate() {
            assert_eq!(*v, 7 * i as u64);
        }
    }

    #[test]
    fn single_thread_override_is_inline_and_ordered() {
        let order = Mutex::new(Vec::new());
        let order_ref = &order;
        with_num_threads(1, || {
            assert_eq!(current_num_threads(), 1);
            scope(|s| {
                for i in 0..8 {
                    s.spawn(move |_| order_ref.lock().unwrap().push(i));
                }
            });
        });
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn override_restores_on_exit() {
        let outer = current_num_threads();
        with_num_threads(3, || assert_eq!(current_num_threads(), 3));
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn nested_spawn_executes_inline() {
        let hits = AtomicUsize::new(0);
        with_num_threads(4, || {
            scope(|s| {
                s.spawn(|inner| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    inner.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates() {
        with_num_threads(2, || {
            scope(|s| {
                s.spawn(|_| panic!("boom"));
                s.spawn(|_| {});
            });
        });
    }
}
