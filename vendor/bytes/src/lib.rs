//! Offline subset of the `bytes` crate: an immutable, cheaply cloneable,
//! reference-counted byte container.

#![allow(clippy::all)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable slice of bytes.
///
/// Internally an `Arc<Vec<u8>>` rather than an `Arc<[u8]>`: `From<Vec<u8>>`
/// then takes ownership of the vector's existing allocation instead of
/// copying it into a fresh `Arc` buffer, so converting a freshly built block
/// into a `Bytes` handle is O(1) in both time and memory — which is what
/// keeps the streaming repair path's transient footprint at chunk scale.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a static/borrowed slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Takes back the inner vector if this handle is the sole owner,
    /// returning the handle unchanged otherwise.
    ///
    /// (Real `bytes` exposes `try_into_mut`; this subset hands the vector
    /// back directly so buffer pools can recycle dropped payloads without
    /// copying.)
    pub fn try_unwrap(self) -> Result<Vec<u8>, Bytes> {
        Arc::try_unwrap(self.data).map_err(|data| Bytes { data })
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    /// Zero-copy: the vector's allocation is moved into the handle.
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: Arc::new(v.to_vec()),
        }
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes {
            data: Arc::new(v.to_vec()),
        }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
