//! Offline, API-surface-compatible subset of `rand` for this workspace.
//!
//! Provides the traits (`RngCore`, `Rng`, `SeedableRng`, `seq::SliceRandom`)
//! and range sampling the workspace uses. Distribution quality matches the
//! classic Lemire/widening-multiply approach; the concrete generator lives in
//! the sibling `rand_chacha` stub.

#![allow(clippy::all)]

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 (the
    /// same expansion real `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Widening-multiply rejection sampling (Lemire).
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                SampleRange::<$t>::sample_single(start..end + 1, rng)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return (self.start as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_signed_range!(isize, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 random mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // Guard against landing on `end` through rounding.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        SampleRange::<f64>::sample_single(self.start as f64..self.end as f64, rng) as f32
    }
}

/// Types with a canonical "standard" distribution (`Rng::gen`): uniform over
/// all values for integers/bool, uniform in `[0, 1)` for floats.
pub trait StandardSample {
    /// Draws one standard-distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::standard_sample(rng) as f32
    }
}

/// Convenience methods layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Draws a standard-distributed value (see [`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleRange::<usize>::sample_single(0..i + 1, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::SampleRange::<usize>::sample_single(0..self.len(), rng);
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = Lcg(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should permute");
    }

    #[test]
    fn dyn_rng_object_safety() {
        let mut rng = Lcg(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..10usize);
        assert!(v < 10);
    }
}
