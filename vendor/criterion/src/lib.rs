//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API this workspace uses.
//!
//! Measurement model: a short warm-up, then timed batches until the
//! measurement budget (default 200 ms, `CRITERION_MEASURE_MS` overrides) is
//! spent; the mean ns/iteration over the best batch is reported together
//! with throughput when one was declared. No statistics files are written.

#![allow(clippy::all)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id string (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoId {
    /// Converts `self` into the id string.
    fn into_id(self) -> String;
}

impl IntoId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoId for String {
    fn into_id(self) -> String {
        self
    }
}

/// One measured result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/name`).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Bytes per second implied by the measurement, when byte throughput was
    /// declared.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Bytes(b)) => Some(b as f64 / (self.ns_per_iter / 1e9)),
            _ => None,
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    measure_ms: u64,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure_ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200);
        Criterion {
            measure_ms,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(self, None, id, f);
        self
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function(&mut self, id: impl IntoId, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        let throughput = self.throughput;
        run_one(self.criterion, throughput, id, f);
        self
    }

    /// Benchmarks a closure with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        let throughput = self.throughput;
        run_one(self.criterion, throughput, id, |b| f(b, input));
        self
    }

    /// Ends the group (printing is done per-benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured body.
pub struct Bencher {
    measure: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, running it repeatedly for the configured budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: a few iterations, also used to size batches.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            hint::black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() > self.measure / 10 || warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let batch = ((self.measure.as_nanos() as f64 / 10.0 / per_iter.max(1.0)) as u64).max(1);

        let mut best = f64::INFINITY;
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.ns_per_iter = best;
    }
}

fn run_one(
    criterion: &mut Criterion,
    throughput: Option<Throughput>,
    id: String,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        measure: Duration::from_millis(criterion.measure_ms),
        ns_per_iter: f64::NAN,
    };
    f(&mut bencher);
    let m = Measurement {
        id,
        ns_per_iter: bencher.ns_per_iter,
        throughput,
    };
    print_measurement(&m);
    criterion.measurements.push(m);
}

fn print_measurement(m: &Measurement) {
    let time = if m.ns_per_iter.is_nan() {
        "no iter() call".to_string()
    } else if m.ns_per_iter >= 1e6 {
        format!("{:10.3} ms/iter", m.ns_per_iter / 1e6)
    } else if m.ns_per_iter >= 1e3 {
        format!("{:10.3} µs/iter", m.ns_per_iter / 1e3)
    } else {
        format!("{:10.1} ns/iter", m.ns_per_iter)
    };
    match m.bytes_per_sec() {
        Some(bps) => println!(
            "{:<60} {}   {:10.1} MiB/s",
            m.id,
            time,
            bps / (1024.0 * 1024.0)
        ),
        None => println!("{:<60} {}", m.id, time),
    }
}

/// Builds a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Builds a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}
