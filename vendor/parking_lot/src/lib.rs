//! Offline subset of `parking_lot`: `Mutex` / `RwLock` with the poison-free
//! API, implemented over `std::sync`. A poisoned std lock means a panic
//! already happened on another thread; propagating the panic is the closest
//! equivalent to parking_lot's behaviour.

#![allow(clippy::all)]

use std::sync;

/// A reader-writer lock whose guards never return poisoning errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose guard never returns poisoning errors.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(*m.lock(), "ab");
    }
}
