//! Offline, API-surface-compatible subset of `proptest`.
//!
//! Supports the DSL this workspace uses: the `proptest!` macro (with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `any::<T>()`,
//! integer range strategies, `Just`, `prop_oneof!`, `prop::collection::vec`,
//! `.prop_map(..)`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (stable across runs and machines), and failing cases are
//! reported without shrinking.

#![allow(clippy::all)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `proptest::prelude`-alike: everything the test DSL needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each test function against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                __case,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{}` != `{}`\n  both: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l
                ),
            ));
        }
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniformly picks one of several strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
