//! Value-generation strategies (no shrinking).

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of a given type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe helper so strategies can be boxed despite the associated type.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Values with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): good enough for property tests in this repo.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

/// Generates unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniformly picks one of several strategies per case (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union from type-erased options.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}
