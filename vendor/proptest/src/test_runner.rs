//! Deterministic case generation and the test-case error type.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep that for comparable coverage.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (not a failure).
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Deterministic PRNG (SplitMix64) seeding each test from its name, so runs
/// are reproducible across machines and invocations.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from the test name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}
