//! Offline JSON front-end for the workspace's serde subset.
//!
//! Renders [`serde::value::Value`] trees to JSON text and parses them back.
//! Self-consistent (round-trips everything this workspace serialises) but not
//! a compatibility promise to the real `serde_json`.

#![allow(clippy::all)]

use std::fmt;

pub use serde::value::Value;

/// Error type for JSON serialisation / deserialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::DeError> for Error {
    fn from(e: serde::de::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::deserialize(&value)?)
}

/// Serialises a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialises a value to human-readable, indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's float Display emits the shortest round-trippable
                // form; force a ".0" on integral floats so the value parses
                // back as a float rather than an integer.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else if f.is_nan() {
                write_string(out, "__f64::nan");
            } else if *f > 0.0 {
                write_string(out, "__f64::inf");
            } else {
                write_string(out, "__f64::-inf");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, level),
        Value::Map(entries) => write_map(out, entries, indent, level),
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, level: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_value(out, item, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, level: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid float literal {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid integer literal {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid integer literal {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in ["null", "true", "false", "0", "-7", "1.5", "\"hi\""] {
            let v = parse(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#;
        let v = parse(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = parse(r#"{"a":[1,2],"b":{"c":1.25}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        let v = Value::Float(f64::INFINITY);
        let s = to_string(&v).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, f64::INFINITY);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let s = to_string(&Value::Float(3.0)).unwrap();
        assert_eq!(s, "3.0");
        assert_eq!(parse(&s).unwrap(), Value::Float(3.0));
    }
}
