//! Offline ChaCha8-based generator for the workspace's rand subset.
//!
//! Implements the genuine ChaCha8 stream cipher keystream (IETF variant,
//! 32-bit counter starting at zero, zero nonce), so output quality matches
//! the real `rand_chacha`. Exact output streams are NOT guaranteed to match
//! the upstream crate; the workspace only relies on determinism per seed.

#![allow(clippy::all)]

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constant state (words 0..12 of the ChaCha state).
    state: [u32; 16],
    /// Buffered keystream block.
    buffer: [u8; 64],
    /// Next unread byte in `buffer`; 64 means exhausted.
    index: usize,
    /// Block counter.
    counter: u64,
}

const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        working[12] = self.counter as u32;
        working[13] = (self.counter >> 32) as u32;
        let initial = working;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, word) in working.iter_mut().enumerate() {
            *word = word.wrapping_add(initial[i]);
            self.buffer[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn take(&mut self, n: usize) -> &[u8] {
        if self.index + n > 64 {
            self.refill();
        }
        let slice = &self.buffer[self.index..self.index + n];
        self.index += n;
        slice
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Words 12..13 are the counter (set per block); 14..15 the zero nonce.
        ChaCha8Rng {
            state,
            buffer: [0u8; 64],
            index: 64,
            counter: 0,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.index == 64 {
                self.refill();
            }
            let n = (dest.len() - written).min(64 - self.index);
            dest[written..written + n].copy_from_slice(&self.buffer[self.index..self.index + n]);
            self.index += n;
            written += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        let mut buf = [0u8; 24];
        a.fill_bytes(&mut buf);
        let words: Vec<u8> = (0..3).flat_map(|_| b.next_u64().to_le_bytes()).collect();
        assert_eq!(buf.to_vec(), words);
    }

    #[test]
    fn chacha20_rfc7539_block_function_sanity() {
        // The quarter-round test vector from RFC 7539 §2.1.1.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }
}
