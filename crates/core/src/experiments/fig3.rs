//! Fig. 3: map-task data locality vs load, for µ = 2, 4, 8 map slots per
//! node, under delay scheduling, maximum matching and (for µ = 4) the
//! modified peeling algorithm.

use serde::{Deserialize, Serialize};

use drc_codes::CodeKind;
use drc_mapreduce::{simulate_locality, LocalityConfig, LocalityResult, SchedulerKind};
use drc_workloads::fig3_loads;

use crate::experiments::{harness, Effort, DEFAULT_SEED};
use crate::render::TextTable;
use crate::DrcError;

/// The full set of Fig. 3 curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Data {
    /// One locality result per (µ, code, scheduler, load) combination.
    pub points: Vec<LocalityResult>,
}

impl Fig3Data {
    /// The locality points of one panel (a fixed µ and scheduler), ordered by
    /// code then load — one plotted curve per code.
    pub fn panel(&self, map_slots: usize, scheduler: SchedulerKind) -> Vec<&LocalityResult> {
        self.points
            .iter()
            .filter(|p| p.map_slots == map_slots && p.scheduler == scheduler)
            .collect()
    }

    /// Looks up a single point.
    pub fn point(
        &self,
        map_slots: usize,
        scheduler: SchedulerKind,
        code: CodeKind,
        load: f64,
    ) -> Option<&LocalityResult> {
        self.points.iter().find(|p| {
            p.map_slots == map_slots
                && p.scheduler == scheduler
                && p.code == code
                && (p.load_percent - load).abs() < 1e-9
        })
    }
}

/// Runs the Fig. 3 simulation sweep.
///
/// The three top panels sweep µ ∈ {2, 4, 8} with delay scheduling and maximum
/// matching for 2-rep, pentagon and heptagon; the fourth panel adds the
/// peeling scheduler at µ = 4 (matching the paper's bottom-right subplot).
///
/// # Errors
///
/// Propagates any simulation configuration error (which does not occur for
/// the fixed sweep used here).
pub fn run_fig3(effort: Effort) -> Result<Fig3Data, DrcError> {
    let trials = effort.trials();
    // One cell per (µ, code, scheduler, load) point, in the figure's fixed
    // panel order; every cell seeds its own rng from the shared base seed.
    let mut specs: Vec<(CodeKind, SchedulerKind, usize, f64)> = Vec::new();
    for &mu in &[2usize, 4, 8] {
        for code in CodeKind::fig3_set() {
            for scheduler in [SchedulerKind::Delay, SchedulerKind::MaxMatching] {
                for load in fig3_loads() {
                    specs.push((code, scheduler, mu, load.percent));
                }
            }
        }
    }
    // The peeling panel (µ = 4), pentagon and heptagon as in the paper.
    for code in [CodeKind::Pentagon, CodeKind::Heptagon] {
        for load in fig3_loads() {
            specs.push((code, SchedulerKind::Peeling, 4, load.percent));
        }
    }
    let cells = specs
        .into_iter()
        .map(|(code, scheduler, mu, load)| move || run_point(code, scheduler, mu, load, trials))
        .collect();
    Ok(Fig3Data {
        points: harness::run_cells(cells)?,
    })
}

fn run_point(
    code: CodeKind,
    scheduler: SchedulerKind,
    mu: usize,
    load: f64,
    trials: usize,
) -> Result<LocalityResult, DrcError> {
    let config = LocalityConfig::new(code, scheduler, mu, load)
        .with_trials(trials)
        .with_seed(DEFAULT_SEED);
    Ok(simulate_locality(&config)?)
}

impl std::fmt::Display for Fig3Data {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let loads = fig3_loads();
        let mut slots: Vec<usize> = self.points.iter().map(|p| p.map_slots).collect();
        slots.sort_unstable();
        slots.dedup();
        for &mu in &slots {
            let mut schedulers: Vec<SchedulerKind> = self
                .points
                .iter()
                .filter(|p| p.map_slots == mu)
                .map(|p| p.scheduler)
                .collect();
            schedulers.sort_by_key(|s| format!("{s:?}"));
            schedulers.dedup();
            for scheduler in schedulers {
                let mut table = TextTable::new(
                    format!("Fig. 3 panel: mu = {mu} map slots, {scheduler}"),
                    &["Code", "25% load", "50% load", "75% load", "100% load"],
                );
                let mut codes: Vec<CodeKind> = self
                    .points
                    .iter()
                    .filter(|p| p.map_slots == mu && p.scheduler == scheduler)
                    .map(|p| p.code)
                    .collect();
                codes.dedup();
                for code in codes {
                    let mut cells = vec![code.to_string()];
                    for load in &loads {
                        let value = self
                            .point(mu, scheduler, code, load.percent)
                            .map(|p| format!("{:.1}%", p.mean_locality_percent))
                            .unwrap_or_else(|| "-".to_string());
                        cells.push(value);
                    }
                    table.push_row(cells);
                }
                writeln!(f, "{table}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_panel_of_the_figure() {
        let data = run_fig3(Effort::Quick).unwrap();
        // 3 slots x 3 codes x 2 schedulers x 4 loads + peeling: 2 codes x 4 loads.
        assert_eq!(data.points.len(), 3 * 3 * 2 * 4 + 2 * 4);
        for &mu in &[2usize, 4, 8] {
            assert_eq!(data.panel(mu, SchedulerKind::Delay).len(), 12);
            assert_eq!(data.panel(mu, SchedulerKind::MaxMatching).len(), 12);
        }
        assert_eq!(data.panel(4, SchedulerKind::Peeling).len(), 8);
        assert_eq!(data.panel(2, SchedulerKind::Peeling).len(), 0);
        assert!(data
            .point(2, SchedulerKind::Delay, CodeKind::Pentagon, 100.0)
            .is_some());
        let rendered = data.to_string();
        assert!(rendered.contains("mu = 2"));
        assert!(rendered.contains("peeling"));
    }

    #[test]
    fn figure_shape_matches_paper() {
        let data = run_fig3(Effort::Quick).unwrap();
        let loc = |mu, sched, code, load| {
            data.point(mu, sched, code, load)
                .unwrap()
                .mean_locality_percent
        };
        // At mu = 2 and full load the ordering is 2-rep > pentagon > heptagon.
        assert!(
            loc(2, SchedulerKind::Delay, CodeKind::TWO_REP, 100.0)
                > loc(2, SchedulerKind::Delay, CodeKind::Pentagon, 100.0)
        );
        assert!(
            loc(2, SchedulerKind::Delay, CodeKind::Pentagon, 100.0)
                > loc(2, SchedulerKind::Delay, CodeKind::Heptagon, 100.0)
        );
        // Locality improves with more map slots for the array codes.
        assert!(
            loc(8, SchedulerKind::Delay, CodeKind::Heptagon, 100.0)
                > loc(2, SchedulerKind::Delay, CodeKind::Heptagon, 100.0)
        );
        // Peeling improves on delay scheduling at mu = 4 (the bottom panel).
        assert!(
            loc(4, SchedulerKind::Peeling, CodeKind::Pentagon, 100.0)
                >= loc(4, SchedulerKind::Delay, CodeKind::Pentagon, 100.0) - 0.5
        );
        // Max-matching is the upper benchmark everywhere we sample.
        assert!(
            loc(4, SchedulerKind::MaxMatching, CodeKind::Heptagon, 75.0)
                >= loc(4, SchedulerKind::Delay, CodeKind::Heptagon, 75.0) - 0.5
        );
    }
}
