//! Encoding-duration measurements (§5: "other important metrics, like
//! encoding duration ... also need to be ascertained").
//!
//! For each code the experiment encodes a fixed volume of data through the
//! real encode path and reports throughput in MiB/s per stripe, alongside the
//! parity fraction that must be computed. Replication "encoding" is a plain
//! copy, the pentagon/heptagon codes compute one XOR parity per stripe, and
//! the heptagon-local code additionally evaluates two GF-weighted global
//! parities — the measured ordering reflects exactly that work.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use drc_codes::{CodeKind, StripeEncoder};

use crate::experiments::harness;
use crate::render::TextTable;
use crate::DrcError;

/// Encoding-throughput measurement for one code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodingRow {
    /// The coding scheme.
    pub code: CodeKind,
    /// Data bytes encoded per stripe.
    pub stripe_data_bytes: usize,
    /// Parity bytes computed per stripe (stored parity content, excluding
    /// replication of data blocks).
    pub stripe_parity_bytes: usize,
    /// Measured encoding throughput in MiB of *data* per second.
    pub throughput_mb_per_s: f64,
    /// Wall-clock seconds measured.
    pub elapsed_s: f64,
}

/// The encoding-duration table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodingReport {
    /// Block size used for the measurement, in bytes.
    pub block_bytes: usize,
    /// Stripes encoded per code.
    pub stripes: usize,
    /// One row per code.
    pub rows: Vec<EncodingRow>,
}

/// Measures encoding throughput for the paper's codes.
///
/// `block_bytes` is the payload size per block and `stripes` the number of
/// stripes encoded per code (more stripes → more stable numbers).
///
/// # Errors
///
/// Returns an error only if a code fails to build or encode.
pub fn run_encoding(block_bytes: usize, stripes: usize) -> Result<EncodingReport, DrcError> {
    let mut kinds = vec![CodeKind::TWO_REP];
    kinds.extend(CodeKind::table1_set());
    // One cell per code. Each cell owns its data, encoder and timer; the
    // throughput / elapsed fields are wall-clock measurements, so only the
    // structural fields are expected to be width-invariant.
    let cells = kinds
        .into_iter()
        .map(|kind| move || encoding_row(kind, block_bytes, stripes))
        .collect();
    Ok(EncodingReport {
        block_bytes,
        stripes: stripes.max(1),
        rows: harness::run_cells(cells)?,
    })
}

/// Encodes `stripes` stripes through the production encode path for one code
/// and measures throughput.
fn encoding_row(
    kind: CodeKind,
    block_bytes: usize,
    stripes: usize,
) -> Result<EncodingRow, DrcError> {
    let code = kind.build()?;
    let k = code.data_blocks();
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..block_bytes).map(|j| (i * 31 + j * 7) as u8).collect())
        .collect();
    // Measure the production encode path: buffer-reusing, fused,
    // zero-allocation parity computation (the write path of the
    // simulated HDFS uses exactly this).
    let mut encoder = StripeEncoder::new();
    let start = Instant::now();
    let mut parity_bytes = 0usize;
    for _ in 0..stripes.max(1) {
        let parities = encoder.encode(code.as_ref(), &data)?;
        parity_bytes = parities.iter().map(Vec::len).sum();
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let data_bytes = k * block_bytes * stripes.max(1);
    Ok(EncodingRow {
        code: kind,
        stripe_data_bytes: k * block_bytes,
        stripe_parity_bytes: parity_bytes,
        throughput_mb_per_s: data_bytes as f64 / (1024.0 * 1024.0) / elapsed,
        elapsed_s: elapsed,
    })
}

impl std::fmt::Display for EncodingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut table = TextTable::new(
            format!(
                "Encoding throughput ({} KiB blocks, {} stripes per code)",
                self.block_bytes / 1024,
                self.stripes
            ),
            &[
                "Code",
                "Data per stripe",
                "Parity per stripe",
                "Throughput (MiB/s)",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.code.to_string(),
                format!("{} KiB", row.stripe_data_bytes / 1024),
                format!("{} KiB", row.stripe_parity_bytes / 1024),
                format!("{:.0}", row.throughput_mb_per_s),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_all_codes_and_parity_volumes() {
        let report = run_encoding(64 * 1024, 2).unwrap();
        assert_eq!(report.rows.len(), 7);
        let row = |kind: CodeKind| report.rows.iter().find(|r| r.code == kind).unwrap();
        // Replication computes no parity at all.
        assert_eq!(row(CodeKind::TWO_REP).stripe_parity_bytes, 0);
        assert_eq!(row(CodeKind::THREE_REP).stripe_parity_bytes, 0);
        // Pentagon and heptagon compute one parity block per stripe.
        assert_eq!(row(CodeKind::Pentagon).stripe_parity_bytes, 64 * 1024);
        assert_eq!(row(CodeKind::Heptagon).stripe_parity_bytes, 64 * 1024);
        // Heptagon-local computes two local parities plus two global parities.
        assert_eq!(
            row(CodeKind::HeptagonLocal).stripe_parity_bytes,
            4 * 64 * 1024
        );
        for r in &report.rows {
            assert!(r.throughput_mb_per_s > 0.0);
            assert!(r.elapsed_s > 0.0);
        }
        assert!(report.to_string().contains("Throughput"));
    }
}
