//! Cell-based fan-out for the experiment layer.
//!
//! A **cell** is one independent unit of experimental work — one
//! experiment × [`drc_codes::CodeKind`] × configuration point — that builds
//! its own private `ClusterNet` and rng, shares nothing with its siblings,
//! and returns a typed result. Every experiment module expresses its sweep
//! as an ordered list of cells and hands them to [`run_cells`], which fans
//! them out across the persistent `rayon` worker pool and merges the
//! results **in the original cell order after the join**.
//!
//! # Determinism
//!
//! Emitted results are byte-identical at every harness width:
//!
//! * each cell seeds its own rng and simulates in virtual time, so its
//!   result does not depend on when or where it runs;
//! * results are merged in fixed cell order after all cells complete, so
//!   scheduling order never reaches the output;
//! * if several cells fail, the error of the *earliest* cell in cell order
//!   is returned, regardless of which failure was observed first.
//!
//! Cells must not communicate through shared mutable state; the
//! `parallel-float-reduction` rule in `drc-lint` additionally rejects
//! float accumulation inside pool closures across the workspace's library
//! sources, so cross-cell reductions stay on the caller after the join.
//!
//! # Width
//!
//! The fan-out width is resolved per [`run_cells`] call:
//!
//! 1. a thread-local [`with_jobs`] override (used by differential tests),
//! 2. the `DRC_REPRO_JOBS` environment variable,
//! 3. the worker-pool width (`rayon::current_num_threads()`).
//!
//! `DRC_REPRO_JOBS=1` (or `with_jobs(1, …)`) is the fully serial path: the
//! cells run inline on the caller, in order. Invalid values of the
//! environment variable are diagnosed once on stderr and ignored.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::DrcError;

/// Environment variable naming the harness fan-out width.
pub const REPRO_JOBS_ENV: &str = "DRC_REPRO_JOBS";

thread_local! {
    /// 0 = no override in force.
    static JOBS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Runs `f` with the calling thread's harness width pinned to `n`.
///
/// The override is thread-local and restored on exit, including on panic —
/// the same discipline as `rayon::with_num_threads`, and safe under a
/// parallel test runner where mutating the environment would race.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "harness width must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = JOBS_OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(n);
        Restore(prev)
    });
    f()
}

/// The harness width [`run_cells`] will use on this thread: the
/// [`with_jobs`] override, else `DRC_REPRO_JOBS`, else the pool width.
pub fn current_jobs() -> usize {
    let tls = JOBS_OVERRIDE.with(|c| c.get());
    if tls != 0 {
        return tls;
    }
    if let Ok(raw) = std::env::var(REPRO_JOBS_ENV) {
        match raw.parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => warn_bad_jobs(&raw),
        }
    }
    rayon::current_num_threads()
}

fn warn_bad_jobs(raw: &str) {
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "warning: ignoring invalid {REPRO_JOBS_ENV}={raw:?}; \
             expected a positive integer (1 = serial)"
        );
    }
}

/// Runs an ordered list of independent cells, each returning a typed
/// result, and hands back the results in the original cell order.
///
/// At width 1 the cells run inline on the caller, in order (the serial
/// path). At width N > 1 they are spawned onto the persistent worker pool
/// with the caller participating; results land in per-cell slots and are
/// merged in cell order after the join, so the output is identical at
/// every width. See the module docs for the full determinism contract.
///
/// Note that the width override only pins the *harness* fan-out: a cell
/// executing on a pool worker still sees the global pool width for any
/// nested shard-parallel work (GF encodes), which is itself byte-identical
/// at every width.
///
/// # Errors
///
/// Returns the error of the earliest failing cell in cell order. (The
/// serial path stops at the first error; the parallel path completes every
/// cell first, then picks the earliest — the reported error is the same.)
pub fn run_cells<T, F>(cells: Vec<F>) -> Result<Vec<T>, DrcError>
where
    T: Send,
    F: FnOnce() -> Result<T, DrcError> + Send,
{
    let width = current_jobs().min(cells.len()).max(1);
    if width <= 1 {
        let mut out = Vec::with_capacity(cells.len());
        for cell in cells {
            out.push(cell()?);
        }
        return Ok(out);
    }
    let mut slots: Vec<Option<Result<T, DrcError>>> = Vec::new();
    slots.resize_with(cells.len(), || None);
    rayon::with_num_threads(width, || {
        rayon::scope(|s| {
            for (slot, cell) in slots.iter_mut().zip(cells) {
                s.spawn(move |_| *slot = Some(cell()));
            }
        })
    });
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            // Unreachable: the scope joins every spawned task (panics
            // propagate out of `scope`), but stay panic-free regardless.
            None => {
                return Err(DrcError::InvalidExperiment {
                    reason: "harness cell completed without a result".to_string(),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order_at_any_width() {
        let cells = |n: usize| {
            (0..n)
                .map(|i| move || -> Result<usize, DrcError> { Ok(i * i) })
                .collect::<Vec<_>>()
        };
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for width in [1, 2, 4] {
            let got = with_jobs(width, || run_cells(cells(37))).unwrap();
            assert_eq!(got, expect, "width {width}");
        }
    }

    #[test]
    fn earliest_error_in_cell_order_wins() {
        let cells = (0..8)
            .map(|i| {
                move || -> Result<usize, DrcError> {
                    if i % 2 == 1 {
                        Err(DrcError::InvalidExperiment {
                            reason: format!("cell {i}"),
                        })
                    } else {
                        Ok(i)
                    }
                }
            })
            .collect::<Vec<_>>();
        for width in [1, 4] {
            let err = with_jobs(width, || run_cells(cells.clone())).unwrap_err();
            assert_eq!(
                err,
                DrcError::InvalidExperiment {
                    reason: "cell 1".to_string()
                },
                "width {width}"
            );
        }
    }

    #[test]
    fn with_jobs_overrides_and_restores() {
        let ambient = current_jobs();
        with_jobs(3, || {
            assert_eq!(current_jobs(), 3);
            with_jobs(1, || assert_eq!(current_jobs(), 1));
            assert_eq!(current_jobs(), 3);
        });
        assert_eq!(current_jobs(), ambient);
    }

    #[test]
    fn empty_cell_list_is_fine() {
        let cells: Vec<fn() -> Result<u8, DrcError>> = Vec::new();
        assert_eq!(run_cells(cells).unwrap(), Vec::<u8>::new());
    }
}
