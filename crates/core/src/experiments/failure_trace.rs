//! Live failure traces end-to-end: detection lag × failure arrival rate.
//!
//! The other failure experiments fix the failure pattern up front. This one
//! retires that last static assumption: node fail-stops arrive as a
//! **Poisson process** (the reliability crate's per-node failure rate,
//! accelerated so a second-scale virtual window sees arrivals — the same
//! trick its Monte-Carlo validator uses) *while the job runs*, and the
//! storage layer reacts the way a real deployment would:
//!
//! 1. the same timed [`FailureTrace`] is scheduled into the simulated HDFS
//!    (heartbeats stop → the NameNode declares the nodes dead one detection
//!    timeout later → the auto-repair queue rebuilds their blocks on the
//!    shared `ClusterNet`), and
//! 2. handed to the MapReduce engine (`run_job_traced`), whose scheduler
//!    keeps assigning onto silently-dead nodes during the blind window,
//!    re-executes the lost attempts after detection, and serves reads of
//!    failed replicas as degraded reads.
//!
//! The sweep crosses detection timeout × arrival rate per code kind. The
//! headline numbers are the job slowdown relative to a failure-free run and
//! the virtual seconds the auto-repair traffic overlapped the job on the
//! shared substrate — the end-to-end cost of a failure that *happens during
//! the job*, which no static scenario can show.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use drc_cluster::{Cluster, ClusterSpec, FailureEvent, FailureTrace};
use drc_codes::CodeKind;
use drc_hdfs::DistributedFileSystem;
use drc_mapreduce::{run_job_traced, FailureModel, JobSite, JobSpec, SchedulerKind};
use drc_reliability::ReliabilityParams;
use drc_sim::SimDuration;

use crate::experiments::harness;
use crate::render::TextTable;
use crate::DrcError;

/// One `(code, detection timeout, arrival rate)` point of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureTracePoint {
    /// The coding scheme.
    pub code: CodeKind,
    /// Heartbeat detection timeout, in virtual seconds.
    pub detection_timeout_s: f64,
    /// Acceleration factor applied to the reliability model's per-node
    /// failure rate (real MTTFs are years; the virtual window is seconds).
    pub rate_acceleration: f64,
    /// Fail-stops the trace injected inside the job's map window.
    pub failures_injected: usize,
    /// Job time with no failures, in virtual seconds.
    pub baseline_job_s: f64,
    /// Job time under the live trace (with concurrent auto-repair).
    pub traced_job_s: f64,
    /// `traced_job_s / baseline_job_s` — the headline slowdown.
    pub slowdown: f64,
    /// Map attempts lost to fail-stops and executed again.
    pub tasks_reexecuted: usize,
    /// Total blind-window seconds (failure → detection), across nodes.
    pub detection_lag_s: f64,
    /// Auto-repair passes the failure engine executed.
    pub auto_repair_passes: usize,
    /// Network bytes the auto-repairs moved.
    pub repair_network_bytes: u64,
    /// Virtual seconds auto-repair traffic and the job were concurrently in
    /// flight on the shared substrate.
    pub repair_job_overlap_s: f64,
}

/// The trace-driven failure report: one row per sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureTraceReport {
    /// Block size used, in bytes.
    pub block_bytes: u64,
    /// Map tasks targeted per file.
    pub target_tasks: usize,
    /// The sweep points.
    pub rows: Vec<FailureTracePoint>,
}

impl FailureTraceReport {
    /// Looks up one sweep point.
    pub fn point(
        &self,
        code: CodeKind,
        timeout_s: f64,
        acceleration: f64,
    ) -> Option<&FailureTracePoint> {
        self.rows.iter().find(|r| {
            r.code == code
                && (r.detection_timeout_s - timeout_s).abs() < 1e-9
                && (r.rate_acceleration - acceleration).abs() < 1e-3
        })
    }

    /// The largest job slowdown across the sweep — the headline number
    /// tracked in `BENCH_sim.json`.
    pub fn headline_slowdown(&self) -> f64 {
        self.rows.iter().map(|r| r.slowdown).fold(1.0, f64::max)
    }

    /// The largest repair∩job overlap across the sweep, in seconds.
    pub fn max_repair_job_overlap_s(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.repair_job_overlap_s)
            .fold(0.0, f64::max)
    }
}

/// The failure-free measurement a sweep point is compared against.
#[derive(Clone)]
struct Baseline {
    job_s: f64,
    map_phase_s: f64,
}

/// A stable per-code seed discriminant. An FNV-style fold of the code
/// *name* — name lengths collide ("pentagon" and "heptagon" are both eight
/// bytes), and colliding seeds would make two codes replay the identical
/// failure trace instead of independent draws.
fn code_salt(code: CodeKind) -> u64 {
    code.to_string()
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        })
}

/// Runs the trace-driven failure sweep for 2-rep and the three
/// double-replicated array codes.
///
/// Each code writes a ~`target_tasks`-block file of `block_bytes` blocks
/// onto the simulated 25-node cluster, measures the failure-free job once,
/// then sweeps detection timeouts (fractions of the measured map phase) ×
/// accelerated Poisson arrival rates. Failure counts are capped at the
/// code's fault tolerance (at most 2; 1 for 2-rep) so every trace stays
/// survivable — the cap is part of the report (`failures_injected`).
///
/// # Errors
///
/// Propagates file-system and engine errors (none are expected: traces are
/// capped within tolerance).
pub fn run_failure_trace(
    block_bytes: usize,
    target_tasks: usize,
) -> Result<FailureTraceReport, DrcError> {
    let codes = [
        CodeKind::TWO_REP,
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
    ];
    // Detection timeouts as fractions of the measured failure-free map
    // phase: the short one detects well within the phase, the long one
    // keeps the scheduler blind for most of it.
    let timeout_fracs = [0.1, 1.0];
    // Mean Poisson arrivals inside the map window; the acceleration factor
    // reported per row is whatever it takes to get there from the
    // reliability model's real per-node rate.
    let mean_arrivals = [1.0, 3.0];

    // Stage 1: one failure-free baseline cell per code. The traced points
    // need the measured map-phase length, so this stage joins first.
    let baseline_cells = codes
        .into_iter()
        .map(|code| {
            move || -> Result<(CodeKind, Baseline), DrcError> {
                Ok((code, run_window(code, block_bytes, target_tasks, None)?.0))
            }
        })
        .collect();
    let baselines: Vec<(CodeKind, Baseline)> = harness::run_cells(baseline_cells)?;

    // Stage 2: one traced cell per (code, timeout fraction, arrival rate)
    // point, in the report's fixed row order.
    let mut cells = Vec::new();
    for (code, baseline) in baselines {
        for &frac in &timeout_fracs {
            for &arrivals in &mean_arrivals {
                let baseline = baseline.clone();
                cells.push(move || -> Result<FailureTracePoint, DrcError> {
                    let timeout_s = frac * baseline.map_phase_s;
                    let (_, point) = run_window(
                        code,
                        block_bytes,
                        target_tasks,
                        Some(TracedConfig {
                            baseline: &baseline,
                            timeout_s,
                            mean_arrivals: arrivals,
                            params: &ReliabilityParams::default(),
                        }),
                    )?;
                    Ok(point.expect("traced window yields a point"))
                });
            }
        }
    }
    Ok(FailureTraceReport {
        block_bytes: block_bytes as u64,
        target_tasks,
        rows: harness::run_cells(cells)?,
    })
}

/// What a traced window needs beyond the failure-free setup.
struct TracedConfig<'a> {
    baseline: &'a Baseline,
    timeout_s: f64,
    mean_arrivals: f64,
    params: &'a ReliabilityParams,
}

/// Executes one write → (trace? + job) window. Without a config this is the
/// failure-free baseline; with one, the Poisson trace drives the file
/// system's detection/auto-repair engine *and* the job's mid-run failure
/// handling on the same shared `ClusterNet`.
fn run_window(
    code: CodeKind,
    block_bytes: usize,
    target_tasks: usize,
    traced: Option<TracedConfig<'_>>,
) -> Result<(Baseline, Option<FailureTracePoint>), DrcError> {
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = (block_bytes as u64 / (1024 * 1024)).max(1);
    let block_size = spec.block_size_bytes() as usize;
    let mut fs = DistributedFileSystem::new(spec, 0xFA11 ^ code_salt(code));

    let built = code.build()?;
    let k = built.data_blocks();
    let stripes = target_tasks.div_ceil(k).max(1);
    let data: Vec<u8> = (0..stripes * k * block_size)
        .map(|i| (i * 31 + 7) as u8)
        .collect();
    let id = fs.write_file("/failure-trace", &data, code)?;
    fs.sync();
    let meta = fs.namenode().file(id)?.clone();
    let cluster = Cluster::new(fs.cluster().spec().clone());
    let start = fs.now();

    // The same job shape as the shuffle-contention experiment: short task
    // overhead and map CPU, a quarter of the file's blocks, one reducer per
    // node.
    let job_blocks: Vec<_> = meta
        .placement
        .data_blocks()
        .into_iter()
        .take((target_tasks / 4).max(8))
        .collect();
    let job = JobSpec::new("failure-trace", job_blocks)
        .with_task_overhead_s(0.01)?
        .with_map_cpu_s_per_mb(0.005)?
        .with_reduce_tasks(cluster.up_nodes().len());
    let scheduler = SchedulerKind::Delay.build();

    // Build (and schedule) the trace when this is a traced window.
    let (trace, timeout, config) = match &traced {
        Some(config) => {
            // Arrivals land inside the job's (baseline) map window, which
            // starts at `start`: generate on a zero-based horizon, then
            // shift.
            let horizon_s = config.baseline.map_phase_s;
            let rate_per_hour = config.mean_arrivals / horizon_s * 3600.0 / cluster.len() as f64;
            let acceleration = rate_per_hour / config.params.failure_rate_per_hour();
            let max_failures = built.fault_tolerance().min(2);
            // The seed mixes the code and the arrival rate but NOT the
            // detection timeout: every timeout point of one (code, rate)
            // pair replays the *same* trace, so the sweep isolates the
            // effect of the blind window. The sample is conditioned on at
            // least one arrival (an empty trace measures nothing) by
            // deterministically re-drawing with a salted seed.
            let base_seed = 0x7AACE ^ code_salt(code) ^ ((config.mean_arrivals as u64) << 16);
            let mut zero_based = FailureTrace::new();
            for salt in 0..64u64 {
                let mut rng = ChaCha8Rng::seed_from_u64(base_seed ^ (salt << 32));
                zero_based = FailureTrace::poisson(
                    &cluster,
                    rate_per_hour,
                    horizon_s,
                    max_failures,
                    &mut rng,
                );
                if !zero_based.is_empty() {
                    break;
                }
            }
            let trace = FailureTrace::from_events(
                zero_based
                    .events()
                    .iter()
                    .map(|e| FailureEvent::at_ns(e.at_ns.saturating_add(start.0), e.kind))
                    .collect(),
            );
            let timeout = SimDuration::from_secs_f64(config.timeout_s);
            fs.set_detection_timeout(timeout);
            fs.schedule_trace(&trace);
            (trace, timeout, Some((acceleration, config.timeout_s)))
        }
        None => (FailureTrace::new(), SimDuration::ZERO, None),
    };

    // Drive the storage layer first (failures, detection, auto-repair on
    // the shared net), then issue the job into the same virtual window —
    // the repair-first ordering the contention experiments use.
    let failures_injected = trace.nodes_taken_down(&cluster).len();
    let repair_reports = fs.process_all_events()?;
    let metrics = run_job_traced(
        &job,
        built.as_ref(),
        &meta.placement,
        &cluster,
        scheduler.as_ref(),
        &mut ChaCha8Rng::seed_from_u64(0x5EED ^ code_salt(code)),
        JobSite {
            net: fs.cluster_net(),
            start,
        },
        FailureModel::new(&trace, timeout),
    )?;

    let baseline = Baseline {
        job_s: metrics.job_time_s,
        map_phase_s: metrics.map_phase_s,
    };
    let point = config.map(|(acceleration, timeout_s)| {
        // Merge the storage and job timelines (same virtual epoch) to
        // measure how long the auto-repair traffic and the job overlapped.
        let mut combined = fs.timeline().clone();
        for p in &metrics.timeline.phases {
            combined.record(format!("job:{}", p.label), p.start, p.end, p.bytes);
        }
        FailureTracePoint {
            code,
            detection_timeout_s: timeout_s,
            rate_acceleration: acceleration,
            failures_injected,
            baseline_job_s: traced
                .as_ref()
                .expect("config implies traced")
                .baseline
                .job_s,
            traced_job_s: metrics.job_time_s,
            slowdown: metrics.job_time_s
                / traced
                    .as_ref()
                    .expect("config implies traced")
                    .baseline
                    .job_s,
            tasks_reexecuted: metrics.tasks_reexecuted,
            detection_lag_s: fs
                .timeline()
                .with_prefix(drc_sim::DETECTION_LAG_PREFIX)
                .map(|p| p.duration().as_secs_f64())
                .sum(),
            auto_repair_passes: repair_reports.len(),
            repair_network_bytes: repair_reports.iter().map(|r| r.network_bytes).sum(),
            repair_job_overlap_s: combined.overlap("repair:", "job:").as_secs_f64(),
        }
    });
    Ok((baseline, point))
}

impl std::fmt::Display for FailureTraceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut table = TextTable::new(
            format!(
                "Job slowdown under live failure traces ({} tasks, {} MiB blocks)",
                self.target_tasks,
                self.block_bytes / (1024 * 1024)
            ),
            &[
                "Code",
                "Detect (s)",
                "Accel",
                "Failures",
                "Baseline (s)",
                "Traced (s)",
                "Slowdown",
                "Re-exec",
                "Lag (s)",
                "Repair (MiB)",
                "Repair∩job (s)",
            ],
        );
        for r in &self.rows {
            table.push_row(vec![
                r.code.to_string(),
                format!("{:.3}", r.detection_timeout_s),
                format!("{:.1e}", r.rate_acceleration),
                r.failures_injected.to_string(),
                format!("{:.3}", r.baseline_job_s),
                format!("{:.3}", r.traced_job_s),
                format!("{:.2}x", r.slowdown),
                r.tasks_reexecuted.to_string(),
                format!("{:.3}", r.detection_lag_s),
                format!("{:.1}", r.repair_network_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.3}", r.repair_job_overlap_s),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_traces_slow_the_job_and_repair_overlaps_it() {
        let report = run_failure_trace(1024 * 1024, 60).unwrap();
        eprintln!("{report}");
        // 4 codes x 2 timeouts x 2 rates.
        assert_eq!(report.rows.len(), 16);
        for row in &report.rows {
            assert!(row.baseline_job_s > 0.0, "{}", row.code);
            // Failure handling never meaningfully speeds the job up (a
            // sub-percent wobble from shifted reducer placement is noise,
            // not signal).
            assert!(
                row.slowdown > 0.99,
                "{}: failures must not speed the job up (baseline {:.3}s, traced {:.3}s)",
                row.code,
                row.baseline_job_s,
                row.traced_job_s
            );
            assert!(
                row.failures_injected >= 1,
                "{}: the accelerated rate must inject",
                row.code
            );
            // Every injected failure is eventually detected (a pass runs
            // even when the victim hosted no blocks of this file) and the
            // blind window is on the record.
            assert!(row.auto_repair_passes >= 1, "{}", row.code);
            assert!(row.detection_lag_s > 0.0, "{}", row.code);
        }
        // Per code: some point must show real repair traffic overlapping
        // the job on the shared substrate.
        for code in [
            CodeKind::TWO_REP,
            CodeKind::Pentagon,
            CodeKind::Heptagon,
            CodeKind::HeptagonLocal,
        ] {
            let per_code: Vec<&FailureTracePoint> =
                report.rows.iter().filter(|r| r.code == code).collect();
            assert!(
                per_code.iter().any(|r| r.repair_network_bytes > 0),
                "{code}: some victim must host blocks and trigger repair traffic"
            );
            assert!(
                per_code.iter().any(|r| r.repair_job_overlap_s > 0.0),
                "{code}: auto-repair must overlap the job somewhere"
            );
        }
        // The acceptance headline: detection-lag-dependent slowdown with
        // auto-repair traffic overlapping the job on the shared substrate.
        assert!(report.headline_slowdown() > 1.0);
        assert!(report.max_repair_job_overlap_s() > 0.0);
        // Slowdown is detection-lag-dependent: for each (code, rate), the
        // long-timeout run is at least as slow as the short one, and
        // strictly slower somewhere.
        let mut strictly = 0usize;
        for code in [
            CodeKind::TWO_REP,
            CodeKind::Pentagon,
            CodeKind::Heptagon,
            CodeKind::HeptagonLocal,
        ] {
            let per_code: Vec<&FailureTracePoint> =
                report.rows.iter().filter(|r| r.code == code).collect();
            for rate_idx in 0..2 {
                let short = per_code[rate_idx];
                let long = per_code[2 + rate_idx];
                assert!(short.detection_timeout_s < long.detection_timeout_s);
                assert!(
                    long.slowdown >= short.slowdown - 1e-9,
                    "{code}: longer blind windows must not speed the job up"
                );
                if long.slowdown > short.slowdown + 1e-9 {
                    strictly += 1;
                }
            }
        }
        assert!(strictly > 0, "some point must show strict lag dependence");
        let text = report.to_string();
        assert!(text.contains("Slowdown"));
        assert!(report
            .point(
                CodeKind::Pentagon,
                report.rows[4].detection_timeout_s,
                report.rows[4].rate_acceleration
            )
            .is_some());
    }
}
