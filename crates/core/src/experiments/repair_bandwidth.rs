//! The §3.1 repair-bandwidth analysis.
//!
//! The paper highlights two numbers: an on-the-fly repair (degraded read) of
//! a block whose two replicas are down costs **3 blocks** with the pentagon
//! code versus **9 blocks** with the (10,9) RAID+m code, and repairing two
//! failed pentagon nodes costs **10 blocks** thanks to partial parities. This
//! experiment tabulates single-node repair, double-node repair and worst-case
//! degraded-read bandwidth for every code.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use drc_codes::CodeKind;

use crate::experiments::harness;
use crate::render::TextTable;
use crate::DrcError;

/// Repair-bandwidth figures for one code, in blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairBandwidthRow {
    /// The coding scheme.
    pub code: CodeKind,
    /// Average network blocks to repair one failed node of a stripe.
    pub single_node_repair_blocks: f64,
    /// Network blocks to repair the worst-case pair of failed nodes
    /// (`None` if the code does not tolerate two failures).
    pub double_node_repair_blocks: Option<usize>,
    /// Network blocks to serve a read of a data block when one replica holder
    /// is down.
    pub degraded_read_one_down: usize,
    /// Network blocks to serve a read when every replica holder is down
    /// (`None` if that makes the block unreadable).
    pub degraded_read_all_replicas_down: Option<usize>,
    /// Number of partial-parity transfers used in the double-node repair.
    pub partial_parity_transfers: usize,
}

/// The reproduced repair-bandwidth table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairBandwidthTable {
    /// One row per code.
    pub rows: Vec<RepairBandwidthRow>,
}

/// Computes repair and degraded-read bandwidth for the paper's codes plus
/// 2-rep (the baseline the MapReduce experiments use).
///
/// # Errors
///
/// Returns an error only if a code fails to build.
pub fn run_repair_bandwidth() -> Result<RepairBandwidthTable, DrcError> {
    let mut kinds = vec![CodeKind::TWO_REP];
    kinds.extend(CodeKind::table1_set());
    // One cell per code: the all-pairs repair-plan scan dominates and is
    // independent across codes.
    let cells = kinds
        .into_iter()
        .map(|kind| move || repair_bandwidth_row(kind))
        .collect();
    Ok(RepairBandwidthTable {
        rows: harness::run_cells(cells)?,
    })
}

fn repair_bandwidth_row(kind: CodeKind) -> Result<RepairBandwidthRow, DrcError> {
    let code = kind.build()?;
    // Worst-case two-node repair over all pairs.
    let mut double = None;
    let mut partials = 0;
    if code.fault_tolerance() >= 2 {
        let mut worst = 0usize;
        for a in 0..code.node_count() {
            for b in (a + 1)..code.node_count() {
                let failed: BTreeSet<usize> = [a, b].into_iter().collect();
                if let Ok(plan) = code.repair_plan(&failed) {
                    if plan.network_blocks() > worst {
                        worst = plan.network_blocks();
                        partials = plan.partial_parity_transfers();
                    }
                }
            }
        }
        double = Some(worst);
    }
    // Degraded reads of data block 0.
    let hosts: Vec<usize> = code.block_locations(0).to_vec();
    let one_down: BTreeSet<usize> = [hosts[0]].into_iter().collect();
    let degraded_one = code
        .degraded_read_plan(0, &one_down)
        .map(|p| p.network_blocks)
        .unwrap_or(0);
    let all_down: BTreeSet<usize> = hosts.iter().copied().collect();
    let degraded_all = code
        .degraded_read_plan(0, &all_down)
        .ok()
        .map(|p| p.network_blocks);
    Ok(RepairBandwidthRow {
        code: kind,
        single_node_repair_blocks: code.single_node_repair_blocks(),
        double_node_repair_blocks: double,
        degraded_read_one_down: degraded_one,
        degraded_read_all_replicas_down: degraded_all,
        partial_parity_transfers: partials,
    })
}

impl std::fmt::Display for RepairBandwidthTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut table = TextTable::new(
            "Repair bandwidth (blocks), per the codes' repair plans (Section 3.1)",
            &[
                "Code",
                "1-node repair",
                "2-node repair (worst)",
                "Degraded read (1 replica down)",
                "Degraded read (all replicas down)",
                "Partial parities used",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.code.to_string(),
                format!("{:.1}", row.single_node_repair_blocks),
                row.double_node_repair_blocks
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                row.degraded_read_one_down.to_string(),
                row.degraded_read_all_replicas_down
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "unreadable".to_string()),
                row.partial_parity_transfers.to_string(),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_headline_numbers() {
        let table = run_repair_bandwidth().unwrap();
        let row = |kind: CodeKind| table.rows.iter().find(|r| r.code == kind).unwrap().clone();

        // Pentagon: degraded read of a doubly-lost block costs 3 blocks, a
        // two-node repair costs 10 blocks, single-node repair-by-transfer 4.
        let pentagon = row(CodeKind::Pentagon);
        assert_eq!(pentagon.degraded_read_all_replicas_down, Some(3));
        assert_eq!(pentagon.double_node_repair_blocks, Some(10));
        assert_eq!(pentagon.single_node_repair_blocks, 4.0);
        assert!(pentagon.partial_parity_transfers > 0);

        // (10,9) RAID+m: the same degraded read needs 9 blocks.
        let raid_m = row(CodeKind::RAID_M_10_9);
        assert_eq!(raid_m.degraded_read_all_replicas_down, Some(9));
        assert_eq!(raid_m.single_node_repair_blocks, 1.0);

        // 2-rep cannot serve a block whose both replicas are down.
        let two_rep = row(CodeKind::TWO_REP);
        assert_eq!(two_rep.degraded_read_all_replicas_down, None);

        // Heptagon: 5 partial parities for the degraded read, 16-block double repair.
        let heptagon = row(CodeKind::Heptagon);
        assert_eq!(heptagon.degraded_read_all_replicas_down, Some(5));
        assert_eq!(heptagon.double_node_repair_blocks, Some(16));

        // Every code reads one block when a single replica is down.
        for r in &table.rows {
            assert_eq!(r.degraded_read_one_down, 1, "{}", r.code);
        }

        let rendered = table.to_string();
        assert!(rendered.contains("Degraded read"));
    }
}
