//! MapReduce performance in the presence of node failures (§5 future work),
//! including the effect of partial-parity degraded reads.
//!
//! For each code the experiment runs the Terasort workload on set-up 1 with
//! 0, 1 and 2 failed nodes (transient failures: the data is still on disk but
//! unreachable), and reports locality, degraded-read counts and the extra
//! network traffic incurred. The array codes' partial parities keep the
//! degraded-read traffic low (3 blocks per read for the pentagon versus 9 for
//! a RAID+m-style full decode), which is the effect the paper expects to
//! quantify in its next phase.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use drc_cluster::{Cluster, ClusterSpec, FailureScenario};
use drc_codes::CodeKind;
use drc_mapreduce::{run_job, SchedulerKind};
use drc_workloads::{provision_workload, WorkloadKind};

use crate::experiments::{harness, Effort, DEFAULT_SEED};
use crate::render::TextTable;
use crate::DrcError;

/// Mean measurements for one `(code, failed nodes)` point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedPoint {
    /// The coding scheme.
    pub code: CodeKind,
    /// Number of simultaneously failed nodes during the job.
    pub failed_nodes: usize,
    /// Mean job time in seconds.
    pub job_time_s: f64,
    /// Mean data locality in percent.
    pub data_locality_percent: f64,
    /// Mean degraded reads per job.
    pub degraded_reads: f64,
    /// Mean network traffic in GiB.
    pub network_traffic_gb: f64,
    /// Fraction of trials where the job could not complete (blocks lost
    /// beyond the code's tolerance — only possible for 2-rep here).
    pub failed_job_fraction: f64,
}

/// The degraded-mode MapReduce report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedMrReport {
    /// Load percentage used for every point.
    pub load_percent: f64,
    /// The measured points.
    pub points: Vec<DegradedPoint>,
}

impl DegradedMrReport {
    /// Looks up one point.
    pub fn point(&self, code: CodeKind, failed_nodes: usize) -> Option<&DegradedPoint> {
        self.points
            .iter()
            .find(|p| p.code == code && p.failed_nodes == failed_nodes)
    }
}

/// Runs the degraded-mode experiment at 75% load on set-up 1 for 2-rep,
/// 3-rep, pentagon and heptagon with 0, 1 and 2 failed nodes.
///
/// # Errors
///
/// Propagates configuration errors; unreadable blocks (2-rep with both
/// replicas down) are counted as failed jobs rather than returned as errors.
pub fn run_degraded_mr(effort: Effort) -> Result<DegradedMrReport, DrcError> {
    let load = 75.0;
    let trials = (effort.trials() / 3).max(5);
    // One cell per (code, failed-node-count) point; trials stay serial
    // inside the cell so the f64 means accumulate in a fixed order.
    let mut specs: Vec<(CodeKind, usize)> = Vec::new();
    for code_kind in CodeKind::fig4_set() {
        for failed_nodes in [0usize, 1, 2] {
            specs.push((code_kind, failed_nodes));
        }
    }
    let cells = specs
        .into_iter()
        .map(|(code_kind, failed_nodes)| {
            move || degraded_point(code_kind, failed_nodes, load, trials)
        })
        .collect();
    Ok(DegradedMrReport {
        load_percent: load,
        points: harness::run_cells(cells)?,
    })
}

/// Measures one `(code, failed nodes)` point over `trials` private clusters.
fn degraded_point(
    code_kind: CodeKind,
    failed_nodes: usize,
    load: f64,
    trials: usize,
) -> Result<DegradedPoint, DrcError> {
    let scheduler = SchedulerKind::Delay.build();
    let spec = ClusterSpec::setup1();
    let code = code_kind.build()?;
    let mut job_time = 0.0;
    let mut locality = 0.0;
    let mut degraded = 0.0;
    let mut traffic = 0.0;
    let mut failed_jobs = 0usize;
    let mut completed = 0usize;
    for trial in 0..trials {
        let mut cluster = Cluster::new(spec.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(
            DEFAULT_SEED ^ ((trial as u64) << 8) ^ ((failed_nodes as u64) << 40),
        );
        let workload =
            provision_workload(WorkloadKind::Terasort, code_kind, &cluster, load, &mut rng)?;
        // Failures strike after the data was written. The sampled
        // count always equals the request here (`failed_nodes` is
        // far below the cluster size, so the cap never truncates).
        let (scenario, sampled) = FailureScenario::random(&cluster, failed_nodes, &mut rng);
        debug_assert_eq!(sampled, failed_nodes);
        scenario.apply(&mut cluster);
        match run_job(
            &workload.job,
            code.as_ref(),
            &workload.placement,
            &cluster,
            scheduler.as_ref(),
            &mut rng,
        ) {
            Ok(metrics) => {
                completed += 1;
                job_time += metrics.job_time_s;
                locality += metrics.data_locality_percent();
                degraded += metrics.degraded_reads as f64;
                traffic += metrics.network_traffic_gb();
            }
            Err(_) => failed_jobs += 1,
        }
    }
    let n = completed.max(1) as f64;
    Ok(DegradedPoint {
        code: code_kind,
        failed_nodes,
        job_time_s: job_time / n,
        data_locality_percent: locality / n,
        degraded_reads: degraded / n,
        network_traffic_gb: traffic / n,
        failed_job_fraction: failed_jobs as f64 / trials as f64,
    })
}

impl std::fmt::Display for DegradedMrReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut table = TextTable::new(
            format!(
                "Terasort under node failures (set-up 1, {:.0}% load)",
                self.load_percent
            ),
            &[
                "Code",
                "Failed nodes",
                "Job time (s)",
                "Locality",
                "Degraded reads",
                "Traffic (GB)",
                "Failed jobs",
            ],
        );
        for p in &self.points {
            table.push_row(vec![
                p.code.to_string(),
                p.failed_nodes.to_string(),
                format!("{:.1}", p.job_time_s),
                format!("{:.1}%", p.data_locality_percent),
                format!("{:.2}", p.degraded_reads),
                format!("{:.2}", p.network_traffic_gb),
                format!("{:.0}%", p.failed_job_fraction * 100.0),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_mode_shape() {
        let report = run_degraded_mr(Effort::Quick).unwrap();
        assert_eq!(report.points.len(), 4 * 3);
        let p = |code, failed| report.point(code, failed).unwrap();

        for code in CodeKind::fig4_set() {
            // No failures -> no degraded reads and no failed jobs.
            assert_eq!(p(code, 0).degraded_reads, 0.0, "{code}");
            assert_eq!(p(code, 0).failed_job_fraction, 0.0, "{code}");
            // Locality does not improve when nodes fail.
            assert!(
                p(code, 2).data_locality_percent <= p(code, 0).data_locality_percent + 1.0,
                "{code}"
            );
            // Traffic does not decrease when nodes fail.
            assert!(
                p(code, 2).network_traffic_gb >= p(code, 0).network_traffic_gb - 0.05,
                "{code}"
            );
        }
        // 3-rep, pentagon and heptagon never lose data with two failures; jobs
        // always complete.
        for code in [CodeKind::THREE_REP, CodeKind::Pentagon, CodeKind::Heptagon] {
            assert_eq!(p(code, 2).failed_job_fraction, 0.0, "{code}");
        }
        assert!(report.to_string().contains("node failures"));
    }
}
