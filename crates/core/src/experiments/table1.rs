//! Table 1: storage overhead, code length and MTTDL of the coding schemes.

use serde::{Deserialize, Serialize};

use drc_codes::CodeKind;
use drc_reliability::{group_mttdl, ReliabilityParams};

use crate::experiments::harness;
use crate::render::{scientific, TextTable};
use crate::DrcError;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The coding scheme.
    pub code: CodeKind,
    /// Storage overhead (stored blocks per data block).
    pub storage_overhead: f64,
    /// Code length (nodes per stripe).
    pub code_length: usize,
    /// Worst-case fault tolerance.
    pub fault_tolerance: usize,
    /// MTTDL in years as computed by the Markov model.
    pub mttdl_years: f64,
    /// MTTDL in years reported by the paper (for side-by-side comparison).
    pub paper_mttdl_years: f64,
}

/// The reproduced Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// The failure/repair model parameters used.
    pub params: ReliabilityParams,
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
}

/// The MTTDL values printed in the paper's Table 1, in years.
pub fn paper_mttdl_years(code: CodeKind) -> Option<f64> {
    match code {
        CodeKind::Replication { replicas: 3 } => Some(1.20e9),
        CodeKind::Pentagon => Some(1.05e8),
        CodeKind::Heptagon => Some(2.68e7),
        CodeKind::HeptagonLocal => Some(8.34e9),
        CodeKind::RaidMirror { total: 10 } => Some(2.03e9),
        CodeKind::RaidMirror { total: 12 } => Some(6.50e8),
        _ => None,
    }
}

/// The storage overheads printed in the paper's Table 1.
pub fn paper_storage_overhead(code: CodeKind) -> Option<f64> {
    match code {
        CodeKind::Replication { replicas: 3 } => Some(3.0),
        CodeKind::Pentagon => Some(2.22),
        CodeKind::Heptagon => Some(2.1),
        CodeKind::HeptagonLocal => Some(2.15),
        CodeKind::RaidMirror { total: 10 } => Some(2.22),
        CodeKind::RaidMirror { total: 12 } => Some(2.18),
        _ => None,
    }
}

/// Computes Table 1 for the paper's six codes under the given reliability
/// parameters.
///
/// # Errors
///
/// Returns an error if a code fails to build or its reliability model is
/// degenerate (which does not happen for the paper's codes).
pub fn run_table1(params: &ReliabilityParams) -> Result<Table1, DrcError> {
    // One cell per code: each solves its own Markov model independently.
    let params = *params;
    let cells = CodeKind::table1_set()
        .into_iter()
        .map(|kind| {
            move || -> Result<Table1Row, DrcError> {
                let code = kind.build()?;
                let mttdl = group_mttdl(code.as_ref(), &params)?;
                Ok(Table1Row {
                    code: kind,
                    storage_overhead: code.storage_overhead(),
                    code_length: code.node_count(),
                    fault_tolerance: code.fault_tolerance(),
                    mttdl_years: mttdl.mttdl_years,
                    paper_mttdl_years: paper_mttdl_years(kind).unwrap_or(f64::NAN),
                })
            }
        })
        .collect();
    Ok(Table1 {
        params,
        rows: harness::run_cells(cells)?,
    })
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut table = TextTable::new(
            "Table 1: storage overhead, code length and MTTDL",
            &[
                "Code",
                "Storage overhead",
                "Code length",
                "Tolerance",
                "MTTDL (years)",
                "Paper MTTDL (years)",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.code.to_string(),
                format!("{:.2}x", row.storage_overhead),
                row.code_length.to_string(),
                row.fault_tolerance.to_string(),
                scientific(row.mttdl_years),
                scientific(row.paper_mttdl_years),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1_shape() {
        let table = run_table1(&ReliabilityParams::default()).unwrap();
        assert_eq!(table.rows.len(), 6);
        // Row order matches the paper.
        assert_eq!(table.rows[0].code, CodeKind::THREE_REP);
        assert_eq!(table.rows[1].code, CodeKind::Pentagon);
        assert_eq!(table.rows[5].code, CodeKind::RAID_M_12_11);
        // Storage overhead and code length columns match the paper exactly.
        for row in &table.rows {
            let paper = paper_storage_overhead(row.code).unwrap();
            assert!(
                (row.storage_overhead - paper).abs() < 0.01,
                "{}: overhead {} vs paper {paper}",
                row.code,
                row.storage_overhead
            );
        }
        let lengths: Vec<usize> = table.rows.iter().map(|r| r.code_length).collect();
        assert_eq!(lengths, vec![3, 5, 7, 15, 20, 24]);
        // MTTDL within a factor of ~3 of the paper's values for every row.
        for row in &table.rows {
            let ratio = row.mttdl_years / row.paper_mttdl_years;
            assert!(
                ratio > 0.3 && ratio < 3.0,
                "{}: mttdl {:.3e} vs paper {:.3e}",
                row.code,
                row.mttdl_years,
                row.paper_mttdl_years
            );
        }
        let rendered = table.to_string();
        assert!(rendered.contains("pentagon"));
        assert!(rendered.contains("heptagon-local"));
    }

    #[test]
    fn paper_reference_values_cover_table1_codes() {
        for kind in CodeKind::table1_set() {
            assert!(paper_mttdl_years(kind).is_some());
            assert!(paper_storage_overhead(kind).is_some());
        }
        assert!(paper_mttdl_years(CodeKind::TWO_REP).is_none());
    }
}
