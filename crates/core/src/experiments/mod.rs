//! Experiment drivers: one module per table or figure of the paper.
//!
//! | Paper artifact | Module | Regenerates |
//! |---|---|---|
//! | Table 1 | [`table1`] | storage overhead, code length, MTTDL per code |
//! | §3.1 repair-bandwidth analysis | [`repair_bandwidth`] | repair and degraded-read network blocks per code |
//! | Fig. 3 | [`fig3`] | map-task locality vs load for µ = 2, 4, 8 and three schedulers |
//! | Fig. 4 | [`fig4`] | Terasort job time / network traffic / locality on set-up 1 |
//! | Fig. 5 | [`fig5`] | Terasort network traffic / locality on set-up 2 |
//! | §5 extensions | [`encoding`], [`degraded_mr`] | encoding throughput; MapReduce under node failures |
//! | substrate extension | [`overlap`] | repair / degraded-read overlap in virtual time on the event-driven HDFS |
//! | substrate extension | [`shuffle_contention`] | job slowdown when the event-driven shuffle shares links with a concurrent repair pass |
//! | substrate extension | [`failure_trace`] | detection-lag-dependent job slowdown and repair/job overlap under live Poisson failure traces |
//! | substrate extension | [`metadata_scale`] | placement-index bytes/block and query rates at 1000 nodes / 10M blocks |
//! | substrate extension | [`repair_pipeline`] | chunk-streamed repair virtual time vs the serial whole-block schedule, per code × chunk size |
//!
//! Every driver returns a serialisable result type with a `Display`
//! implementation that prints a paper-style table, so the `repro` binary in
//! `drc-bench`, the integration tests and `EXPERIMENTS.md` all consume the
//! same source of truth.
//!
//! Every driver decomposes its sweep into independent, shared-nothing
//! *cells* (one code × config point each) and fans them out through the
//! [`harness`] module across the persistent worker pool — output stays
//! byte-identical at every `DRC_REPRO_JOBS` width because results merge in
//! fixed cell order after the join.

pub mod degraded_mr;
pub mod encoding;
pub mod failure_trace;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod harness;
pub mod metadata_scale;
pub mod overlap;
pub mod repair_bandwidth;
pub mod repair_pipeline;
pub mod shuffle_contention;
pub mod table1;

/// How much work an experiment run should do.
///
/// The paper's figures average over many runs; the `Full` profile matches
/// that, while `Quick` keeps integration tests and CI fast.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, Default,
)]
pub enum Effort {
    /// Few trials; seconds of runtime. Used by tests and the default `repro` run.
    #[default]
    Quick,
    /// Many trials; the smoothest curves.
    Full,
}

impl Effort {
    /// Number of random trials to average per experimental point.
    pub fn trials(&self) -> usize {
        match self {
            Effort::Quick => 30,
            Effort::Full => 300,
        }
    }
}

/// The base RNG seed shared by all experiments (reproducible by default).
pub const DEFAULT_SEED: u64 = 0x5EED_2014;
