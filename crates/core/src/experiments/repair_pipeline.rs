//! Streaming (chunk-pipelined) repair versus the monolithic schedule.
//!
//! The HDFS repair path executes each stripe as fetch → rebuild → store.
//! Monolithically, a stripe's replacement stores cannot begin until the
//! *whole* of every helper block has arrived, so the repair's virtual time
//! is the *sum* of the transfer and store stages. Streamed in chunks, the
//! first chunk's stores are issued the instant that chunk's fetches land
//! and overlap the remaining fetches, so a stripe completes at
//! max(network, compute) + one-chunk pipeline fill.
//!
//! This experiment measures exactly that: for each code and each chunk
//! size it writes a multi-stripe file, permanently fails one stripe host,
//! and runs the RaidNode repair pass twice on identical fresh deployments
//! — once with the chunk-streamed schedule and once with
//! `repair_chunk_bytes = u64::MAX` (the serial whole-block baseline). Both
//! runs restore byte-identical replicas and account identical traffic;
//! only the virtual-time schedule differs, and the per-row `ratio`
//! (pipelined / serial) is the headline `check_speedup` gates: strictly
//! below 1.0 for every erasure code (2-rep repairs move replicas without a
//! rebuild stage and may be neutral).

use serde::{Deserialize, Serialize};

use drc_cluster::{ClusterSpec, NodeId};
use drc_codes::CodeKind;
use drc_hdfs::DistributedFileSystem;

use crate::experiments::harness;
use crate::render::TextTable;
use crate::DrcError;

/// One code × chunk-size measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineRow {
    /// The coding scheme.
    pub code: CodeKind,
    /// Streaming chunk size, in bytes.
    pub chunk_bytes: u64,
    /// Virtual seconds of the serial (whole-block) repair pass.
    pub serial_s: f64,
    /// Virtual seconds of the chunk-streamed repair pass.
    pub pipelined_s: f64,
    /// `pipelined_s / serial_s` — below 1.0 means the pipeline overlapped
    /// fetches with stores.
    pub ratio: f64,
    /// Network bytes the repair moved (identical in both runs).
    pub network_bytes: u64,
    /// Blocks restored (identical in both runs).
    pub blocks_restored: usize,
}

/// The streaming-repair pipeline report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairPipelineReport {
    /// Stripes written per file.
    pub stripes: usize,
    /// Block size used, in bytes.
    pub block_bytes: u64,
    /// One row per code × chunk size.
    pub rows: Vec<PipelineRow>,
}

impl RepairPipelineReport {
    /// Looks up the row for one code × chunk-size point.
    pub fn row(&self, code: CodeKind, chunk_bytes: u64) -> Option<&PipelineRow> {
        self.rows
            .iter()
            .find(|r| r.code == code && r.chunk_bytes == chunk_bytes)
    }

    /// The worst (largest) pipelined/serial ratio across the erasure codes
    /// at the smallest measured chunk size — the headline `check_speedup`
    /// requires to stay strictly below 1.0. Replication rows are excluded
    /// (2-rep has no rebuild stage to overlap).
    pub fn worst_erasure_ratio(&self) -> Option<f64> {
        let chunk = self.rows.iter().map(|r| r.chunk_bytes).min()?;
        self.rows
            .iter()
            .filter(|r| r.chunk_bytes == chunk)
            .filter(|r| !matches!(r.code, CodeKind::Replication { .. }))
            .map(|r| r.ratio)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

/// Runs the streaming-repair experiment: every paper code × every chunk
/// size in `chunk_sizes`, against a measured serial baseline.
///
/// # Errors
///
/// Propagates file-system errors (none are expected: the scenario is a
/// single node failure, within every code's tolerance).
pub fn run_repair_pipeline(
    block_bytes: usize,
    stripes: usize,
    chunk_sizes: &[u64],
) -> Result<RepairPipelineReport, DrcError> {
    let codes = [
        CodeKind::TWO_REP,
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
    ];
    // Stage 1: the serial baselines are *measured* on identical fresh
    // deployments, not derived — one cell per code, joined before the
    // pipelined stage because every chunked row compares against them.
    let serial_cells = codes
        .into_iter()
        .map(|code| {
            move || -> Result<(CodeKind, (f64, u64, usize)), DrcError> {
                Ok((code, run_repair(code, block_bytes, stripes, u64::MAX)?))
            }
        })
        .collect();
    let serials: Vec<(CodeKind, (f64, u64, usize))> = harness::run_cells(serial_cells)?;

    // Stage 2: one cell per code × chunk size, in the report's row order.
    let mut cells = Vec::new();
    for (code, serial) in serials {
        for &chunk in chunk_sizes {
            cells.push(move || -> Result<PipelineRow, DrcError> {
                let pipelined = run_repair(code, block_bytes, stripes, chunk)?;
                debug_assert_eq!(pipelined.1, serial.1, "traffic must not depend on chunking");
                debug_assert_eq!(
                    pipelined.2, serial.2,
                    "restores must not depend on chunking"
                );
                Ok(PipelineRow {
                    code,
                    chunk_bytes: chunk,
                    serial_s: serial.0,
                    pipelined_s: pipelined.0,
                    ratio: pipelined.0 / serial.0,
                    network_bytes: pipelined.1,
                    blocks_restored: pipelined.2,
                })
            });
        }
    }
    Ok(RepairPipelineReport {
        stripes,
        block_bytes: block_bytes as u64,
        rows: harness::run_cells(cells)?,
    })
}

/// Writes a `stripes`-stripe file, permanently fails one stripe-0 host,
/// repairs it under the given chunk size, and returns the pass's virtual
/// duration, network bytes and restored-block count.
fn run_repair(
    code: CodeKind,
    block_bytes: usize,
    stripes: usize,
    chunk: u64,
) -> Result<(f64, u64, usize), DrcError> {
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = (block_bytes as u64 / (1024 * 1024)).max(1);
    let block_size = spec.block_size_bytes();
    let mut fs = DistributedFileSystem::new(spec, 0x9147 ^ code.to_string().len() as u64);
    fs.set_repair_chunk_bytes(chunk);

    let k = code.build()?.data_blocks();
    let data: Vec<u8> = (0..stripes * k * block_size as usize)
        .map(|i| (i * 31 + 7) as u8)
        .collect();
    let id = fs.write_file("/pipeline", &data, code)?;
    fs.sync();

    // Fail the node holding the first replica of data block 0 of stripe 0 —
    // a single permanent loss every code tolerates.
    let meta = fs.namenode().file(id)?.clone();
    let victim: NodeId = meta.block_locations(0, 0)?.to_vec()[0];
    fs.fail_node_permanently(victim);
    let report = fs.repair_nodes(&[victim])?;
    debug_assert_eq!(report.unrecoverable_stripes, 0);
    debug_assert_eq!(fs.read_file(id)?, data, "repair must restore real bytes");
    Ok((
        report.completed_at.since(report.issued_at).as_secs_f64(),
        report.network_bytes,
        report.blocks_restored,
    ))
}

impl std::fmt::Display for RepairPipelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut table = TextTable::new(
            format!(
                "Streaming repair: pipelined vs serial virtual time ({} stripes, {} MiB blocks)",
                self.stripes,
                self.block_bytes / (1024 * 1024)
            ),
            &[
                "Code",
                "Chunk (KiB)",
                "Serial (s)",
                "Pipelined (s)",
                "Ratio",
                "Traffic (MiB)",
                "Blocks restored",
            ],
        );
        for r in &self.rows {
            table.push_row(vec![
                r.code.to_string(),
                format!("{}", r.chunk_bytes / 1024),
                format!("{:.3}", r.serial_s),
                format!("{:.3}", r.pipelined_s),
                format!("{:.3}", r.ratio),
                format!("{:.1}", r.network_bytes as f64 / (1024.0 * 1024.0)),
                r.blocks_restored.to_string(),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_beats_serial_for_every_erasure_code() {
        let report = run_repair_pipeline(4 * 1024 * 1024, 2, &[1 << 20, 256 * 1024]).unwrap();
        assert_eq!(report.rows.len(), 4 * 2);
        for r in &report.rows {
            assert!(r.serial_s > 0.0, "{}: a repair takes virtual time", r.code);
            if matches!(r.code, CodeKind::Replication { .. }) {
                assert!(
                    r.ratio <= 1.0 + 1e-6,
                    "{} @ {}: replication may be neutral but never slower",
                    r.code,
                    r.chunk_bytes
                );
            } else {
                assert!(
                    r.ratio < 1.0,
                    "{} @ {}: the pipeline must strictly beat the serial \
                     schedule (ratio {:.4})",
                    r.code,
                    r.chunk_bytes,
                    r.ratio
                );
            }
        }
        let worst = report.worst_erasure_ratio().unwrap();
        assert!(worst < 1.0, "headline ratio {worst:.4}");
    }
}
