//! Repair / degraded-read overlap on the event-driven cluster substrate.
//!
//! The serial execution model of the original reproduction summed repair and
//! degraded-read work back-to-back, so the contention the paper's failure
//! experiments are really about was invisible. This experiment exercises the
//! rebuilt HDFS layer end-to-end: for each double-replicated array code it
//! writes a real multi-stripe file, permanently fails both replicas of a
//! data block, then issues the whole-file degraded read **and** the RaidNode
//! repair pass at the same virtual instant. The two compete for the
//! surviving nodes' disks, NICs and the shared LAN; the per-phase timeline
//! shows how long they ran concurrently and how much shorter the combined
//! makespan is than the serial sum.
//!
//! Byte traffic is accounted exactly as before (and is identical under
//! `DRC_SIM_THREADS=1` and any multi-threaded run); only the *time* model is
//! new.

use serde::{Deserialize, Serialize};

use drc_cluster::{ClusterSpec, NodeId};
use drc_codes::CodeKind;
use drc_hdfs::DistributedFileSystem;
use drc_sim::{Phase, SimTime};

use crate::experiments::harness;
use crate::render::TextTable;
use crate::DrcError;

/// Overlap measurements for one code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapRow {
    /// The coding scheme.
    pub code: CodeKind,
    /// Virtual seconds the initial write pass took.
    pub write_s: f64,
    /// Virtual seconds the degraded whole-file read was in flight.
    pub degraded_read_s: f64,
    /// Virtual seconds the repair pass was in flight.
    pub repair_s: f64,
    /// Virtual seconds repair and degraded reads ran *concurrently*.
    pub overlap_s: f64,
    /// Virtual makespan of the concurrent failure-handling window.
    pub makespan_s: f64,
    /// Measured makespan of an identical run executed serially (a `sync`
    /// between the degraded read and the repair pass) — the old execution
    /// model's number, re-measured rather than derived.
    pub serial_s: f64,
    /// Network bytes the degraded reads moved.
    pub degraded_read_bytes: u64,
    /// Network bytes the repair moved (per the code's plan).
    pub repair_network_bytes: u64,
    /// The raw failure-window phases (write phases excluded).
    pub phases: Vec<Phase>,
}

/// The repair/degraded-read overlap report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapReport {
    /// Stripes written per file.
    pub stripes: usize,
    /// Block size used, in bytes.
    pub block_bytes: u64,
    /// One row per code.
    pub rows: Vec<OverlapRow>,
}

impl OverlapReport {
    /// Looks up one code's row.
    pub fn row(&self, code: CodeKind) -> Option<&OverlapRow> {
        self.rows.iter().find(|r| r.code == code)
    }
}

/// Runs the overlap experiment for the double-replicated array codes.
///
/// Each code writes a `stripes`-stripe file of real payload onto a simulated
/// 25-node cluster with `block_bytes`-sized blocks, loses both replicas of
/// data block 0 of stripe 0 to permanent failures, and then handles the
/// failure with a concurrent degraded read + repair pass.
///
/// # Errors
///
/// Propagates file-system errors (none are expected for the array codes,
/// which all tolerate double failures).
pub fn run_overlap(block_bytes: usize, stripes: usize) -> Result<OverlapReport, DrcError> {
    let codes = [
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
    ];
    // One cell per code; the concurrent run and its measured serial baseline
    // share a cell because the row combines both.
    let cells = codes
        .into_iter()
        .map(|code| {
            move || -> Result<OverlapRow, DrcError> {
                let concurrent = run_failure_window(code, block_bytes, stripes, false)?;
                // The serial baseline is *measured*, not derived: the identical
                // scenario with a `sync` between the read and the repair, i.e.
                // the pre-substrate back-to-back execution model.
                let serial = run_failure_window(code, block_bytes, stripes, true)?;
                Ok(OverlapRow {
                    serial_s: serial.makespan_s,
                    ..concurrent
                })
            }
        })
        .collect();
    Ok(OverlapReport {
        stripes,
        block_bytes: block_bytes as u64,
        rows: harness::run_cells(cells)?,
    })
}

/// Executes one write -> double-failure -> degraded-read + repair scenario
/// and measures its failure-handling window. With `serialise` the repair is
/// only issued after the read has fully drained (the old execution model);
/// without it both are issued at the same virtual instant and overlap.
fn run_failure_window(
    code: CodeKind,
    block_bytes: usize,
    stripes: usize,
    serialise: bool,
) -> Result<OverlapRow, DrcError> {
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = (block_bytes as u64 / (1024 * 1024)).max(1);
    let block_size = spec.block_size_bytes();
    let mut fs = DistributedFileSystem::new(spec, 0x5EED ^ code.to_string().len() as u64);

    // Enough payload for the requested stripe count.
    let k = code.build()?.data_blocks();
    let data: Vec<u8> = (0..stripes * k * block_size as usize)
        .map(|i| (i * 31 + 7) as u8)
        .collect();
    let id = fs.write_file("/overlap", &data, code)?;
    let write_done = fs.sync();
    let write_s = write_done.as_secs_f64();

    // Lose both replicas of data block 0 of stripe 0.
    let meta = fs.namenode().file(id)?.clone();
    let victims: Vec<NodeId> = meta.block_locations(0, 0)?.to_vec();
    for &v in &victims {
        fs.fail_node_permanently(v);
    }

    let window_start = fs.now();
    let back = fs.read_file(id)?;
    debug_assert_eq!(back.len(), data.len());
    if serialise {
        fs.sync();
    }
    let report = fs.repair_nodes(&victims)?;
    let window_end = fs.sync();

    let timeline = fs.timeline();
    let degraded_read_s = span_secs(timeline.with_prefix("degraded-read:"), window_start);
    let repair_s = span_secs(timeline.with_prefix("repair:"), window_start);
    let overlap_s = timeline.overlap("repair:", "degraded-read:").as_secs_f64();
    let makespan_s = window_end.since(window_start).as_secs_f64();
    let phases: Vec<Phase> = timeline
        .phases
        .iter()
        .filter(|p| !p.label.starts_with("write:"))
        .cloned()
        .collect();
    Ok(OverlapRow {
        code,
        write_s,
        degraded_read_s,
        repair_s,
        overlap_s,
        makespan_s,
        serial_s: makespan_s, // overwritten by the caller's serial run
        // Reconstruction traffic only -- the per-phase record excludes the
        // healthy replica reads the whole-file read also performed.
        degraded_read_bytes: timeline.bytes_with_prefix("degraded-read:"),
        repair_network_bytes: report.network_bytes,
        phases,
    })
}

/// The busy span (in seconds) of a phase group, measured from `origin`.
fn span_secs<'a>(phases: impl Iterator<Item = &'a Phase>, origin: SimTime) -> f64 {
    phases
        .map(|p| p.end.since(origin).as_secs_f64())
        .fold(0.0, f64::max)
}

impl std::fmt::Display for OverlapReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut table = TextTable::new(
            format!(
                "Repair / degraded-read overlap in virtual time ({} stripes, {} MiB blocks)",
                self.stripes,
                self.block_bytes / (1024 * 1024)
            ),
            &[
                "Code",
                "Degraded read (s)",
                "Repair (s)",
                "Overlap (s)",
                "Makespan (s)",
                "Serial (s)",
                "Degraded traffic (MiB)",
                "Repair traffic (MiB)",
            ],
        );
        for r in &self.rows {
            table.push_row(vec![
                r.code.to_string(),
                format!("{:.3}", r.degraded_read_s),
                format!("{:.3}", r.repair_s),
                format!("{:.3}", r.overlap_s),
                format!("{:.3}", r.makespan_s),
                format!("{:.3}", r.serial_s),
                format!("{:.1}", r.degraded_read_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.1}", r.repair_network_bytes as f64 / (1024.0 * 1024.0)),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_positive_and_beats_serial_execution() {
        let report = run_overlap(1024 * 1024, 2).unwrap();
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(row.write_s > 0.0, "{}: writes take virtual time", row.code);
            assert!(
                row.overlap_s > 0.0,
                "{}: repair and degraded reads must overlap",
                row.code
            );
            assert!(
                row.makespan_s < row.serial_s,
                "{}: overlapping execution must beat the serial sum",
                row.code
            );
            assert!(!row.phases.is_empty());
            assert!(row.repair_network_bytes > 0);
        }
        assert!(report.row(CodeKind::Pentagon).is_some());
        assert!(report.to_string().contains("Overlap"));
    }

    #[test]
    fn byte_traffic_is_thread_count_independent() {
        let single = rayon_stub_single(|| run_overlap(1024 * 1024, 1).unwrap());
        let multi = run_overlap(1024 * 1024, 1).unwrap();
        for (a, b) in single.rows.iter().zip(&multi.rows) {
            assert_eq!(a.degraded_read_bytes, b.degraded_read_bytes);
            assert_eq!(a.repair_network_bytes, b.repair_network_bytes);
            assert_eq!(a.phases, b.phases, "virtual timelines are deterministic");
        }
    }

    fn rayon_stub_single<R>(f: impl FnOnce() -> R) -> R {
        rayon::with_num_threads(1, f)
    }
}
