//! Fig. 5: Terasort on set-up 2 (9 server-class nodes, 4 map slots) —
//! network traffic and data locality vs load for 3-rep, 2-rep and pentagon.

use drc_cluster::ClusterSpec;
use drc_codes::CodeKind;
use drc_workloads::setup2_loads;

use crate::experiments::fig4::{run_terasort_sweep, TerasortSweep};
use crate::experiments::Effort;
use crate::DrcError;

/// The Fig. 5 result is a Terasort sweep on set-up 2.
pub type Fig5Data = TerasortSweep;

/// Runs the Fig. 5 sweep: set-up 2, Terasort, loads 25–100%, codes 3-rep,
/// 2-rep and pentagon (the heptagon would fit set-up 2's nine nodes too, but
/// the paper only measured the pentagon there).
///
/// # Errors
///
/// Propagates placement or execution errors (none occur for this fixed
/// configuration).
pub fn run_fig5(effort: Effort) -> Result<Fig5Data, DrcError> {
    run_terasort_sweep(
        "setup2 (9 nodes, 4 map slots)",
        ClusterSpec::setup2(),
        CodeKind::fig5_set(),
        setup2_loads(),
        effort,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_matches_paper() {
        let sweep = run_fig5(Effort::Quick).unwrap();
        assert_eq!(sweep.points.len(), 3 * 4);
        let p = |code, load| sweep.point(code, load).unwrap();
        // The paper's conclusion (iv): with 4 cores/slots per node, the
        // pentagon's performance is very close to 2-rep up to 75% load.
        let pent = p(CodeKind::Pentagon, 75.0);
        let two = p(CodeKind::TWO_REP, 75.0);
        assert!(pent.data_locality_percent > 85.0);
        assert!((pent.job_time_s - two.job_time_s).abs() / two.job_time_s < 0.2);
        // Locality still degrades with load for the pentagon.
        assert!(
            p(CodeKind::Pentagon, 25.0).data_locality_percent
                >= p(CodeKind::Pentagon, 100.0).data_locality_percent
        );
        // Network traffic rises with load for every code.
        for code in CodeKind::fig5_set() {
            assert!(p(code, 100.0).network_traffic_gb > p(code, 25.0).network_traffic_gb);
        }
        // 2-rep and 3-rep are nearly indistinguishable on this set-up.
        let three = p(CodeKind::THREE_REP, 100.0);
        let two_full = p(CodeKind::TWO_REP, 100.0);
        assert!((three.data_locality_percent - two_full.data_locality_percent).abs() < 10.0);
    }
}
