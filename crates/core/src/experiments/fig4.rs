//! Fig. 4: Terasort on set-up 1 (25 nodes, 2 map slots) — job time, network
//! traffic and data locality vs load for 3-rep, 2-rep, pentagon and heptagon.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use drc_cluster::{Cluster, ClusterSpec};
use drc_codes::CodeKind;
use drc_mapreduce::{run_job, SchedulerKind};
use drc_workloads::{provision_workload, setup1_loads, LoadPoint, WorkloadKind};

use crate::experiments::{harness, Effort, DEFAULT_SEED};
use crate::render::TextTable;
use crate::DrcError;

/// Mean measurements for one `(code, load)` point of a Terasort sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TerasortPoint {
    /// The coding scheme.
    pub code: CodeKind,
    /// Load percentage.
    pub load_percent: f64,
    /// Mean job execution time in seconds.
    pub job_time_s: f64,
    /// Mean network traffic in GiB.
    pub network_traffic_gb: f64,
    /// Mean data locality in percent.
    pub data_locality_percent: f64,
    /// Mean number of degraded reads per job (0 on a healthy cluster).
    pub degraded_reads: f64,
    /// Number of trials averaged.
    pub trials: usize,
}

/// A full Terasort sweep (one figure's worth of curves).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TerasortSweep {
    /// Which cluster set-up was used.
    pub setup: String,
    /// The measured points, ordered by code then load.
    pub points: Vec<TerasortPoint>,
}

impl TerasortSweep {
    /// Looks up one point.
    pub fn point(&self, code: CodeKind, load: f64) -> Option<&TerasortPoint> {
        self.points
            .iter()
            .find(|p| p.code == code && (p.load_percent - load).abs() < 1e-9)
    }
}

/// Runs the Fig. 4 sweep: set-up 1, delay scheduling, Terasort, loads
/// 50–100%, codes 3-rep / 2-rep / pentagon / heptagon.
///
/// # Errors
///
/// Propagates placement or execution errors (none occur for this fixed
/// configuration).
pub fn run_fig4(effort: Effort) -> Result<TerasortSweep, DrcError> {
    run_terasort_sweep(
        "setup1 (25 nodes, 2 map slots)",
        ClusterSpec::setup1(),
        CodeKind::fig4_set(),
        setup1_loads(),
        effort,
    )
}

/// Shared sweep driver used by Fig. 4, Fig. 5 and the degraded-mode
/// experiment.
pub fn run_terasort_sweep(
    setup: &str,
    spec: ClusterSpec,
    codes: Vec<CodeKind>,
    loads: Vec<LoadPoint>,
    effort: Effort,
) -> Result<TerasortSweep, DrcError> {
    // Execution-engine trials are costlier than pure locality trials; a
    // fraction of the locality trial count is plenty for stable means.
    let trials = (effort.trials() / 3).max(5);
    // One cell per (code, load) point: each cell runs its own trial loop on
    // private clusters and rngs, so points are fully independent.
    let mut specs: Vec<(CodeKind, f64)> = Vec::new();
    for &code_kind in &codes {
        for load in &loads {
            specs.push((code_kind, load.percent));
        }
    }
    let cells = specs
        .into_iter()
        .map(|(code_kind, load_percent)| {
            let spec = spec.clone();
            move || terasort_point(&spec, code_kind, load_percent, trials)
        })
        .collect::<Vec<_>>();
    Ok(TerasortSweep {
        setup: setup.to_string(),
        points: harness::run_cells(cells)?,
    })
}

/// Measures one `(code, load)` point: `trials` engine runs averaged.
fn terasort_point(
    spec: &ClusterSpec,
    code_kind: CodeKind,
    load_percent: f64,
    trials: usize,
) -> Result<TerasortPoint, DrcError> {
    let scheduler = SchedulerKind::Delay.build();
    let code = code_kind.build()?;
    let mut job_time = 0.0;
    let mut traffic = 0.0;
    let mut locality = 0.0;
    let mut degraded = 0.0;
    for trial in 0..trials {
        let cluster = Cluster::new(spec.clone());
        let mut rng =
            ChaCha8Rng::seed_from_u64(DEFAULT_SEED ^ (trial as u64) << 17 ^ load_percent as u64);
        let workload = provision_workload(
            WorkloadKind::Terasort,
            code_kind,
            &cluster,
            load_percent,
            &mut rng,
        )?;
        let metrics = run_job(
            &workload.job,
            code.as_ref(),
            &workload.placement,
            &cluster,
            scheduler.as_ref(),
            &mut rng,
        )?;
        job_time += metrics.job_time_s;
        traffic += metrics.network_traffic_gb();
        locality += metrics.data_locality_percent();
        degraded += metrics.degraded_reads as f64;
    }
    let n = trials as f64;
    Ok(TerasortPoint {
        code: code_kind,
        load_percent,
        job_time_s: job_time / n,
        network_traffic_gb: traffic / n,
        data_locality_percent: locality / n,
        degraded_reads: degraded / n,
        trials,
    })
}

impl std::fmt::Display for TerasortSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut table = TextTable::new(
            format!("Terasort on {}", self.setup),
            &[
                "Code",
                "Load",
                "Job time (s)",
                "Network traffic (GB)",
                "Data locality",
                "Degraded reads",
            ],
        );
        for p in &self.points {
            table.push_row(vec![
                p.code.to_string(),
                format!("{:.0}%", p.load_percent),
                format!("{:.1}", p.job_time_s),
                format!("{:.2}", p.network_traffic_gb),
                format!("{:.1}%", p.data_locality_percent),
                format!("{:.1}", p.degraded_reads),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_matches_paper() {
        let sweep = run_fig4(Effort::Quick).unwrap();
        // 4 codes x 3 loads.
        assert_eq!(sweep.points.len(), 12);

        let p = |code, load| sweep.point(code, load).unwrap();
        // (i) At moderate load 2-rep performs very close to 3-rep.
        let two = p(CodeKind::TWO_REP, 50.0);
        let three = p(CodeKind::THREE_REP, 50.0);
        assert!((two.job_time_s - three.job_time_s).abs() / three.job_time_s < 0.15);
        // (ii) Locality ordering at 100% load: replication > pentagon > heptagon.
        assert!(
            p(CodeKind::TWO_REP, 100.0).data_locality_percent
                > p(CodeKind::Pentagon, 100.0).data_locality_percent
        );
        assert!(
            p(CodeKind::Pentagon, 100.0).data_locality_percent
                > p(CodeKind::Heptagon, 100.0).data_locality_percent
        );
        // (iii) The array codes' extra network traffic reflects lost locality.
        assert!(
            p(CodeKind::Heptagon, 100.0).network_traffic_gb
                > p(CodeKind::TWO_REP, 100.0).network_traffic_gb
        );
        // (iv) With only 2 map slots there is a visible job-time penalty for
        // the heptagon at high load.
        assert!(p(CodeKind::Heptagon, 100.0).job_time_s >= p(CodeKind::TWO_REP, 100.0).job_time_s);
        // Network traffic grows with load for every code.
        for code in CodeKind::fig4_set() {
            assert!(p(code, 100.0).network_traffic_gb > p(code, 50.0).network_traffic_gb);
        }
        // Healthy cluster: no degraded reads anywhere.
        assert!(sweep.points.iter().all(|p| p.degraded_reads == 0.0));
        assert!(sweep.to_string().contains("Terasort"));
    }
}
