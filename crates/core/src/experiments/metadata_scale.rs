//! Metadata-plane scaling: index size and query throughput at datacenter
//! block counts.
//!
//! The paper's experiments run on 9–25 nodes, but the codes are pitched at
//! datacenter HDFS deployments where a NameNode tracks millions of blocks.
//! This experiment sweeps cluster size × blocks for each code and measures
//! the placement index itself: resident bytes per distinct block, point
//! lookups (block → replica nodes) per second, and repair-style reverse
//! scans (node → blocks) per second — for both the compact arena-backed
//! index and the map-based reference index, so the compaction is quantified
//! rather than asserted.
//!
//! The headline row places **10 million blocks over a 1000-node cluster**
//! and still fits the quick profile: the compact index stores one `u32` per
//! stripe-local host plus one `u32` reverse-posting, i.e. `8·n / d` bytes
//! per block for an arity-`n`, `d`-distinct-block code — 16 B for 2-rep,
//! 4 B for the pentagon — where the map-based reference spends hundreds.

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use drc_cluster::{Cluster, ClusterSpec, IndexKind, NodeId, PlacementMap, PlacementPolicy};
use drc_codes::CodeKind;

use super::{harness, Effort, DEFAULT_SEED};
use crate::render::TextTable;
use crate::DrcError;

/// One measured (code, cluster size, block count, index backend) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetadataScaleRow {
    /// The coding scheme whose placement is indexed.
    pub code: CodeKind,
    /// Which index backend the placement was built on.
    pub index: IndexKind,
    /// Data nodes in the cluster.
    pub nodes: usize,
    /// Stripes placed.
    pub stripes: usize,
    /// Distinct blocks indexed (stripes × distinct blocks per stripe).
    pub blocks: usize,
    /// Heap bytes resident in the index (per its own accounting).
    pub index_bytes: usize,
    /// Index bytes per distinct block.
    pub bytes_per_block: f64,
    /// Point lookups (block → replica list) per second of wall time.
    pub lookups_per_s: f64,
    /// Blocks visited per second by reverse (node → blocks) repair scans.
    pub repair_scan_blocks_per_s: f64,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetadataScaleTable {
    /// One row per measured configuration.
    pub rows: Vec<MetadataScaleRow>,
}

/// Builds a placement on the requested backend and measures it.
///
/// Exposed to the bench harness (`drc-bench` reports the headline numbers
/// from the same code path) and parameterisable down to toy sizes for unit
/// tests.
///
/// # Errors
///
/// Fails if the code cannot build or the cluster is too small for one
/// stripe of it.
pub fn measure_config(
    kind: CodeKind,
    index: IndexKind,
    nodes: usize,
    stripes: usize,
    lookups: usize,
) -> Result<MetadataScaleRow, DrcError> {
    let code = kind.build()?;
    let cluster = Cluster::new(ClusterSpec::datacenter(nodes));
    let mut rng = ChaCha8Rng::seed_from_u64(DEFAULT_SEED);
    // Round-robin keeps placement O(stripes · arity): the random policy
    // shuffles the full node pool per stripe, which swamps the index
    // measurements at 10M-block scale.
    let placement = drc_cluster::with_index_kind(index, || {
        PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::RoundRobin,
            &mut rng,
        )
    })?;
    let blocks = stripes * placement.distinct_blocks_per_stripe();
    let index_bytes = placement.heap_bytes();

    // Point lookups over a fixed pseudo-random block sequence (a Weyl
    // generator — cheap enough that the index dominates the measurement).
    let distinct = placement.distinct_blocks_per_stripe();
    let started = Instant::now();
    let mut replica_sum = 0usize;
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..lookups {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let stripe = (x >> 32) as usize % stripes;
        let block = (x as u32) as usize % distinct;
        replica_sum += placement
            .locations(drc_cluster::GlobalBlockId::new(stripe, block))?
            .len();
    }
    let lookup_elapsed = started.elapsed().as_secs_f64();
    assert!(replica_sum > 0, "lookups must observe real replica lists");
    let lookups_per_s = lookups as f64 / lookup_elapsed.max(1e-9);

    // Reverse scans: walk every node's blocks exactly as a repair pass
    // planning the loss of that node would.
    let started = Instant::now();
    let mut scanned = 0usize;
    for node in 0..nodes {
        placement.for_each_block_on_node(NodeId(node), |_| scanned += 1)?;
    }
    let scan_elapsed = started.elapsed().as_secs_f64();
    let repair_scan_blocks_per_s = scanned as f64 / scan_elapsed.max(1e-9);

    Ok(MetadataScaleRow {
        code: kind,
        index,
        nodes,
        stripes,
        blocks,
        index_bytes,
        bytes_per_block: index_bytes as f64 / blocks as f64,
        lookups_per_s,
        repair_scan_blocks_per_s,
    })
}

/// Runs the metadata-plane scaling sweep.
///
/// Both backends are measured head-to-head at a mid-size point per code;
/// the datacenter-scale points (1000 nodes, 10M+ blocks) run on the compact
/// index only — the map-based reference at that size is exactly the
/// NameNode-memory wall this experiment exists to demonstrate, and building
/// it would dominate the run.
///
/// # Errors
///
/// Propagates placement or code-construction failures.
pub fn run_metadata_scale(effort: Effort) -> Result<MetadataScaleTable, DrcError> {
    let paired_codes = [
        CodeKind::TWO_REP,
        CodeKind::Pentagon,
        CodeKind::HeptagonLocal,
    ];
    let (paired_blocks, big_nodes, big_blocks, lookups) = match effort {
        Effort::Quick => (200_000usize, 1000usize, 10_000_000usize, 200_000usize),
        Effort::Full => (1_000_000, 1000, 20_000_000, 1_000_000),
    };
    // One cell per measured configuration, in the table's fixed row order.
    // The query rates are wall-clock measurements; only the structural
    // fields (blocks, index bytes) are width-invariant.
    let mut specs: Vec<(CodeKind, IndexKind, usize, usize)> = Vec::new();
    for kind in paired_codes {
        let code = kind.build()?;
        let stripes = paired_blocks.div_ceil(code.distinct_blocks());
        for index in [IndexKind::Map, IndexKind::Compact] {
            specs.push((kind, index, 100, stripes));
        }
    }
    // Datacenter scale: 1000 nodes, ≥10M blocks, compact only.
    for kind in [CodeKind::TWO_REP, CodeKind::Pentagon] {
        let code = kind.build()?;
        let stripes = big_blocks.div_ceil(code.distinct_blocks());
        specs.push((kind, IndexKind::Compact, big_nodes, stripes));
    }
    let cells = specs
        .into_iter()
        .map(|(kind, index, nodes, stripes)| {
            move || measure_config(kind, index, nodes, stripes, lookups)
        })
        .collect();
    Ok(MetadataScaleTable {
        rows: harness::run_cells(cells)?,
    })
}

impl std::fmt::Display for MetadataScaleTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut table = TextTable::new(
            "Metadata plane at scale: placement-index size and query rates",
            &[
                "Code",
                "Index",
                "Nodes",
                "Blocks",
                "Index bytes",
                "B/block",
                "Lookups/s",
                "Scan blocks/s",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.code.to_string(),
                row.index.to_string(),
                row.nodes.to_string(),
                row.blocks.to_string(),
                row.index_bytes.to_string(),
                format!("{:.1}", row.bytes_per_block),
                format!("{:.3e}", row.lookups_per_s),
                format!("{:.3e}", row.repair_scan_blocks_per_s),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_index_is_strictly_smaller_and_answers_identically_sized_queries() {
        for kind in [CodeKind::TWO_REP, CodeKind::Pentagon] {
            let map = measure_config(kind, IndexKind::Map, 30, 500, 1000).unwrap();
            let compact = measure_config(kind, IndexKind::Compact, 30, 500, 1000).unwrap();
            assert_eq!(map.blocks, compact.blocks, "{kind}");
            assert!(
                compact.index_bytes < map.index_bytes,
                "{kind}: compact {} B must undercut map {} B",
                compact.index_bytes,
                map.index_bytes
            );
            assert!(compact.lookups_per_s > 0.0 && compact.repair_scan_blocks_per_s > 0.0);
        }
    }

    #[test]
    fn compact_bytes_per_block_meet_the_target() {
        // The ISSUE target is ≤48 B/block; the arena layout comes in far
        // under it for every paper code at non-toy sizes.
        for kind in [
            CodeKind::TWO_REP,
            CodeKind::Pentagon,
            CodeKind::HeptagonLocal,
        ] {
            let row = measure_config(kind, IndexKind::Compact, 30, 2000, 100).unwrap();
            assert!(
                row.bytes_per_block <= 48.0,
                "{kind}: {:.1} B/block",
                row.bytes_per_block
            );
        }
    }
}
