//! Shuffle / repair contention on the shared cluster substrate.
//!
//! The paper's headline claim is that codes with inherent double replication
//! win precisely when repair traffic, degraded reads and MapReduce execution
//! contend for the same disks and links. With the shuffle now event-driven,
//! that contention is measurable end-to-end: this experiment writes a real
//! file per code, permanently fails the replicas of one data block, and runs
//! the same Terasort-like job twice on the file system's own
//! [`drc_sim::ClusterNet`] —
//!
//! * **solo**: the job runs alone (the failed block is served by a degraded
//!   read for the ft≥2 array codes, or by 2-rep's surviving replica, but no
//!   repair traffic competes), and
//! * **contended**: the RaidNode repair pass is issued at the same virtual
//!   instant, so its helper reads and replacement writes reserve the same
//!   NICs, disks and LAN fabric the job's map waves and shuffle fetches
//!   need.
//!
//! Byte accounting is identical in both runs (asserted); only the time axis
//! moves. The report shows the per-code job slowdown, the per-link seconds
//! the shuffle spent queueing, and how long the shuffle and the repair were
//! concurrently in flight.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use drc_cluster::{Cluster, ClusterSpec, NodeId};
use drc_codes::CodeKind;
use drc_hdfs::DistributedFileSystem;
use drc_mapreduce::{run_job_on, JobSite, JobSpec, LinkContention, SchedulerKind};

use crate::experiments::harness;
use crate::render::TextTable;
use crate::DrcError;

/// Contention measurements for one code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffleContentionRow {
    /// The coding scheme.
    pub code: CodeKind,
    /// Nodes failed (and repaired in the contended run).
    pub failed_nodes: usize,
    /// Job time with no concurrent repair, in virtual seconds.
    pub solo_job_s: f64,
    /// Job time with the repair pass issued at the same instant.
    pub contended_job_s: f64,
    /// `contended_job_s / solo_job_s` — the headline slowdown.
    pub slowdown: f64,
    /// Per-link seconds the contended run's shuffle fetches spent queueing.
    pub contention: LinkContention,
    /// Total per-link wait of the solo run (the shuffle's self-contention).
    pub solo_contention_s: f64,
    /// Virtual seconds the repair pass was in flight.
    pub repair_s: f64,
    /// Virtual seconds shuffle fetches and repair were both in flight.
    pub shuffle_repair_overlap_s: f64,
    /// The job's network traffic — byte-identical in both runs.
    pub network_traffic_bytes: u64,
}

/// The shuffle/repair contention report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffleContentionReport {
    /// Block size used, in bytes.
    pub block_bytes: u64,
    /// Map tasks targeted per job.
    pub target_tasks: usize,
    /// One row per code.
    pub rows: Vec<ShuffleContentionRow>,
}

impl ShuffleContentionReport {
    /// Looks up one code's row.
    pub fn row(&self, code: CodeKind) -> Option<&ShuffleContentionRow> {
        self.rows.iter().find(|r| r.code == code)
    }

    /// The largest per-code slowdown — the headline number tracked in
    /// `BENCH_sim.json`.
    pub fn headline_slowdown(&self) -> f64 {
        self.rows.iter().map(|r| r.slowdown).fold(1.0, f64::max)
    }
}

/// One measured execution window.
struct Window {
    job_s: f64,
    contention: LinkContention,
    repair_s: f64,
    overlap_s: f64,
    network_traffic_bytes: u64,
}

/// Runs the shuffle-contention experiment for 2-rep and the three
/// double-replicated array codes.
///
/// Each code writes a file of ~`target_tasks` blocks of `block_bytes` onto a
/// simulated 25-node cluster, loses every replica the code can tolerate of
/// data block 0 of stripe 0, and executes the job with and without a
/// concurrent RaidNode repair pass on the same [`drc_sim::ClusterNet`].
///
/// # Errors
///
/// Propagates file-system and execution errors (none are expected for these
/// codes, whose failures stay within tolerance).
pub fn run_shuffle_contention(
    block_bytes: usize,
    target_tasks: usize,
) -> Result<ShuffleContentionReport, DrcError> {
    let codes = [
        CodeKind::TWO_REP,
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
    ];
    // One cell per code; the solo baseline and the contended run share a
    // cell because the row compares them.
    let cells = codes
        .into_iter()
        .map(|code| move || contention_row(code, block_bytes, target_tasks))
        .collect();
    Ok(ShuffleContentionReport {
        block_bytes: block_bytes as u64,
        target_tasks,
        rows: harness::run_cells(cells)?,
    })
}

/// Measures one code's solo and contended windows and builds its row.
fn contention_row(
    code: CodeKind,
    block_bytes: usize,
    target_tasks: usize,
) -> Result<ShuffleContentionRow, DrcError> {
    let failed = code.build()?.fault_tolerance().min(2);
    let solo = run_window(code, block_bytes, target_tasks, failed, false)?;
    let contended = run_window(code, block_bytes, target_tasks, failed, true)?;
    // The headline slowdown is only meaningful if contention moved the
    // time axis and nothing else — enforce the byte identity in every
    // build, including the release runs that publish the number.
    if solo.network_traffic_bytes != contended.network_traffic_bytes {
        return Err(DrcError::InvalidExperiment {
            reason: format!(
                "{code}: contention changed byte accounting \
                 (solo {} vs contended {} bytes)",
                solo.network_traffic_bytes, contended.network_traffic_bytes
            ),
        });
    }
    Ok(ShuffleContentionRow {
        code,
        failed_nodes: failed,
        solo_job_s: solo.job_s,
        contended_job_s: contended.job_s,
        slowdown: contended.job_s / solo.job_s,
        contention: contended.contention,
        solo_contention_s: solo.contention.total_s(),
        repair_s: contended.repair_s,
        shuffle_repair_overlap_s: contended.overlap_s,
        network_traffic_bytes: contended.network_traffic_bytes,
    })
}

/// Executes one write → failure → (repair? + job) window and measures the
/// job. The repair pass, when present, is issued *first* at the shared
/// virtual instant, so the job's map-wave traffic and shuffle fetches queue
/// behind the reconstruction traffic on the shared links — the contended
/// ordering the paper's failure experiments describe.
fn run_window(
    code: CodeKind,
    block_bytes: usize,
    target_tasks: usize,
    failed: usize,
    with_repair: bool,
) -> Result<Window, DrcError> {
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = (block_bytes as u64 / (1024 * 1024)).max(1);
    let block_size = spec.block_size_bytes() as usize;
    let mut fs = DistributedFileSystem::new(spec, 0xC0DE ^ code.to_string().len() as u64);

    let k = code.build()?.data_blocks();
    let stripes = target_tasks.div_ceil(k).max(1);
    let data: Vec<u8> = (0..stripes * k * block_size)
        .map(|i| (i * 31 + 7) as u8)
        .collect();
    let id = fs.write_file("/shuffle-contention", &data, code)?;
    fs.sync();
    let meta = fs.namenode().file(id)?.clone();

    // Lose as many replicas of data block 0 of stripe 0 as the code
    // tolerates, so the repair pass has real reconstruction work on every
    // stripe the victims host. For the ft≥2 array codes both replicas go,
    // and the job's map task for that block runs as a degraded read; 2-rep
    // tolerates only one failure, so its map task falls back to the
    // surviving replica (a plain remote read) and its row measures pure
    // repair-vs-shuffle link contention.
    let victims: Vec<NodeId> = meta.block_locations(0, 0)?[..failed].to_vec();
    for &v in &victims {
        fs.fail_node_permanently(v);
    }

    // Snapshot the failed cluster for the job: `repair_nodes` marks the
    // victims up again once the pass completes, but the job is issued in the
    // same virtual window and must still see them down.
    let mut cluster = Cluster::new(fs.cluster().spec().clone());
    for &v in &victims {
        cluster.set_down(v);
    }

    let start = fs.now();
    let repair = if with_repair {
        Some(fs.repair_nodes(&victims)?)
    } else {
        None
    };

    // A Terasort-like job over a quarter of the file's data blocks (always
    // including the degraded block 0 of stripe 0), with short task overhead
    // and map CPU: the map phase stays a fraction of the repair pass, so the
    // shuffle is issued while the repair — which rebuilds *every* stripe the
    // victims host — is still in flight. That is the window the paper's
    // failure experiments are about.
    let job_blocks: Vec<_> = meta
        .placement
        .data_blocks()
        .into_iter()
        .take((target_tasks / 4).max(8))
        .collect();
    let job = JobSpec::new("shuffle-contention", job_blocks)
        .with_task_overhead_s(0.01)?
        .with_map_cpu_s_per_mb(0.005)?
        .with_reduce_tasks(cluster.up_nodes().len());
    let scheduler = SchedulerKind::Delay.build();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED ^ failed as u64);
    let built = code.build()?;
    let metrics = run_job_on(
        &job,
        built.as_ref(),
        &meta.placement,
        &cluster,
        scheduler.as_ref(),
        &mut rng,
        JobSite {
            net: fs.cluster_net(),
            start,
        },
    )?;

    // Merge the storage-layer and job timelines (they share the virtual
    // time base) to measure how long shuffle and repair ran concurrently.
    let (repair_s, overlap_s) = match &repair {
        Some(report) => {
            let mut combined = fs.timeline().clone();
            combined
                .phases
                .extend(metrics.timeline.phases.iter().cloned());
            (
                report.completed_at.since(report.issued_at).as_secs_f64(),
                combined.overlap("shuffle:", "repair:").as_secs_f64(),
            )
        }
        None => (0.0, 0.0),
    };
    Ok(Window {
        job_s: metrics.job_time_s,
        contention: metrics.shuffle_contention,
        repair_s,
        overlap_s,
        network_traffic_bytes: metrics.network_traffic_bytes,
    })
}

impl std::fmt::Display for ShuffleContentionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut table = TextTable::new(
            format!(
                "Job slowdown under concurrent repair ({} tasks, {} MiB blocks)",
                self.target_tasks,
                self.block_bytes / (1024 * 1024)
            ),
            &[
                "Code",
                "Failed",
                "Solo job (s)",
                "Contended job (s)",
                "Slowdown",
                "Src-NIC wait (s)",
                "Dst-NIC wait (s)",
                "Fabric wait (s)",
                "Repair (s)",
                "Shuffle∩repair (s)",
            ],
        );
        for r in &self.rows {
            table.push_row(vec![
                r.code.to_string(),
                r.failed_nodes.to_string(),
                format!("{:.3}", r.solo_job_s),
                format!("{:.3}", r.contended_job_s),
                format!("{:.2}x", r.slowdown),
                format!("{:.3}", r.contention.source_nic_wait_s),
                format!("{:.3}", r.contention.dest_nic_wait_s),
                format!("{:.3}", r.contention.fabric_wait_s),
                format!("{:.3}", r.repair_s),
                format!("{:.3}", r.shuffle_repair_overlap_s),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_repair_slows_the_job_and_contention_is_attributed() {
        let report = run_shuffle_contention(1024 * 1024, 100).unwrap();
        assert_eq!(report.rows.len(), 4);
        for row in &report.rows {
            assert!(row.failed_nodes >= 1, "{}", row.code);
            assert!(row.solo_job_s > 0.0, "{}", row.code);
            // The acceptance criteria: concurrent repair produces strictly
            // positive per-link contention and a measurable job slowdown.
            assert!(
                row.slowdown > 1.0,
                "{}: concurrent repair must slow the job (solo {:.3}s, contended {:.3}s)",
                row.code,
                row.solo_job_s,
                row.contended_job_s
            );
            assert!(row.contention.source_nic_wait_s > 0.0, "{}", row.code);
            assert!(row.contention.dest_nic_wait_s > 0.0, "{}", row.code);
            assert!(row.contention.total_s() > 0.0, "{}", row.code);
            assert!(row.solo_contention_s > 0.0, "{}", row.code);
            assert!(row.repair_s > 0.0, "{}", row.code);
            assert!(
                row.shuffle_repair_overlap_s > 0.0,
                "{}: shuffle and repair must be concurrently in flight",
                row.code
            );
            assert!(row.network_traffic_bytes > 0);
        }
        assert!(report.headline_slowdown() > 1.0);
        assert!(report.row(CodeKind::Pentagon).is_some());
        let text = report.to_string();
        assert!(text.contains("Slowdown"));
    }
}
