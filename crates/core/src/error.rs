use std::fmt;

use drc_cluster::ClusterError;
use drc_codes::CodeError;
use drc_hdfs::HdfsError;
use drc_mapreduce::MapReduceError;
use drc_reliability::ReliabilityError;

/// The unified error type of the top-level crate: any subsystem error can
/// surface through an experiment driver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DrcError {
    /// Erasure-code construction, encoding or repair failed.
    Code(CodeError),
    /// Cluster or placement operation failed.
    Cluster(ClusterError),
    /// A scheduling or execution simulation failed.
    MapReduce(MapReduceError),
    /// A reliability model failed.
    Reliability(ReliabilityError),
    /// The simulated file system reported an error.
    Hdfs(HdfsError),
    /// An experiment configuration was invalid.
    InvalidExperiment {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for DrcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrcError::Code(e) => write!(f, "code error: {e}"),
            DrcError::Cluster(e) => write!(f, "cluster error: {e}"),
            DrcError::MapReduce(e) => write!(f, "mapreduce error: {e}"),
            DrcError::Reliability(e) => write!(f, "reliability error: {e}"),
            DrcError::Hdfs(e) => write!(f, "hdfs error: {e}"),
            DrcError::InvalidExperiment { reason } => write!(f, "invalid experiment: {reason}"),
        }
    }
}

impl std::error::Error for DrcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DrcError::Code(e) => Some(e),
            DrcError::Cluster(e) => Some(e),
            DrcError::MapReduce(e) => Some(e),
            DrcError::Reliability(e) => Some(e),
            DrcError::Hdfs(e) => Some(e),
            DrcError::InvalidExperiment { .. } => None,
        }
    }
}

impl From<CodeError> for DrcError {
    fn from(e: CodeError) -> Self {
        DrcError::Code(e)
    }
}

impl From<ClusterError> for DrcError {
    fn from(e: ClusterError) -> Self {
        DrcError::Cluster(e)
    }
}

impl From<MapReduceError> for DrcError {
    fn from(e: MapReduceError) -> Self {
        DrcError::MapReduce(e)
    }
}

impl From<ReliabilityError> for DrcError {
    fn from(e: ReliabilityError) -> Self {
        DrcError::Reliability(e)
    }
}

impl From<HdfsError> for DrcError {
    fn from(e: HdfsError) -> Self {
        DrcError::Hdfs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error;
        let errors: Vec<DrcError> = vec![
            CodeError::UnequalBlockLengths.into(),
            ClusterError::UnknownNode { node: 1 }.into(),
            MapReduceError::InvalidConfig { reason: "x".into() }.into(),
            ReliabilityError::SingularSystem.into(),
            HdfsError::DataNodeUnavailable { node: 2 }.into(),
            DrcError::InvalidExperiment {
                reason: "bad".into(),
            },
        ];
        for (i, e) in errors.iter().enumerate() {
            assert!(!e.to_string().is_empty());
            assert_eq!(e.source().is_some(), i < 5);
        }
    }
}
