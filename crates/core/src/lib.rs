//! Reproduction of *"Evaluation of Codes with Inherent Double Replication
//! for Hadoop"* (HotStorage 2014) — top-level library.
//!
//! The repository implements the paper's coding schemes and every substrate
//! its evaluation needs, as a family of crates that this crate ties together:
//!
//! | Crate | Role |
//! |---|---|
//! | [`gf`] (`drc-gf`) | GF(2^8) arithmetic, matrices, Reed–Solomon codec |
//! | [`codes`] (`drc-codes`) | pentagon / heptagon / heptagon-local codes plus replication, RAID+m and RS baselines |
//! | [`cluster`] (`drc-cluster`) | cluster topology, block placement, failure injection |
//! | [`sim`] (`drc-sim`) | discrete-event substrate: virtual clock, event queue, modeled disk/NIC/link bandwidth, timelines |
//! | [`hdfs`] (`drc-hdfs`) | simulated HDFS + RaidNode on the event-driven substrate, operating on real block payloads |
//! | [`mapreduce`] (`drc-mapreduce`) | task schedulers (delay / max-matching / peeling), locality simulation, virtual-time MR engine |
//! | [`reliability`] (`drc-reliability`) | Markov-chain MTTDL models and Monte-Carlo validation |
//! | [`workloads`] (`drc-workloads`) | Terasort-style workload generation and load sweeps |
//!
//! The [`experiments`] module contains one driver per table / figure of the
//! paper (Table 1, the §3.1 repair-bandwidth analysis, Fig. 3, Fig. 4,
//! Fig. 5, and the §5 extension experiments); the `repro` binary in the
//! `drc-bench` crate prints them in a paper-comparable form.
//!
//! # Quick start
//!
//! ```
//! use drc_core::codes::{CodeKind, ErasureCode};
//! use drc_core::experiments::table1::run_table1;
//! use drc_core::reliability::ReliabilityParams;
//!
//! # fn main() -> Result<(), drc_core::DrcError> {
//! // The pentagon code: 9 data blocks stored as 20 blocks over 5 nodes.
//! let pentagon = CodeKind::Pentagon.build()?;
//! assert_eq!(pentagon.stored_blocks(), 20);
//!
//! // Reproduce Table 1 with the default failure/repair calibration.
//! let table1 = run_table1(&ReliabilityParams::default())?;
//! assert_eq!(table1.rows.len(), 6);
//! println!("{table1}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod experiments;
mod render;

pub use error::DrcError;
pub use render::{scientific, TextTable};

/// Re-export of the Galois-field substrate crate.
pub use drc_gf as gf;

/// Re-export of the erasure-codes crate (the paper's primary contribution).
pub use drc_codes as codes;

/// Re-export of the cluster/placement crate.
pub use drc_cluster as cluster;

/// Re-export of the discrete-event simulation substrate.
pub use drc_sim as sim;

/// Re-export of the simulated HDFS crate.
pub use drc_hdfs as hdfs;

/// Re-export of the MapReduce scheduling/execution crate.
pub use drc_mapreduce as mapreduce;

/// Re-export of the reliability (MTTDL) crate.
pub use drc_reliability as reliability;

/// Re-export of the workload-generation crate.
pub use drc_workloads as workloads;
