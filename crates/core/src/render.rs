//! Plain-text table rendering for experiment output.
//!
//! The `repro` binary and the examples print the reproduced tables and figure
//! series in a form that can be compared side-by-side with the paper; this
//! module keeps that formatting in one place.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "=".repeat(self.title.len().max(total)))?;
        let format_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, cell)| format!("{:width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("   ")
        };
        if !self.header.is_empty() {
            writeln!(f, "{}", format_row(&self.header))?;
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            writeln!(f, "{}", format_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float in the `1.23e+09` style used by the paper's Table 1.
pub fn scientific(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    let exponent = value.abs().log10().floor() as i32;
    let mantissa = value / 10f64.powi(exponent);
    format!("{mantissa:.2}e+{exponent:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new("Demo", &["code", "value"]);
        t.push_row(vec!["pentagon".to_string(), "2.22x".to_string()]);
        t.push_row(vec!["3-rep".to_string(), "3x".to_string()]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "Demo");
        let s = t.to_string();
        assert!(s.contains("pentagon"));
        assert!(s.contains("code"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn scientific_formatting_matches_paper_style() {
        assert_eq!(scientific(1.2e9), "1.20e+09");
        assert_eq!(scientific(1.05e8), "1.05e+08");
        assert_eq!(scientific(0.0), "0");
        assert_eq!(scientific(8.34e9), "8.34e+09");
    }
}
