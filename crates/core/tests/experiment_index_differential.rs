//! Index-backend differential over the paper experiments: every
//! deterministic experiment must produce **byte-identical** serialised
//! output whether the placements underneath run on the map-based reference
//! index or the compact arena index. The index is a lookup structure — it
//! must never change what the simulation computes.
//!
//! `encoding` reports wall-clock throughput, so it is compared structurally
//! (codes, sizes, byte counts) rather than byte-for-byte;
//! `metadata_scale` measures the backends themselves and is exercised by
//! its own unit tests instead.
//!
//! One `#[test]` per experiment keeps failures attributable and lets the
//! harness run them in parallel.

use drc_core::cluster::{
    with_index_kind, Cluster, ClusterSpec, IndexKind, PlacementMap, PlacementPolicy,
};
use drc_core::codes::CodeKind;
use drc_core::experiments::degraded_mr::run_degraded_mr;
use drc_core::experiments::encoding::run_encoding;
use drc_core::experiments::failure_trace::run_failure_trace;
use drc_core::experiments::fig3::run_fig3;
use drc_core::experiments::fig4::run_fig4;
use drc_core::experiments::fig5::run_fig5;
use drc_core::experiments::overlap::run_overlap;
use drc_core::experiments::repair_bandwidth::run_repair_bandwidth;
use drc_core::experiments::shuffle_contention::run_shuffle_contention;
use drc_core::experiments::table1::run_table1;
use drc_core::experiments::Effort;
use drc_core::reliability::ReliabilityParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs `f` under each backend in turn and returns both serialised results.
fn under_both<T: serde::Serialize>(f: impl Fn() -> T) -> (String, String) {
    let run = |kind| {
        with_index_kind(kind, || {
            serde_json::to_string(&f()).expect("experiment output serialises")
        })
    };
    (run(IndexKind::Map), run(IndexKind::Compact))
}

/// Asserts byte-identical serialised output under both backends.
fn assert_identical<T: serde::Serialize>(name: &str, f: impl Fn() -> T) {
    let (map, compact) = under_both(f);
    assert_eq!(map, compact, "{name}: output depends on the index backend");
}

/// The scoped override must actually steer placement construction on this
/// thread — otherwise every comparison below would trivially pass by
/// comparing Compact against Compact.
#[test]
fn override_reaches_placement_construction() {
    let code = CodeKind::TWO_REP.build().unwrap();
    let cluster = Cluster::new(ClusterSpec::custom(10, 2, 4));
    for kind in [IndexKind::Map, IndexKind::Compact] {
        let placement = with_index_kind(kind, || {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            PlacementMap::place(
                code.as_ref(),
                &cluster,
                2,
                PlacementPolicy::Random,
                &mut rng,
            )
            .unwrap()
        });
        assert_eq!(placement.index_kind(), kind);
    }
}

#[test]
fn table1_is_index_invariant() {
    assert_identical("table1", || {
        run_table1(&ReliabilityParams::default()).unwrap()
    });
}

#[test]
fn repair_bw_is_index_invariant() {
    assert_identical("repair_bw", || run_repair_bandwidth().unwrap());
}

#[test]
fn fig3_is_index_invariant() {
    assert_identical("fig3", || run_fig3(Effort::Quick).unwrap());
}

#[test]
fn fig4_is_index_invariant() {
    assert_identical("fig4", || run_fig4(Effort::Quick).unwrap());
}

#[test]
fn fig5_is_index_invariant() {
    assert_identical("fig5", || run_fig5(Effort::Quick).unwrap());
}

#[test]
fn degraded_mr_is_index_invariant() {
    assert_identical("degraded_mr", || run_degraded_mr(Effort::Quick).unwrap());
}

#[test]
fn overlap_is_index_invariant() {
    // The quick-effort parameters of the repro binary.
    assert_identical("overlap", || run_overlap(1024 * 1024, 2).unwrap());
}

#[test]
fn shuffle_contention_is_index_invariant() {
    assert_identical("shuffle_contention", || {
        run_shuffle_contention(1024 * 1024, 100).unwrap()
    });
}

#[test]
fn failure_trace_is_index_invariant() {
    // Matches `drc_bench::FAILURE_TRACE_QUICK` (core cannot depend on the
    // bench crate).
    assert_identical("failure_trace", || {
        run_failure_trace(1024 * 1024, 60).unwrap()
    });
}

/// `encoding` measures wall-clock throughput, so only its deterministic
/// structure is compared: code list, block/stripe sizes, and the exact
/// data/parity byte counts per code.
#[test]
fn encoding_structure_is_index_invariant() {
    let run = |kind| with_index_kind(kind, || run_encoding(256 * 1024, 2).unwrap());
    let map = run(IndexKind::Map);
    let compact = run(IndexKind::Compact);
    assert_eq!(map.block_bytes, compact.block_bytes);
    assert_eq!(map.stripes, compact.stripes);
    assert_eq!(map.rows.len(), compact.rows.len());
    for (m, c) in map.rows.iter().zip(&compact.rows) {
        assert_eq!(m.code, c.code);
        assert_eq!(m.stripe_data_bytes, c.stripe_data_bytes, "{}", m.code);
        assert_eq!(m.stripe_parity_bytes, c.stripe_parity_bytes, "{}", m.code);
    }
}
