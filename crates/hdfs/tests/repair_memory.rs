//! Working-set proof for the streaming repair path: a counting global
//! allocator measures net heap growth across a repair pass and asserts that
//! the *transient* overhead — everything beyond the restored blocks the
//! repair legitimately retains — stays O(chunk × stripe width), far below
//! the block size. The pre-streaming path copied every helper block
//! (`data.to_vec()`), an O(block × sources) spike this test would catch.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicIsize, Ordering};

use drc_cluster::ClusterSpec;
use drc_codes::CodeKind;
use drc_hdfs::DistributedFileSystem;

// ---------------------------------------------------------------------------
// Counting allocator: tracks net live bytes and the high-water mark inside an
// explicit measurement window. Counters cover *all* threads so the worker
// pool's GF scratch (if any) is on the books too; this binary runs exactly
// one test, so nothing else allocates concurrently.
// ---------------------------------------------------------------------------

struct WindowAllocator;

/// Whether the measurement window is open.
static TRACKING: AtomicBool = AtomicBool::new(false);
/// Net bytes allocated since the window opened (signed: frees of pre-window
/// memory may drive it below zero).
static LIVE: AtomicIsize = AtomicIsize::new(0);
/// High-water mark of `LIVE` inside the window.
static PEAK: AtomicIsize = AtomicIsize::new(0);

fn open_window() {
    LIVE.store(0, Ordering::SeqCst);
    PEAK.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
}

/// Closes the window and returns `(peak, end)` net bytes relative to the
/// window start.
fn close_window() -> (isize, isize) {
    TRACKING.store(false, Ordering::SeqCst);
    (PEAK.load(Ordering::SeqCst), LIVE.load(Ordering::SeqCst))
}

fn count(delta: isize) {
    if TRACKING.load(Ordering::Relaxed) {
        let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }
}

// SAFETY: `unsafe` is required by the `GlobalAlloc` contract; every call
// forwards to `System` with the caller's layout and pointer unchanged, so
// the contract is upheld verbatim and the counters touch no allocator state.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for WindowAllocator {
    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size() as isize);
        // SAFETY: same arguments the caller handed us.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        count(-(layout.size() as isize));
        // SAFETY: same arguments the caller handed us.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size as isize - layout.size() as isize);
        // SAFETY: same arguments the caller handed us.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: WindowAllocator = WindowAllocator;

/// A pentagon double failure over 4 MiB blocks repaired in 512 KiB chunks:
/// the repair's heap high-water mark is the restored blocks it must retain
/// plus a transient working set bounded by O(chunk × stripe width) — the
/// streamed pipeline never materialises whole-block copies of the helper
/// payloads.
#[test]
fn streaming_repair_working_set_is_chunk_sized() {
    const BLOCK: u64 = 4 * 1024 * 1024;
    const CHUNK: u64 = 512 * 1024;
    let code = CodeKind::Pentagon;
    let built = code.build().unwrap();

    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = BLOCK / (1024 * 1024);
    let mut fs = DistributedFileSystem::new(spec, 0x3E3A);
    fs.set_repair_chunk_bytes(CHUNK);

    // Two full stripes; the write path also warms the worker pool so the
    // measurement window sees no one-time pool setup.
    let stripes = 2usize;
    let data: Vec<u8> = (0..stripes * built.data_blocks() * BLOCK as usize)
        .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes()[i % 8])
        .collect();
    let id = fs.write_file("/mem/stream", &data, code).unwrap();
    fs.sync();

    let meta = fs.namenode().file(id).unwrap().clone();
    let victims: Vec<_> =
        meta.placement.stripe_hosts(0).unwrap()[..built.fault_tolerance()].to_vec();
    for &v in &victims {
        fs.fail_node_permanently(v);
    }

    open_window();
    let report = fs.repair_nodes(&victims).unwrap();
    let (peak, end) = close_window();

    assert_eq!(report.unrecoverable_stripes, 0);
    assert!(report.blocks_restored > 0);

    // What the repair legitimately keeps: one fresh buffer per rebuilt block
    // (replica-backed restores are handle clones and retain nothing).
    let retained_cap = report.blocks_restored as isize * BLOCK as isize;
    assert!(
        end <= retained_cap,
        "repair retained {end} bytes, more than {} restored blocks can explain",
        report.blocks_restored
    );

    // The transient spike above what survives the pass: chunk-granular
    // streaming keeps it O(chunk × width) — bookkeeping vectors, solved
    // matrices, task descriptors. One whole-block helper copy (the old
    // monolithic path made several per stripe) would blow through this.
    let width = built.stored_blocks() as isize;
    let transient = peak - end.max(0);
    let bound = CHUNK as isize * width;
    assert!(
        transient <= bound,
        "transient working set {transient} exceeds chunk×width bound {bound} \
         (peak {peak}, end {end})"
    );
    assert!(
        transient < BLOCK as isize,
        "transient working set {transient} reaches block size {BLOCK}"
    );

    assert_eq!(fs.read_file(id).unwrap(), data, "bytes restored intact");
}
