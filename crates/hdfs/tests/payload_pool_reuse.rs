//! Steady-state allocation proof for the block-payload pool: running the
//! same write → fail → repair cell twice must allocate **zero** new
//! block-sized buffers on the second run. The first run populates the pool
//! (every payload, parity copy, encoder scratch and rebuilt block comes
//! from `drc_gf::bufpool`); dropping the file system recycles each
//! allocation exactly once, so the second, identical cell is served
//! entirely from the shelf. Before the pool, every repeated cell of the
//! repro harness malloc/freed GiBs of 1 MiB buffers.
//!
//! A counting global allocator tallies allocations at or above the block
//! size inside an explicit window. Counters cover all threads (the worker
//! pool's shard work included); this binary runs exactly one test, so
//! nothing else allocates concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use drc_cluster::ClusterSpec;
use drc_codes::CodeKind;
use drc_hdfs::DistributedFileSystem;

/// Block size of the measured deployment; also the counting threshold —
/// every payload, parity and rebuild buffer is exactly this large.
const BLOCK: u64 = 1024 * 1024;

// ---------------------------------------------------------------------------
// Counting allocator: tallies block-sized-or-larger allocations inside an
// explicit measurement window.
// ---------------------------------------------------------------------------

struct BigAllocCounter;

/// Whether the measurement window is open.
static TRACKING: AtomicBool = AtomicBool::new(false);
/// Allocations of at least `BLOCK` bytes since the window opened.
static BIG_ALLOCS: AtomicUsize = AtomicUsize::new(0);

fn open_window() {
    BIG_ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
}

/// Closes the window and returns the number of block-sized allocations.
fn close_window() -> usize {
    TRACKING.store(false, Ordering::SeqCst);
    BIG_ALLOCS.load(Ordering::SeqCst)
}

fn count(size: usize) {
    if size >= BLOCK as usize && TRACKING.load(Ordering::Relaxed) {
        BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

// SAFETY: `unsafe` is required by the `GlobalAlloc` contract; every call
// forwards to `System` with the caller's layout and pointer unchanged, so
// the contract is upheld verbatim and the counter touches no allocator state.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for BigAllocCounter {
    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        // SAFETY: same arguments the caller handed us.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same arguments the caller handed us.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        // SAFETY: same arguments the caller handed us.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: BigAllocCounter = BigAllocCounter;

/// One complete experiment cell: deploy, write, double-fail, repair. The
/// file system drop at the end hands every block-sized allocation back to
/// the payload pool.
fn run_cell(data: &[u8]) -> usize {
    let code = CodeKind::Pentagon;
    let built = code.build().unwrap();
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = BLOCK / (1024 * 1024);
    let mut fs = DistributedFileSystem::new(spec, 0xB00F);

    let id = fs.write_file("/pool/reuse", data, code).unwrap();
    fs.sync();
    let meta = fs.namenode().file(id).unwrap().clone();
    let victims: Vec<_> =
        meta.placement.stripe_hosts(0).unwrap()[..built.fault_tolerance()].to_vec();
    for &v in &victims {
        fs.fail_node_permanently(v);
    }
    let report = fs.repair_nodes(&victims).unwrap();
    assert_eq!(report.unrecoverable_stripes, 0);
    assert!(report.blocks_restored > 0);
    report.blocks_restored
}

/// The second run of an identical cell allocates no new block payloads:
/// every take is a pool hit against the buffers the first run recycled.
#[test]
fn second_identical_cell_allocates_no_block_payloads() {
    let code = CodeKind::Pentagon;
    let built = code.build().unwrap();
    let stripes = 2usize;
    let data: Vec<u8> = (0..stripes * built.data_blocks() * BLOCK as usize)
        .map(|i| (i * 31 + 7) as u8)
        .collect();

    // Start from a clean shelf so the hit/miss accounting below is this
    // test's own, then let the cold run populate it.
    drc_gf::bufpool::drain();
    run_cell(&data);
    assert!(
        drc_gf::bufpool::pooled_bytes() > 0,
        "dropping the cell's file system must recycle its payloads"
    );
    let misses_after_cold = drc_gf::bufpool::misses();

    open_window();
    run_cell(&data);
    let big_allocs = close_window();

    assert_eq!(
        big_allocs, 0,
        "a repeated cell must be served entirely from the payload pool"
    );
    assert_eq!(
        drc_gf::bufpool::misses(),
        misses_after_cold,
        "the warm run must not miss the pool"
    );
    assert!(
        drc_gf::bufpool::hits() > 0,
        "the warm run's takes must register as pool hits"
    );
}
