//! Property-based tests on the simulated file system: write/read round-trips
//! survive any tolerated failure pattern, repairs restore full redundancy,
//! and the trace-driven failure engine is byte-identical at every worker
//! pool width.

use drc_cluster::{ClusterSpec, FailureEvent, FailureEventKind, FailureTrace};
use drc_codes::CodeKind;
use drc_hdfs::{DistributedFileSystem, RepairReport};
use drc_sim::SimDuration;
use proptest::prelude::*;

fn paper_code() -> impl Strategy<Value = CodeKind> {
    prop_oneof![
        Just(CodeKind::TWO_REP),
        Just(CodeKind::THREE_REP),
        Just(CodeKind::Pentagon),
        Just(CodeKind::Heptagon),
        Just(CodeKind::HeptagonLocal),
    ]
}

fn tiny_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = 1;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever we write comes back identical, before failures, under the
    /// maximum tolerated number of permanent failures, and again after repair.
    #[test]
    fn roundtrip_with_failures_and_repair(
        code in paper_code(),
        // Up to ~3 stripes of 1 MiB blocks, with a ragged tail.
        size_kb in 1usize..2600,
        which in 0usize..100,
        seed in any::<u64>(),
    ) {
        let mut fs = DistributedFileSystem::new(tiny_spec(), seed);
        let data: Vec<u8> = (0..size_kb * 1024)
            .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes()[i % 8])
            .collect();
        let id = fs.write_file("/prop/file", &data, code).unwrap();
        prop_assert_eq!(fs.read_file(id).unwrap(), data.clone());

        // Fail `tolerance` nodes of a stripe chosen by `which`.
        let built = code.build().unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        let stripe = which % meta.stripes;
        let tolerance = built.fault_tolerance();
        let victims: Vec<_> = meta.placement.stripe_hosts(stripe).unwrap()[..tolerance].to_vec();
        for &v in &victims {
            fs.fail_node_permanently(v);
        }
        prop_assert_eq!(fs.read_file(id).unwrap(), data.clone());

        // Repair and verify again; redundancy is fully restored.
        let report = fs.repair_nodes(&victims).unwrap();
        prop_assert_eq!(report.unrecoverable_stripes, 0);
        prop_assert_eq!(fs.read_file(id).unwrap(), data);
        let expected_bytes =
            meta.stripes as u64 * built.stored_blocks() as u64 * meta.block_size;
        prop_assert_eq!(fs.stats().stored_bytes, expected_bytes);
    }

    /// Degraded-read traffic accounting never undercounts: reading a file with
    /// `t` failed nodes moves at least as many bytes as reading it healthy.
    #[test]
    fn degraded_reads_cost_at_least_healthy_reads(
        code in paper_code(),
        seed in any::<u64>(),
    ) {
        let data = vec![7u8; 2 * 1024 * 1024 + 333];
        let mut healthy = DistributedFileSystem::new(tiny_spec(), seed);
        let id = healthy.write_file("/f", &data, code).unwrap();
        let _ = healthy.read_file(id).unwrap();
        let healthy_bytes = healthy.stats().read_network_bytes;

        let mut degraded = DistributedFileSystem::new(tiny_spec(), seed);
        let id = degraded.write_file("/f", &data, code).unwrap();
        let built = code.build().unwrap();
        let meta = degraded.namenode().file(id).unwrap().clone();
        let victims: Vec<_> =
            meta.placement.stripe_hosts(0).unwrap()[..built.fault_tolerance()].to_vec();
        for &v in &victims {
            degraded.fail_node(v);
        }
        let _ = degraded.read_file(id).unwrap();
        prop_assert!(degraded.stats().read_network_bytes >= healthy_bytes);
    }

    /// The trace-driven failure engine (timed fail-stops, heartbeat
    /// detection, batched auto-repair) is byte-identical at worker-pool
    /// widths 1 and 4: traffic counters, repair reports and the virtual
    /// timeline never depend on `DRC_SIM_THREADS`.
    #[test]
    fn trace_driven_auto_repair_is_thread_count_invariant(
        code in paper_code(),
        size_kb in 512usize..2048,
        fail_ms in 0u64..2000,
        timeout_ms in 0u64..1000,
        seed in any::<u64>(),
    ) {
        let run = |threads: usize| -> (Vec<u8>, _, Vec<RepairReport>, _) {
            rayon::with_num_threads(threads, || {
                let mut fs = DistributedFileSystem::new(tiny_spec(), seed);
                let data: Vec<u8> = (0..size_kb * 1024)
                    .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes()[i % 8])
                    .collect();
                let id = fs.write_file("/trace/prop", &data, code).unwrap();
                fs.sync();
                let built = code.build().unwrap();
                let meta = fs.namenode().file(id).unwrap().clone();
                let tolerance = built.fault_tolerance().min(2);
                let victims =
                    meta.placement.stripe_hosts(0).unwrap()[..tolerance].to_vec();
                fs.set_detection_timeout(SimDuration(timeout_ms * 1_000_000));
                let at = fs.now() + SimDuration(fail_ms * 1_000_000);
                fs.schedule_trace(&FailureTrace::from_events(
                    victims
                        .iter()
                        .map(|&node| FailureEvent::at_ns(
                            at.0,
                            FailureEventKind::NodeDown { node },
                        ))
                        .collect(),
                ));
                let reports = fs.process_all_events().unwrap();
                let back = fs.read_file(id).unwrap();
                (back, fs.stats(), reports, fs.timeline().clone())
            })
        };
        let (data_1, stats_1, reports_1, timeline_1) = run(1);
        let (data_4, stats_4, reports_4, timeline_4) = run(4);
        prop_assert_eq!(data_1, data_4);
        prop_assert_eq!(stats_1, stats_4);
        prop_assert_eq!(reports_1, reports_4);
        prop_assert_eq!(timeline_1, timeline_4);
    }
}
