//! Property-based tests on the simulated file system: write/read round-trips
//! survive any tolerated failure pattern, and repairs restore full redundancy.

use drc_cluster::ClusterSpec;
use drc_codes::CodeKind;
use drc_hdfs::DistributedFileSystem;
use proptest::prelude::*;

fn paper_code() -> impl Strategy<Value = CodeKind> {
    prop_oneof![
        Just(CodeKind::TWO_REP),
        Just(CodeKind::THREE_REP),
        Just(CodeKind::Pentagon),
        Just(CodeKind::Heptagon),
        Just(CodeKind::HeptagonLocal),
    ]
}

fn tiny_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = 1;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever we write comes back identical, before failures, under the
    /// maximum tolerated number of permanent failures, and again after repair.
    #[test]
    fn roundtrip_with_failures_and_repair(
        code in paper_code(),
        // Up to ~3 stripes of 1 MiB blocks, with a ragged tail.
        size_kb in 1usize..2600,
        which in 0usize..100,
        seed in any::<u64>(),
    ) {
        let mut fs = DistributedFileSystem::new(tiny_spec(), seed);
        let data: Vec<u8> = (0..size_kb * 1024)
            .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes()[i % 8])
            .collect();
        let id = fs.write_file("/prop/file", &data, code).unwrap();
        prop_assert_eq!(fs.read_file(id).unwrap(), data.clone());

        // Fail `tolerance` nodes of a stripe chosen by `which`.
        let built = code.build().unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        let stripe = which % meta.stripes;
        let tolerance = built.fault_tolerance();
        let victims: Vec<_> = meta.placement.stripes()[stripe].nodes[..tolerance].to_vec();
        for &v in &victims {
            fs.fail_node_permanently(v);
        }
        prop_assert_eq!(fs.read_file(id).unwrap(), data.clone());

        // Repair and verify again; redundancy is fully restored.
        let report = fs.repair_nodes(&victims).unwrap();
        prop_assert_eq!(report.unrecoverable_stripes, 0);
        prop_assert_eq!(fs.read_file(id).unwrap(), data);
        let expected_bytes =
            meta.stripes as u64 * built.stored_blocks() as u64 * meta.block_size;
        prop_assert_eq!(fs.stats().stored_bytes, expected_bytes);
    }

    /// Degraded-read traffic accounting never undercounts: reading a file with
    /// `t` failed nodes moves at least as many bytes as reading it healthy.
    #[test]
    fn degraded_reads_cost_at_least_healthy_reads(
        code in paper_code(),
        seed in any::<u64>(),
    ) {
        let data = vec![7u8; 2 * 1024 * 1024 + 333];
        let mut healthy = DistributedFileSystem::new(tiny_spec(), seed);
        let id = healthy.write_file("/f", &data, code).unwrap();
        let _ = healthy.read_file(id).unwrap();
        let healthy_bytes = healthy.stats().read_network_bytes;

        let mut degraded = DistributedFileSystem::new(tiny_spec(), seed);
        let id = degraded.write_file("/f", &data, code).unwrap();
        let built = code.build().unwrap();
        let meta = degraded.namenode().file(id).unwrap().clone();
        let victims: Vec<_> =
            meta.placement.stripes()[0].nodes[..built.fault_tolerance()].to_vec();
        for &v in &victims {
            degraded.fail_node(v);
        }
        let _ = degraded.read_file(id).unwrap();
        prop_assert!(degraded.stats().read_network_bytes >= healthy_bytes);
    }
}
