//! Property-based tests on the simulated file system: write/read round-trips
//! survive any tolerated failure pattern, repairs restore full redundancy,
//! and the trace-driven failure engine is byte-identical at every worker
//! pool width.

use drc_cluster::{ClusterSpec, FailureEvent, FailureEventKind, FailureTrace, NodeId};
use drc_codes::CodeKind;
use drc_hdfs::{DistributedFileSystem, FsStats, RepairReport};
use drc_sim::{SimDuration, Timeline};
use proptest::prelude::*;

fn paper_code() -> impl Strategy<Value = CodeKind> {
    prop_oneof![
        Just(CodeKind::TWO_REP),
        Just(CodeKind::THREE_REP),
        Just(CodeKind::Pentagon),
        Just(CodeKind::Heptagon),
        Just(CodeKind::HeptagonLocal),
    ]
}

fn tiny_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::simulation_25(4);
    spec.block_size_mb = 1;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever we write comes back identical, before failures, under the
    /// maximum tolerated number of permanent failures, and again after repair.
    #[test]
    fn roundtrip_with_failures_and_repair(
        code in paper_code(),
        // Up to ~3 stripes of 1 MiB blocks, with a ragged tail.
        size_kb in 1usize..2600,
        which in 0usize..100,
        seed in any::<u64>(),
    ) {
        let mut fs = DistributedFileSystem::new(tiny_spec(), seed);
        let data: Vec<u8> = (0..size_kb * 1024)
            .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes()[i % 8])
            .collect();
        let id = fs.write_file("/prop/file", &data, code).unwrap();
        prop_assert_eq!(fs.read_file(id).unwrap(), data.clone());

        // Fail `tolerance` nodes of a stripe chosen by `which`.
        let built = code.build().unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        let stripe = which % meta.stripes;
        let tolerance = built.fault_tolerance();
        let victims: Vec<_> = meta.placement.stripe_hosts(stripe).unwrap()[..tolerance].to_vec();
        for &v in &victims {
            fs.fail_node_permanently(v);
        }
        prop_assert_eq!(fs.read_file(id).unwrap(), data.clone());

        // Repair and verify again; redundancy is fully restored.
        let report = fs.repair_nodes(&victims).unwrap();
        prop_assert_eq!(report.unrecoverable_stripes, 0);
        prop_assert_eq!(fs.read_file(id).unwrap(), data);
        let expected_bytes =
            meta.stripes as u64 * built.stored_blocks() as u64 * meta.block_size;
        prop_assert_eq!(fs.stats().stored_bytes, expected_bytes);
    }

    /// Degraded-read traffic accounting never undercounts: reading a file with
    /// `t` failed nodes moves at least as many bytes as reading it healthy.
    #[test]
    fn degraded_reads_cost_at_least_healthy_reads(
        code in paper_code(),
        seed in any::<u64>(),
    ) {
        let data = vec![7u8; 2 * 1024 * 1024 + 333];
        let mut healthy = DistributedFileSystem::new(tiny_spec(), seed);
        let id = healthy.write_file("/f", &data, code).unwrap();
        let _ = healthy.read_file(id).unwrap();
        let healthy_bytes = healthy.stats().read_network_bytes;

        let mut degraded = DistributedFileSystem::new(tiny_spec(), seed);
        let id = degraded.write_file("/f", &data, code).unwrap();
        let built = code.build().unwrap();
        let meta = degraded.namenode().file(id).unwrap().clone();
        let victims: Vec<_> =
            meta.placement.stripe_hosts(0).unwrap()[..built.fault_tolerance()].to_vec();
        for &v in &victims {
            degraded.fail_node(v);
        }
        let _ = degraded.read_file(id).unwrap();
        prop_assert!(degraded.stats().read_network_bytes >= healthy_bytes);
    }

    /// The trace-driven failure engine (timed fail-stops, heartbeat
    /// detection, batched auto-repair) is byte-identical at worker-pool
    /// widths 1 and 4: traffic counters, repair reports and the virtual
    /// timeline never depend on `DRC_SIM_THREADS`.
    #[test]
    fn trace_driven_auto_repair_is_thread_count_invariant(
        code in paper_code(),
        size_kb in 512usize..2048,
        fail_ms in 0u64..2000,
        timeout_ms in 0u64..1000,
        seed in any::<u64>(),
    ) {
        let run = |threads: usize| -> (Vec<u8>, _, Vec<RepairReport>, _) {
            rayon::with_num_threads(threads, || {
                let mut fs = DistributedFileSystem::new(tiny_spec(), seed);
                let data: Vec<u8> = (0..size_kb * 1024)
                    .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes()[i % 8])
                    .collect();
                let id = fs.write_file("/trace/prop", &data, code).unwrap();
                fs.sync();
                let built = code.build().unwrap();
                let meta = fs.namenode().file(id).unwrap().clone();
                let tolerance = built.fault_tolerance().min(2);
                let victims =
                    meta.placement.stripe_hosts(0).unwrap()[..tolerance].to_vec();
                fs.set_detection_timeout(SimDuration(timeout_ms * 1_000_000));
                let at = fs.now() + SimDuration(fail_ms * 1_000_000);
                fs.schedule_trace(&FailureTrace::from_events(
                    victims
                        .iter()
                        .map(|&node| FailureEvent::at_ns(
                            at.0,
                            FailureEventKind::NodeDown { node },
                        ))
                        .collect(),
                ));
                let reports = fs.process_all_events().unwrap();
                let back = fs.read_file(id).unwrap();
                (back, fs.stats(), reports, fs.timeline().clone())
            })
        };
        let (data_1, stats_1, reports_1, timeline_1) = run(1);
        let (data_4, stats_4, reports_4, timeline_4) = run(4);
        prop_assert_eq!(data_1, data_4);
        prop_assert_eq!(stats_1, stats_4);
        prop_assert_eq!(reports_1, reports_4);
        prop_assert_eq!(timeline_1, timeline_4);
    }

    /// Chunked streaming repair is byte-identical to the monolithic path:
    /// restored file contents, `FsStats` and everything in the
    /// `RepairReport` except the completion instant never depend on the
    /// chunk size — and the streamed schedule never finishes *later* than
    /// the serial whole-block baseline. A chunk at least as large as the
    /// block degenerates to the monolithic schedule exactly, timeline
    /// included.
    #[test]
    fn chunked_repair_is_byte_identical_to_monolithic(
        code in paper_code(),
        size_kb in 512usize..2600,
        which in 0usize..100,
        seed in any::<u64>(),
    ) {
        let serial = repair_scenario(code, size_kb, which, seed, u64::MAX, 4);
        // 300_000 does not divide the 1 MiB block; 256 KiB does; 1 MiB
        // equals it (degenerate single chunk).
        for chunk in [300_000u64, 256 * 1024, 1 << 20] {
            let chunked = repair_scenario(code, size_kb, which, seed, chunk, 4);
            prop_assert_eq!(&chunked.0, &serial.0, "restored bytes, chunk={}", chunk);
            prop_assert_eq!(&chunked.1, &serial.1, "stats, chunk={}", chunk);
            prop_assert_eq!(
                chunked.2.stripes_repaired, serial.2.stripes_repaired,
                "stripes, chunk={}", chunk
            );
            prop_assert_eq!(
                chunked.2.blocks_restored, serial.2.blocks_restored,
                "blocks, chunk={}", chunk
            );
            prop_assert_eq!(
                chunked.2.network_bytes, serial.2.network_bytes,
                "traffic, chunk={}", chunk
            );
            prop_assert_eq!(
                chunked.2.unrecoverable_stripes, serial.2.unrecoverable_stripes
            );
            prop_assert_eq!(chunked.2.issued_at, serial.2.issued_at);
            // Each chunk's service time rounds up to a whole nanosecond per
            // resource, so a chunked schedule can trail the monolithic one by
            // a few tens of ns of accumulated rounding — never more. Real
            // pipelining effects are tens of *milliseconds*; 1 µs of slack
            // separates rounding noise from a genuine regression.
            let rounding = drc_sim::SimDuration(1_000);
            prop_assert!(
                chunked.2.completed_at <= serial.2.completed_at + rounding,
                "streaming must never be slower: chunk={} {:?} vs {:?}",
                chunk, chunked.2.completed_at, serial.2.completed_at
            );
            if chunk >= 1 << 20 {
                // Chunk >= block: exactly the monolithic schedule.
                prop_assert_eq!(chunked.2, serial.2.clone());
                prop_assert_eq!(chunked.3, serial.3.clone());
            }
        }
        // And the chunked path itself is pool-width invariant.
        let w1 = repair_scenario(code, size_kb, which, seed, 256 * 1024, 1);
        let w4 = repair_scenario(code, size_kb, which, seed, 256 * 1024, 4);
        prop_assert_eq!(w1.0, w4.0);
        prop_assert_eq!(w1.1, w4.1);
        prop_assert_eq!(w1.2, w4.2);
        prop_assert_eq!(w1.3, w4.3);
    }
}

/// One write → permanent-failure → repair → read-back scenario at a given
/// streaming chunk size and worker-pool width.
fn repair_scenario(
    code: CodeKind,
    size_kb: usize,
    which: usize,
    seed: u64,
    chunk: u64,
    threads: usize,
) -> (Vec<u8>, FsStats, RepairReport, Timeline) {
    rayon::with_num_threads(threads, || {
        let mut fs = DistributedFileSystem::new(tiny_spec(), seed);
        fs.set_repair_chunk_bytes(chunk);
        let data: Vec<u8> = (0..size_kb * 1024)
            .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes()[i % 8])
            .collect();
        let id = fs.write_file("/diff/chunk", &data, code).unwrap();
        fs.sync();
        let built = code.build().unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        let stripe = which % meta.stripes;
        let victims: Vec<_> =
            meta.placement.stripe_hosts(stripe).unwrap()[..built.fault_tolerance()].to_vec();
        for &v in &victims {
            fs.fail_node_permanently(v);
        }
        let report = fs.repair_nodes(&victims).unwrap();
        let back = fs.read_file(id).unwrap();
        (back, fs.stats(), report, fs.timeline().clone())
    })
}

/// The repair's fetch set is plan-driven: for every code, the bytes the
/// DataNodes record as served during a repair equal the plan-accounted
/// `RepairReport::network_bytes` exactly — modeled and accounted traffic
/// agree.
#[test]
fn repair_served_bytes_match_the_plan_for_every_code() {
    for code in [
        CodeKind::TWO_REP,
        CodeKind::THREE_REP,
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
        CodeKind::RAID_M_10_9,
        CodeKind::ReedSolomon { data: 6, parity: 3 },
    ] {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 0xACC0);
        let built = code.build().unwrap();
        let data = vec![42u8; 2 * built.data_blocks() * 1024 * 1024 + 777];
        let id = fs.write_file("/plan/traffic", &data, code).unwrap();
        fs.sync();
        let meta = fs.namenode().file(id).unwrap().clone();
        let victims: Vec<_> =
            meta.placement.stripe_hosts(0).unwrap()[..built.fault_tolerance()].to_vec();
        for &v in &victims {
            fs.fail_node_permanently(v);
        }
        let served_before: u64 = (0..fs.cluster().spec().data_nodes)
            .filter_map(|n| fs.datanode(NodeId(n)))
            .map(|dn| dn.bytes_served())
            .sum();
        let report = fs.repair_nodes(&victims).unwrap();
        let served: u64 = (0..fs.cluster().spec().data_nodes)
            .filter_map(|n| fs.datanode(NodeId(n)))
            .map(|dn| dn.bytes_served())
            .sum::<u64>()
            - served_before;
        assert_eq!(
            served, report.network_bytes,
            "{code}: served bytes must equal the plan-accounted repair traffic"
        );
        assert!(report.network_bytes > 0, "{code}: a repair moves bytes");
        assert_eq!(fs.read_file(id).unwrap(), data, "{code}: bytes restored");
    }
}
