//! The file-system facade and the RaidNode, rebuilt on the event-driven
//! substrate.
//!
//! [`DistributedFileSystem`] plays the role of the whole HDFS + HDFS-RAID
//! deployment of §4: a NameNode for metadata, one DataNode per cluster node
//! for block storage, a client write/read path that stripes and encodes files
//! with a chosen [`CodeKind`], and a RaidNode that repairs lost replicas after
//! node failures.
//!
//! Repairs and degraded reads are *planned* by the code (so the network cost
//! follows the paper's partial-parity accounting exactly) and then *executed*
//! by decoding from surviving replicas, so every repaired byte is verified
//! against real data. The distinction matters for the heptagon-local global
//! parities, whose partial sums are GF-weighted rather than plain XORs.
//!
//! # Virtual time and overlap
//!
//! Every operation is issued at the file system's [`VirtualClock`] and
//! executed as timed events against the modeled resources: each DataNode's
//! disk, each node's NIC and the shared LAN fabric. Operations issued
//! without advancing the clock **overlap in virtual time** — a RaidNode
//! repair pass and a batch of degraded reads issued back-to-back contend for
//! the same disks and links instead of executing serially, which is exactly
//! the contention the paper's experiments measure. Call
//! [`DistributedFileSystem::sync`] to advance the clock past everything in
//! flight; inspect [`DistributedFileSystem::timeline`] for the per-phase
//! record (and [`Timeline::overlap`] for how long two kinds of work ran
//! concurrently).
//!
//! The resources themselves live in one cluster-wide
//! [`drc_sim::ClusterNet`], shared by every DataNode and exposed through
//! [`DistributedFileSystem::cluster_net`]: hand it to the MapReduce
//! engine's `run_job_on` and a job's shuffle fetches queue on the same NICs
//! and fabric as a concurrent repair pass (the `shuffle_contention`
//! experiment measures exactly that).
//!
//! # Trace-driven failures, detection and auto-repair
//!
//! Failures need not be static configuration: schedule a
//! [`drc_cluster::FailureTrace`] with
//! [`DistributedFileSystem::schedule_trace`] and drive it with
//! [`DistributedFileSystem::process_events_until`]. Nodes fail-stop at their
//! trace instants, the NameNode misses their heartbeats, and — one
//! [`DistributedFileSystem::detection_timeout`] later — declares them dead
//! and executes the enqueued repairs as timed events on the same shared
//! [`ClusterNet`] everything else contends on. Failure intervals are
//! half-open like [`Timeline`] phases: a node down at `t` and restored at
//! `t'` is unavailable over `[t, t')`, and the detection-lag window
//! `[t, t + timeout)` appears on the timeline as a `detection-lag:` phase.
//! A trace with every failure at t = 0 processed under a zero detection
//! timeout reproduces the static model (`fail_node_permanently` +
//! [`DistributedFileSystem::repair_nodes`]) byte-for-byte.
//!
//! Byte accounting is independent of the virtual clock and of the worker
//! pool's thread count: `DRC_SIM_THREADS=1` and a 32-thread run report
//! identical network-byte numbers.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use bytes::Bytes;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use drc_cluster::{
    Cluster, ClusterSpec, FailureEventKind, FailureTrace, NodeId, PlacementMap, PlacementPolicy,
};
use drc_codes::{CodeKind, ErasureCode, ReadSource, StripeEncoder, StripeReconstructor};
use drc_gf::slice::{matrix_mul_batch, MatrixMulTask};
use drc_sim::{
    chunk_sizes, ClusterNet, EventQueue, Schedule, SimDuration, SimTime, Timeline, VirtualClock,
};

use crate::block::BlockKey;
use crate::datanode::DataNode;
use crate::namenode::{FileId, FileMetadata, NameNode};
use crate::HdfsError;

/// Aggregate statistics of the file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FsStats {
    /// Number of files.
    pub files: usize,
    /// Total stored block replicas across all DataNodes.
    pub stored_blocks: usize,
    /// Total bytes stored across all DataNodes (including parity and replicas).
    pub stored_bytes: u64,
    /// Bytes moved over the network by writes.
    pub write_network_bytes: u64,
    /// Bytes moved over the network by reads (including degraded reads).
    pub read_network_bytes: u64,
    /// Bytes moved over the network by repairs.
    pub repair_network_bytes: u64,
}

/// The outcome of one RaidNode repair pass.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RepairReport {
    /// Stripes that had at least one replica restored.
    pub stripes_repaired: usize,
    /// Block replicas written back to replacement nodes.
    pub blocks_restored: usize,
    /// Network bytes consumed by the repairs (per the codes' repair plans).
    pub network_bytes: u64,
    /// Stripes that could not be repaired (failures beyond code tolerance).
    pub unrecoverable_stripes: usize,
    /// The virtual instant the pass was issued.
    pub issued_at: SimTime,
    /// The virtual instant the last stripe finished repairing (equals
    /// `issued_at` when there was nothing to do).
    pub completed_at: SimTime,
}

/// The default heartbeat detection timeout: the NameNode declares a silent
/// node dead (and enqueues its repairs) this much virtual time after its
/// heartbeats stop. Three seconds is the real HDFS heartbeat *interval*;
/// the production dead-node interval (10.5 minutes) would dwarf the
/// second-scale virtual experiments, so the simulated NameNode detects at
/// heartbeat granularity. Configure per instance with
/// [`DistributedFileSystem::set_detection_timeout`].
pub const DEFAULT_DETECTION_TIMEOUT: SimDuration = SimDuration(3_000_000_000);

/// The default streaming granularity for repairs and degraded reads: blocks
/// move and rebuild in 1 MiB chunks, so a stripe's store traffic overlaps
/// the next chunk's helper fetches instead of waiting for whole blocks.
/// Configure per instance with
/// [`DistributedFileSystem::set_repair_chunk_bytes`]; `u64::MAX` (or any
/// value ≥ the block size) degenerates to the monolithic whole-block
/// schedule, which is the serial baseline the `repair_pipeline` experiment
/// compares against.
pub const DEFAULT_REPAIR_CHUNK_BYTES: u64 = 1 << 20;

/// How many stripes' rebuild jobs are batched into one fused GF pass.
///
/// The streaming repair path defers each stripe's linear combinations and
/// flushes them through [`drc_gf::slice::matrix_mul_batch`] in waves of this
/// many stripes, so the persistent worker pool sees one large job instead of
/// per-stripe slivers (small stripes alone never clear the pool's engagement
/// threshold). The outputs are byte-identical at any wave size or pool
/// width; this only shapes scheduling.
const REBUILD_WAVE_STRIPES: usize = 8;

/// One stripe's deferred GF rebuild: the solved reconstruction, borrowed
/// source handles, output buffers and where each rebuilt block must land.
/// Accumulated by the repair pass and flushed in cross-stripe waves (see
/// [`REBUILD_WAVE_STRIPES`]).
struct PendingRebuild {
    rec: StripeReconstructor,
    sources: Vec<Bytes>,
    outs: Vec<Vec<u8>>,
    /// Per target (parallel to `rec.targets()`): every replica slot the
    /// rebuilt block is stored into.
    dests: Vec<Vec<(BlockKey, NodeId)>>,
}

/// One stripe's deferred replacement-store schedule: each chunk `ci` of the
/// rebuilt blocks is pushed onto every destination at `fetch_done[ci]` (the
/// instant that chunk's slowest helper fetch lands).
///
/// The repair pass issues *every* stripe's fetch trains first and only then
/// issues stores, globally sorted by start time: resources grant FIFO in
/// issuance order, so issuing one stripe's late store windows before another
/// stripe's epoch-issued fetches would queue those fetches behind stores
/// that, in virtual time, happen after them.
struct PendingStores {
    file: FileId,
    stripe: usize,
    plan_bytes: u64,
    sizes: Vec<u64>,
    fetch_done: Vec<SimTime>,
    dests: Vec<NodeId>,
}

/// A timed event the file system's failure engine executes: either a
/// failure-trace event replayed at its instant, or the detection boundary
/// of a silent node.
#[derive(Debug, Clone, Copy)]
enum FsEvent {
    /// A [`FailureTrace`] event due at its trace instant.
    Trace(FailureEventKind),
    /// The detection timeout of a silent node elapses.
    Detect(NodeId),
}

/// The simulated HDFS deployment.
pub struct DistributedFileSystem {
    cluster: Cluster,
    namenode: NameNode,
    datanodes: BTreeMap<NodeId, DataNode>,
    code_cache: BTreeMap<CodeKind, Arc<dyn ErasureCode>>,
    /// Reusable parity scratch: stripe encodes allocate nothing in steady
    /// state (the write path and the RaidNode encode stripe after stripe).
    encoder: StripeEncoder,
    /// The cluster-wide resource model (per-node disks and NICs plus the
    /// shared LAN fabric). The DataNodes hold clones of this `Arc`, and
    /// [`DistributedFileSystem::cluster_net`] hands the same model to other
    /// layers (the MapReduce engine's shuffle), so all traffic queues on the
    /// same links.
    net: Arc<ClusterNet>,
    clock: VirtualClock,
    timeline: Timeline,
    rng: ChaCha8Rng,
    write_network_bytes: u64,
    read_network_bytes: u64,
    repair_network_bytes: u64,
    /// The failure engine's pending timed events (trace events and
    /// detection boundaries), drained by
    /// [`DistributedFileSystem::process_events_until`].
    events: EventQueue<FsEvent>,
    /// How long after a node goes silent the NameNode declares it dead.
    detection_timeout: SimDuration,
    /// Streaming granularity for repair and degraded-read transfers (see
    /// [`DEFAULT_REPAIR_CHUNK_BYTES`]).
    repair_chunk_bytes: u64,
    /// Every auto-repair pass the failure engine has executed, in detection
    /// order.
    auto_repairs: Vec<RepairReport>,
}

impl std::fmt::Debug for DistributedFileSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedFileSystem")
            .field("nodes", &self.cluster.len())
            .field("files", &self.namenode.len())
            .field("now", &self.clock.now())
            .finish()
    }
}

impl DistributedFileSystem {
    /// Creates a file system over a fresh cluster with the given spec.
    pub fn new(spec: ClusterSpec, seed: u64) -> Self {
        let net = Arc::new(ClusterNet::new(&spec));
        let cluster = Cluster::new(spec);
        let datanodes = cluster
            .nodes()
            .map(|n| (n, DataNode::new(n, Arc::clone(&net))))
            .collect();
        DistributedFileSystem {
            cluster,
            namenode: NameNode::new(),
            datanodes,
            code_cache: BTreeMap::new(),
            encoder: StripeEncoder::new(),
            net,
            clock: VirtualClock::new(),
            timeline: Timeline::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            write_network_bytes: 0,
            read_network_bytes: 0,
            repair_network_bytes: 0,
            events: EventQueue::new(),
            detection_timeout: DEFAULT_DETECTION_TIMEOUT,
            repair_chunk_bytes: DEFAULT_REPAIR_CHUNK_BYTES,
            auto_repairs: Vec::new(),
        }
    }

    /// The underlying cluster state.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The NameNode (metadata) view.
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// Access to a DataNode (for inspection in tests and experiments).
    pub fn datanode(&self, node: NodeId) -> Option<&DataNode> {
        self.datanodes.get(&node)
    }

    /// The cluster-wide resource model this file system's traffic runs on.
    ///
    /// Hand the same `Arc` to other layers (e.g. the MapReduce engine's
    /// `run_job_on`) to make their traffic contend with writes, repairs and
    /// degraded reads for the same per-node disks, NICs and the shared LAN
    /// fabric — the contention the paper's experiments are about.
    pub fn cluster_net(&self) -> &Arc<ClusterNet> {
        &self.net
    }

    /// The current virtual instant operations are issued at.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The per-phase virtual-time record of everything executed so far.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Advances the clock past every operation in flight and returns the new
    /// instant. Operations issued *before* a `sync` overlap in virtual time;
    /// operations issued *after* start once the earlier ones are done.
    pub fn sync(&mut self) -> SimTime {
        let end = self.timeline.end();
        self.clock.advance_to(end);
        self.clock.now()
    }

    fn code(&mut self, kind: CodeKind) -> Result<Arc<dyn ErasureCode>, HdfsError> {
        if let Some(c) = self.code_cache.get(&kind) {
            return Ok(Arc::clone(c));
        }
        let built = kind.build()?;
        self.code_cache.insert(kind, Arc::clone(&built));
        Ok(built)
    }

    /// Writes `data` as a new file protected by `code`, striping it into
    /// blocks of the cluster's configured block size.
    ///
    /// Every replica store is a timed event (client → node NIC → disk over
    /// the shared fabric); stores to different nodes overlap.
    ///
    /// # Errors
    ///
    /// Returns an error if the name exists, the data is empty, or the code
    /// does not fit the cluster.
    pub fn write_file(
        &mut self,
        name: &str,
        data: &[u8],
        code_kind: CodeKind,
    ) -> Result<FileId, HdfsError> {
        if data.is_empty() {
            return Err(HdfsError::InvalidRequest {
                reason: "cannot write an empty file".to_string(),
            });
        }
        let code = self.code(code_kind)?;
        let block_size = self.cluster.spec().block_size_bytes() as usize;
        let k = code.data_blocks();
        let content_blocks = data.len().div_ceil(block_size);
        let stripes = content_blocks.div_ceil(k);
        let placement = PlacementMap::place(
            code.as_ref(),
            &self.cluster,
            stripes,
            PlacementPolicy::Random,
            &mut self.rng,
        )?;
        let issued = self.clock.now();
        let id = self.namenode.register(
            name,
            data.len() as u64,
            block_size as u64,
            code_kind,
            k,
            issued,
            placement,
        )?;
        let meta = self.namenode.file(id)?.clone();

        // Stripe, encode and distribute.
        let mut bytes_moved = 0u64;
        let mut write_end = issued;
        for stripe in 0..stripes {
            let mut stripe_data: Vec<Vec<u8>> = Vec::with_capacity(k);
            for b in 0..k {
                let index = stripe * k + b;
                let start = index * block_size;
                // Pooled and pre-zeroed: a short tail block keeps its zero
                // padding without an explicit fill.
                let mut block = drc_gf::bufpool::take(block_size);
                if start < data.len() {
                    let end = (start + block_size).min(data.len());
                    block[..end - start].copy_from_slice(&data[start..end]);
                }
                stripe_data.push(block);
            }
            // Shard-parallel encode into pooled scratch reused across
            // stripes (and across files).
            let parities = self.encoder.encode(code.as_ref(), &stripe_data)?;
            // The parity scratch is reused next stripe, so parities are
            // copied out — into pooled buffers; the data blocks move into
            // their `Bytes` handles without a copy. Every payload returns
            // to the pool when its last DataNode replica drops.
            let parity_payloads: Vec<Bytes> = parities
                .iter()
                .map(|p| {
                    let mut buf = drc_gf::bufpool::take(p.len());
                    buf.copy_from_slice(p);
                    Bytes::from(buf)
                })
                .collect();
            let data_payloads: Vec<Bytes> = stripe_data.into_iter().map(Bytes::from).collect();
            for block_index in 0..code.distinct_blocks() {
                let key = BlockKey::new(id, stripe, block_index);
                let content = if block_index < k {
                    data_payloads[block_index].clone()
                } else {
                    parity_payloads[block_index - k].clone()
                };
                for &node in &meta.block_locations(stripe, block_index)? {
                    self.write_network_bytes += content.len() as u64;
                    bytes_moved += content.len() as u64;
                    let dn = self
                        .datanodes
                        .get(&node)
                        .ok_or(HdfsError::DataNodeUnavailable { node: node.0 })?;
                    let res = dn.store_timed(key, content.clone(), issued, self.net.fabric());
                    write_end = write_end.max(res.end);
                }
            }
        }
        self.timeline
            .record(format!("write:{name}"), issued, write_end, bytes_moved);
        Ok(id)
    }

    /// Reads back a whole file, transparently performing degraded reads for
    /// blocks whose replicas are all unreachable.
    ///
    /// All block reads are issued at the same virtual instant (HDFS clients
    /// fetch stripes in parallel); reads hitting the same disk queue behind
    /// each other.
    ///
    /// # Errors
    ///
    /// Returns [`HdfsError::BlockUnavailable`] if a block cannot be read even
    /// with reconstruction.
    pub fn read_file(&mut self, id: FileId) -> Result<Vec<u8>, HdfsError> {
        let meta = self.namenode.file(id)?.clone();
        let issued = self.clock.now();
        let bytes_before = self.read_network_bytes;
        let degraded_before = self.timeline.bytes_with_prefix("degraded-read:");
        let mut out = Vec::with_capacity(meta.size as usize);
        let mut read_end = issued;
        for key in meta.content_block_keys() {
            let (block, done) = self.read_block_at(&meta, key.stripe, key.block, issued)?;
            read_end = read_end.max(done);
            out.extend_from_slice(&block);
        }
        out.truncate(meta.size as usize);
        // Phase bytes are disjoint: reconstruction traffic is already on the
        // `degraded-read:` phases this read spawned, so the aggregate phase
        // carries only the replica-read bytes (summing both prefixes equals
        // the stats counter delta).
        let degraded_bytes = self.timeline.bytes_with_prefix("degraded-read:") - degraded_before;
        self.timeline.record(
            format!("read:f{}", id.0),
            issued,
            read_end,
            self.read_network_bytes - bytes_before - degraded_bytes,
        );
        Ok(out)
    }

    /// Reads one data block of a file, using a surviving replica when possible
    /// and a degraded read otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`HdfsError::BlockUnavailable`] if neither a replica nor a
    /// reconstruction is possible.
    pub fn read_block(
        &mut self,
        meta: &FileMetadata,
        stripe: usize,
        block: usize,
    ) -> Result<Bytes, HdfsError> {
        let issued = self.clock.now();
        let bytes_before = self.read_network_bytes;
        let degraded_before = self.timeline.bytes_with_prefix("degraded-read:");
        let (data, done) = self.read_block_at(meta, stripe, block, issued)?;
        // As in `read_file`: reconstruction bytes live on the degraded-read
        // phase; this phase carries only replica-read traffic.
        let degraded_bytes = self.timeline.bytes_with_prefix("degraded-read:") - degraded_before;
        self.timeline.record(
            format!("read:f{}:s{stripe}:b{block}", meta.id.0),
            issued,
            done,
            self.read_network_bytes - bytes_before - degraded_bytes,
        );
        Ok(data)
    }

    /// The timed read path: returns the block plus its virtual completion.
    fn read_block_at(
        &mut self,
        meta: &FileMetadata,
        stripe: usize,
        block: usize,
        issued: SimTime,
    ) -> Result<(Bytes, SimTime), HdfsError> {
        let key = BlockKey::new(meta.id, stripe, block);
        // Fast path: any up replica.
        for &node in &meta.block_locations(stripe, block)? {
            if !self.cluster.is_up(node) {
                continue;
            }
            if let Some(dn) = self.datanodes.get(&node) {
                if let Some((data, res)) = dn.read_timed(&key, issued, self.net.fabric()) {
                    self.read_network_bytes += data.len() as u64;
                    return Ok((data, res.end));
                }
            }
        }
        // Degraded read: plan with the code, then execute by decoding.
        let code = self.code(meta.code)?;
        let stripe_nodes = meta.placement.stripe_hosts(stripe)?;
        // A stripe-local node is unusable if it is down or has lost every
        // block of this stripe (a wiped, not-yet-repaired node).
        let down_local: BTreeSet<usize> = stripe_nodes
            .iter()
            .enumerate()
            .filter(|(local, n)| {
                !self.cluster.is_up(**n)
                    || code
                        .node_blocks(*local)
                        .iter()
                        .all(|&b| !self.datanodes[*n].contains(&BlockKey::new(meta.id, stripe, b)))
            })
            .map(|(i, _)| i)
            .collect();
        let plan = code.degraded_read_plan(block, &down_local).map_err(|e| {
            HdfsError::BlockUnavailable {
                block: key,
                reason: e.to_string(),
            }
        })?;
        let bytes = plan.network_blocks as u64 * meta.block_size;
        self.read_network_bytes += bytes;
        // Execute exactly the plan's fetches (so modeled and accounted
        // traffic agree), each as a chunk-streamed train of timed pulls on
        // the sender's disk + NIC + fabric.
        let senders: Vec<NodeId> = match &plan.source {
            ReadSource::Local { .. } => Vec::new(),
            ReadSource::Remote { node } => vec![stripe_nodes[*node]],
            ReadSource::PartialParities { helpers } => {
                helpers.iter().map(|&h| stripe_nodes[h]).collect()
            }
            ReadSource::Decode { fetches } => {
                fetches.iter().map(|&(n, _)| stripe_nodes[n]).collect()
            }
        };
        let sizes: Vec<u64> = chunk_sizes(meta.block_size, self.repair_chunk_bytes).collect();
        let mut done = issued;
        for &sender in &senders {
            if let Some(dn) = self.datanodes.get(&sender) {
                dn.record_served(meta.block_size);
            }
            let io = self.net.node(sender);
            let ends = drc_sim::pull_train(issued, io, self.net.fabric(), &sizes);
            if let Some(&end) = ends.last() {
                done = done.max(end);
            }
        }
        // Rebuild the one requested block from surviving handles: the
        // plan models the traffic; the reconstructor produces the bytes
        // (exact GF algebra, so the content matches what a full decode
        // would return).
        let payloads = self.gather_stripe_payloads(meta, stripe, code.as_ref())?;
        let content =
            if let Some(data) = payloads.get(&block) {
                data.clone()
            } else {
                let available: BTreeSet<usize> = payloads.keys().copied().collect();
                let rec = StripeReconstructor::plan(code.structure(), &available, &[block])
                    .map_err(|e| HdfsError::BlockUnavailable {
                        block: key,
                        reason: e.to_string(),
                    })?;
                let sources: Vec<Bytes> = rec
                    .sources()
                    .iter()
                    .map(|&b| payloads[&b].clone())
                    .collect();
                let mut outs = vec![drc_gf::bufpool::take(meta.block_size as usize)];
                rec.reconstruct_into(&sources, &mut outs);
                // drc-lint: allow(panic-hygiene): `outs` is the one-element vec
                // constructed two lines above.
                Bytes::from(outs.pop().expect("one target"))
            };
        self.timeline.record(
            format!("degraded-read:f{}:s{stripe}:b{block}", meta.id.0),
            issued,
            done,
            bytes,
        );
        Ok((content, done))
    }

    /// Collects a reference-counted handle to one live replica of every
    /// distinct block of a stripe that still has one.
    ///
    /// Accounting-neutral by design ([`DataNode::peek`]): the repair and
    /// degraded-read paths model traffic from their *plans* (and charge the
    /// senders with [`DataNode::record_served`]), so grabbing the payload
    /// handles must not count as served bytes — and, the handles being
    /// shared `Bytes`, must not copy block data either.
    fn gather_stripe_payloads(
        &self,
        meta: &FileMetadata,
        stripe: usize,
        code: &dyn ErasureCode,
    ) -> Result<BTreeMap<usize, Bytes>, HdfsError> {
        let mut payloads = BTreeMap::new();
        for block in 0..code.distinct_blocks() {
            let key = BlockKey::new(meta.id, stripe, block);
            for &node in &meta.block_locations(stripe, block)? {
                if !self.cluster.is_up(node) {
                    continue;
                }
                if let Some(data) = self.datanodes.get(&node).and_then(|dn| dn.peek(&key)) {
                    payloads.insert(block, data);
                    break;
                }
            }
        }
        Ok(payloads)
    }

    /// Marks a node as down (transient failure: its data stays on disk).
    pub fn fail_node(&mut self, node: NodeId) {
        self.cluster.set_down(node);
        self.net.take_node_down(node);
    }

    /// Marks a node as permanently failed: it is down and its blocks are gone.
    pub fn fail_node_permanently(&mut self, node: NodeId) {
        self.cluster.set_down(node);
        if let Some(dn) = self.datanodes.get(&node) {
            dn.wipe();
        }
        self.net.take_node_down(node);
    }

    /// Brings a transiently-failed node back up (its data is intact).
    pub fn restore_node(&mut self, node: NodeId) {
        self.cluster.set_up(node);
        self.net.restore_node(self.clock.now(), node);
        self.namenode.heartbeat_restored(node);
    }

    /// How long after a node's heartbeats stop the NameNode declares it
    /// dead and the failure engine launches the auto-repair.
    pub fn detection_timeout(&self) -> SimDuration {
        self.detection_timeout
    }

    /// Sets the heartbeat detection timeout (see
    /// [`DEFAULT_DETECTION_TIMEOUT`]). A zero timeout detects failures the
    /// instant they occur — the configuration under which a t = 0 trace
    /// reproduces the old static failure model byte-for-byte.
    ///
    /// Detection always honours the timeout in force when the boundary
    /// *fires*: raising the timeout pushes already-queued boundaries out
    /// (they reschedule to `silent_since + new_timeout` instead of firing
    /// early), while lowering it cannot accelerate a boundary that was
    /// already queued further out — it takes effect at that boundary's
    /// original instant at the earliest.
    pub fn set_detection_timeout(&mut self, timeout: SimDuration) {
        self.detection_timeout = timeout;
    }

    /// The streaming granularity of repair and degraded-read transfers.
    pub fn repair_chunk_bytes(&self) -> u64 {
        self.repair_chunk_bytes
    }

    /// Sets the streaming chunk size (see [`DEFAULT_REPAIR_CHUNK_BYTES`]).
    ///
    /// Every repair/degraded-read transfer is issued as a train of
    /// chunk-sized reservations, so a stripe's replacement stores begin the
    /// moment the first chunk's helper fetches land — overlapping the
    /// remaining fetches — instead of waiting for whole blocks. `u64::MAX`
    /// (or anything ≥ the block size; `0` is treated the same) reproduces
    /// the monolithic whole-block schedule. Restored bytes and traffic
    /// accounting are identical at every chunk size; only the virtual-time
    /// schedule changes.
    pub fn set_repair_chunk_bytes(&mut self, chunk: u64) {
        self.repair_chunk_bytes = chunk;
    }

    /// Schedules a failure trace for the engine to replay: every trace event
    /// becomes a timed event at its instant, and every `NodeDown` (or
    /// rack-burst member) additionally schedules its detection boundary one
    /// [`DistributedFileSystem::detection_timeout`] later. Nothing executes
    /// until [`DistributedFileSystem::process_events_until`] drains the
    /// queue.
    ///
    /// Traces compose: scheduling a second trace merges its events into the
    /// pending queue in time order. The past cannot be rewritten, though —
    /// an event whose instant precedes what the engine has already
    /// processed is clamped to the processing frontier and fires there
    /// (the [`EventQueue`]'s documented clamp), so inject traces before
    /// draining past their instants if exact timing matters.
    pub fn schedule_trace(&mut self, trace: &FailureTrace) {
        self.events.extend(
            trace
                .events()
                .iter()
                .map(|ev| Schedule::at(SimTime(ev.at_ns), FsEvent::Trace(ev.kind))),
        );
    }

    /// The instant of the next pending failure-engine event, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Number of pending failure-engine events (trace events plus detection
    /// boundaries).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Every auto-repair pass the failure engine has executed so far, in
    /// detection order.
    pub fn auto_repair_reports(&self) -> &[RepairReport] {
        &self.auto_repairs
    }

    /// Drives the failure engine up to (and including) `horizon`: replays
    /// every due trace event, declares silent nodes dead once their
    /// detection timeout elapses, and executes the enqueued repairs as
    /// timed events contending on the shared [`ClusterNet`].
    ///
    /// Failure semantics:
    ///
    /// * `NodeDown` / `RackDown` — the nodes fail-stop and their disks are
    ///   wiped (the repair-relevant permanent failure); the NameNode starts
    ///   missing their heartbeats. The outage interval is half-open: the
    ///   node is dark *at* the event instant.
    /// * Detection — `detection_timeout` later, still-silent nodes are
    ///   declared dead; a `detection-lag:node<N>` phase (zero bytes) records
    ///   the blind window on the timeline when the lag is non-zero. All
    ///   nodes detected at the same instant are repaired as **one batched
    ///   pass** (exactly what [`DistributedFileSystem::repair_nodes`] would
    ///   do for that set), so multi-node repair plans see the full failure
    ///   pattern.
    /// * `NodeUp` — the node rejoins (empty, unless a repair already
    ///   re-provisioned it); a node that recovers before its detection
    ///   boundary is never declared dead and no repair runs.
    /// * `Slowdown` — the node's disk and NIC bandwidth are divided by the
    ///   factor from that instant on.
    ///
    /// Returns the repair passes this call executed (also appended to
    /// [`DistributedFileSystem::auto_repair_reports`]). The virtual clock is
    /// *not* advanced: like every other operation, engine work issued here
    /// overlaps whatever else is issued before the next
    /// [`DistributedFileSystem::sync`].
    ///
    /// # Errors
    ///
    /// Propagates internal repair errors; unrecoverable stripes are counted
    /// in the reports, not returned as errors.
    pub fn process_events_until(
        &mut self,
        horizon: SimTime,
    ) -> Result<Vec<RepairReport>, HdfsError> {
        let mut new_reports = Vec::new();
        while let Some(at) = self.events.peek_time().filter(|&a| a <= horizon) {
            // Drain everything due at this instant (the queue is sorted, so
            // `pop_due(at)` yields exactly the events sharing it — plus any
            // zero-timeout detection boundary a just-applied failure
            // schedules back onto the same instant). Trace events apply as
            // they pop; detection boundaries are *deferred* until the whole
            // instant has drained, so a same-instant recovery cancels its
            // node's detection regardless of queue insertion order (the
            // half-open rule: a node serving again *at* its boundary is
            // never declared dead — the same tie-break the MR engine's
            // FailureState uses).
            let mut boundaries: Vec<NodeId> = Vec::new();
            while let Some((_, ev)) = self.events.pop_due(at) {
                match ev {
                    FsEvent::Trace(kind) => self.apply_trace_event(at, kind),
                    FsEvent::Detect(node) => boundaries.push(node),
                }
            }
            let mut detected: Vec<NodeId> = Vec::new();
            for node in boundaries {
                // A boundary for a node that recovered (or was already
                // declared dead and repaired) is stale.
                if self.cluster.is_up(node) || self.namenode.is_dead(node) {
                    continue;
                }
                let Some(silent) = self.namenode.silent_since(node) else {
                    continue;
                };
                let boundary = silent + self.detection_timeout;
                if at >= boundary {
                    self.namenode.declare_dead(node, at);
                    if at > silent {
                        self.timeline
                            .record(drc_sim::detection_lag_label(node.0), silent, at, 0);
                    }
                    detected.push(node);
                } else {
                    // The detection timeout was raised after this boundary
                    // was scheduled (or the node failed again): the node is
                    // still silent, so push the boundary out instead of
                    // dropping detection.
                    self.events
                        .schedule(Schedule::at(boundary, FsEvent::Detect(node)));
                }
            }
            if !detected.is_empty() {
                let report = self.repair_pass(&detected, at)?;
                self.auto_repairs.push(report.clone());
                new_reports.push(report);
            }
        }
        Ok(new_reports)
    }

    /// Drives the failure engine until no pending event remains (including
    /// the detection boundaries and repairs the drained events spawn).
    ///
    /// # Errors
    ///
    /// As [`DistributedFileSystem::process_events_until`].
    pub fn process_all_events(&mut self) -> Result<Vec<RepairReport>, HdfsError> {
        self.process_events_until(SimTime(u64::MAX))
    }

    /// Applies one failure-trace event at its instant.
    fn apply_trace_event(&mut self, at: SimTime, kind: FailureEventKind) {
        match kind {
            FailureEventKind::NodeDown { node } => self.node_fail_stop(at, node),
            FailureEventKind::RackDown { rack } => {
                for node in self.cluster.nodes_in_rack(rack) {
                    self.node_fail_stop(at, node);
                }
            }
            FailureEventKind::NodeUp { node } => {
                // Symmetric with `node_fail_stop`'s already-down guard: a
                // recovery for a node that is already serving (e.g. an
                // auto-repair re-provisioned it before the trace's own
                // recovery instant) must not occupy its resources through
                // `at` — that would phantom-delay every later I/O on a node
                // that never stopped serving.
                if self.cluster.is_up(node) {
                    return;
                }
                self.cluster.set_up(node);
                self.net.restore_node(at, node);
                self.namenode.heartbeat_restored(node);
            }
            FailureEventKind::Slowdown { node, factor } => {
                self.net.set_node_slowdown(node, factor);
            }
        }
    }

    /// One node fail-stops at `at`: its disk is wiped, its resources go
    /// dark, its heartbeats stop, and its detection boundary is scheduled.
    fn node_fail_stop(&mut self, at: SimTime, node: NodeId) {
        if !self.cluster.is_up(node) {
            return; // already down: a duplicate failure changes nothing
        }
        self.cluster.set_down(node);
        if let Some(dn) = self.datanodes.get(&node) {
            dn.wipe();
        }
        self.net.take_node_down(node);
        self.namenode.heartbeat_lost(node, at);
        self.events
            .schedule_at(at + self.detection_timeout, FsEvent::Detect(node));
    }

    /// The RaidNode's repair pass: for every stripe that lost replicas on
    /// permanently-failed (wiped) or down nodes, plan the repair with the
    /// stripe's code, rebuild the missing blocks from surviving replicas, and
    /// write them to the replacement nodes (the same node ids, assumed to be
    /// re-provisioned and now up).
    ///
    /// Every stripe's repair is issued at the same virtual instant: helper
    /// reads and replacement writes become timed events that overlap across
    /// stripes (and with any degraded reads issued before the next
    /// [`DistributedFileSystem::sync`]), queueing only where they share a
    /// disk, a NIC or the fabric. Per-stripe completions are drained through
    /// an [`EventQueue`] in virtual-time order onto the timeline.
    ///
    /// Every repaired node in `replacements` is marked up again.
    ///
    /// The failure engine's auto-repair queue executes exactly this pass
    /// (via the shared internals) at each detection instant, so a manual
    /// `repair_nodes` call and a trace-driven repair of the same failure
    /// set move identical bytes.
    ///
    /// # Errors
    ///
    /// Returns an error only for internal inconsistencies; unrecoverable
    /// stripes are *counted* in the report rather than failing the pass.
    pub fn repair_nodes(&mut self, replacements: &[NodeId]) -> Result<RepairReport, HdfsError> {
        self.repair_pass(replacements, self.clock.now())
    }

    /// The repair pass shared by [`DistributedFileSystem::repair_nodes`]
    /// (issued at the current clock) and the failure engine's auto-repair
    /// queue (issued at the detection instant).
    fn repair_pass(
        &mut self,
        replacements: &[NodeId],
        issued: SimTime,
    ) -> Result<RepairReport, HdfsError> {
        let mut report = RepairReport {
            issued_at: issued,
            completed_at: issued,
            ..RepairReport::default()
        };
        let replaced: BTreeSet<NodeId> = replacements.iter().copied().collect();
        // Per-stripe completion events, drained in virtual-time order below.
        let mut completions: EventQueue<(FileId, usize, u64)> = EventQueue::new();
        // Fully-lost blocks awaiting their GF rebuild, flushed through the
        // worker pool in cross-stripe waves.
        let mut pending: Vec<PendingRebuild> = Vec::new();
        // Deferred replacement stores: every stripe's fetch trains are
        // issued first (all at `issued`), then the stores run below in
        // global virtual-start order.
        let mut stores: Vec<PendingStores> = Vec::new();
        // Collect the work per file first to avoid borrowing conflicts.
        let files: Vec<FileMetadata> = self.namenode.iter().cloned().collect();
        for meta in files {
            let code = self.code(meta.code)?;
            // Scan each replaced node's reverse index instead of walking
            // every stripe of every file: the planning work is proportional
            // to the blocks the failed nodes actually hosted, which is what
            // keeps repair viable against 10M-block placements.
            let mut failed: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
            for &node in &replaced {
                if node.0 >= meta.placement.node_universe() {
                    continue; // this file's placement never saw the node
                }
                meta.placement
                    .for_each_stripe_on_node(node, |stripe, local| {
                        if self.missing_any_block(&meta, stripe, local, node, code.as_ref()) {
                            failed.entry(stripe).or_default().insert(local);
                        }
                    })
                    .map_err(HdfsError::from)?;
            }
            for (stripe, failed_local) in failed {
                let stripe_nodes = meta.placement.stripe_hosts(stripe)?;
                let plan = match code.repair_plan(&failed_local) {
                    Ok(p) => p,
                    Err(_) => {
                        report.unrecoverable_stripes += 1;
                        continue;
                    }
                };
                let plan_bytes = plan.network_blocks() as u64 * meta.block_size;
                report.network_bytes += plan_bytes;
                // What is actually missing, and every replica slot it must
                // land in (one distinct block can be missing on two failed
                // nodes at once).
                let mut dests: BTreeMap<usize, Vec<(BlockKey, NodeId)>> = BTreeMap::new();
                for &local in &failed_local {
                    let node = stripe_nodes[local];
                    let dn = self
                        .datanodes
                        .get(&node)
                        .ok_or(HdfsError::DataNodeUnavailable { node: node.0 })?;
                    for &block in code.node_blocks(local) {
                        let key = BlockKey::new(meta.id, stripe, block);
                        if !dn.contains(&key) {
                            dests.entry(block).or_default().push((key, node));
                        }
                    }
                }
                if dests.is_empty() {
                    continue;
                }
                // Borrow one live handle per surviving distinct block (no
                // copies, no served-bytes side effects) and solve for the
                // fully-lost blocks; blocks with a surviving replica are
                // restored by handle clone.
                let payloads = self.gather_stripe_payloads(&meta, stripe, code.as_ref())?;
                let lost: Vec<usize> = dests
                    .keys()
                    .copied()
                    .filter(|b| !payloads.contains_key(b))
                    .collect();
                let rec = if lost.is_empty() {
                    None
                } else {
                    let available: BTreeSet<usize> = payloads.keys().copied().collect();
                    match StripeReconstructor::plan(code.structure(), &available, &lost) {
                        Ok(r) => Some(r),
                        Err(_) => {
                            report.unrecoverable_stripes += 1;
                            continue;
                        }
                    }
                };
                // Timing: chunk-stream the plan's helper transfers and the
                // rebuilt replicas' stores — chunk `i`'s stores are issued
                // the instant chunk `i`'s last fetch lands, overlapping
                // chunk `i+1`'s fetches, so the stripe completes at
                // max(network, compute) + one-chunk fill instead of the
                // serial fetch-then-store sum. Only the fetches are issued
                // here; the stores are deferred so no stripe's late store
                // windows are granted before another stripe's epoch fetches.
                let senders: Vec<NodeId> = plan
                    .transfers
                    .iter()
                    .map(|t| stripe_nodes[t.from_node])
                    .collect();
                let store_dests: Vec<NodeId> = dests
                    .values()
                    .flat_map(|targets| targets.iter().map(|&(_, node)| node))
                    .collect();
                let (sizes, fetch_done) =
                    self.stream_stripe_fetches(&senders, meta.block_size, issued);
                // The plan is the traffic model: charge each modeled
                // transfer to its sender so per-node served bytes agree
                // with `RepairReport::network_bytes`.
                for &sender in &senders {
                    if let Some(dn) = self.datanodes.get(&sender) {
                        dn.record_served(meta.block_size);
                    }
                }
                // Content. Replica-backed blocks land immediately as cheap
                // handle clones; fully-lost blocks join the cross-stripe GF
                // wave flushed through the worker pool in one fused batch.
                for (&block, targets) in &dests {
                    let Some(data) = payloads.get(&block) else {
                        continue;
                    };
                    for &(key, node) in targets {
                        if let Some(dn) = self.datanodes.get(&node) {
                            dn.store(key, data.clone());
                            report.blocks_restored += 1;
                        }
                    }
                }
                if let Some(rec) = rec {
                    let sources: Vec<Bytes> = rec
                        .sources()
                        .iter()
                        .map(|&b| payloads[&b].clone())
                        .collect();
                    let outs: Vec<Vec<u8>> = rec
                        .targets()
                        .iter()
                        .map(|_| drc_gf::bufpool::take(meta.block_size as usize))
                        .collect();
                    let out_dests: Vec<Vec<(BlockKey, NodeId)>> =
                        rec.targets().iter().map(|b| dests[b].clone()).collect();
                    report.blocks_restored += out_dests.iter().map(Vec::len).sum::<usize>();
                    pending.push(PendingRebuild {
                        rec,
                        sources,
                        outs,
                        dests: out_dests,
                    });
                    if pending.len() >= REBUILD_WAVE_STRIPES {
                        self.flush_rebuilds(&mut pending);
                    }
                }
                report.stripes_repaired += 1;
                stores.push(PendingStores {
                    file: meta.id,
                    stripe,
                    plan_bytes,
                    sizes,
                    fetch_done,
                    dests: store_dests,
                });
            }
        }
        self.flush_rebuilds(&mut pending);
        // Store scheduling: one push train per (stripe, destination), chunk
        // `ci` available at `fetch_done[ci]`, issued in ascending
        // first-chunk-start order. Resources grant FIFO in issuance order —
        // this ordering is what makes the grants agree with virtual time
        // across stripes.
        let mut trains: Vec<(SimTime, usize, NodeId)> = Vec::new();
        for (ji, job) in stores.iter().enumerate() {
            let Some(&first) = job.fetch_done.first() else {
                continue;
            };
            for &dest in &job.dests {
                trains.push((first, ji, dest));
            }
        }
        trains.sort_by_key(|&(at, _, _)| at);
        let mut job_done: Vec<SimTime> = stores
            .iter()
            .map(|job| job.fetch_done.last().copied().unwrap_or(issued))
            .collect();
        for (_, ji, dest) in trains {
            let job = &stores[ji];
            let ends = drc_sim::push_train(
                &job.fetch_done,
                self.net.node(dest),
                self.net.fabric(),
                &job.sizes,
            );
            if let Some(&end) = ends.last() {
                job_done[ji] = job_done[ji].max(end);
            }
        }
        for (job, done) in stores.iter().zip(job_done) {
            completions.schedule_at(done, (job.file, job.stripe, job.plan_bytes));
        }
        // Drain per-stripe completions in virtual-time order onto the
        // timeline; the pass completes when the last stripe does.
        while let Some((done, (file, stripe, bytes))) = completions.pop() {
            self.timeline
                .record(format!("repair:f{}:s{stripe}", file.0), issued, done, bytes);
            report.completed_at = report.completed_at.max(done);
        }
        self.repair_network_bytes += report.network_bytes;
        for &node in replacements {
            self.cluster.set_up(node);
            // The replacement is re-provisioned and heartbeating again; the
            // occupy-through-`issued` is a no-op for timing (nothing issues
            // before `issued` after this) but keeps the availability signal
            // honest for layers that only see the net.
            self.net.restore_node(issued, node);
            self.namenode.heartbeat_restored(node);
        }
        Ok(report)
    }

    /// Issues one stripe repair's helper-fetch trains: every plan transfer
    /// becomes a train of chunk-sized pulls on its sender's disk + NIC +
    /// fabric, all issued at `issued` so each sender's FIFO pipes serve its
    /// train back-to-back. Returns the chunk sizes and, per chunk, the
    /// instant its slowest fetch lands — the store phase pushes chunk `ci`
    /// onto the replacements at `fetch_done[ci]`.
    ///
    /// With `repair_chunk_bytes ≥ block_size` this degenerates to the
    /// monolithic schedule: one whole-block fetch, then whole-block stores
    /// — the serial baseline.
    fn stream_stripe_fetches(
        &self,
        senders: &[NodeId],
        block_size: u64,
        issued: SimTime,
    ) -> (Vec<u64>, Vec<SimTime>) {
        let fabric = self.net.fabric();
        let sizes: Vec<u64> = chunk_sizes(block_size, self.repair_chunk_bytes).collect();
        let mut fetch_done: Vec<SimTime> = vec![issued; sizes.len()];
        for &sender in senders {
            let ends = drc_sim::pull_train(issued, self.net.node(sender), fabric, &sizes);
            for (done, end) in fetch_done.iter_mut().zip(ends) {
                *done = (*done).max(end);
            }
        }
        (sizes, fetch_done)
    }

    /// Applies every deferred GF rebuild as one fused cross-stripe batch on
    /// the worker pool and stores the rebuilt blocks. Byte-identical to
    /// per-stripe rebuilds at any pool width or wave size.
    fn flush_rebuilds(&self, pending: &mut Vec<PendingRebuild>) {
        if pending.is_empty() {
            return;
        }
        let mut tasks: Vec<MatrixMulTask<'_>> = pending
            .iter_mut()
            .map(|p| MatrixMulTask {
                coeffs: p.rec.coefficients(),
                k: p.rec.sources().len(),
                sources: p.sources.iter().map(|b| &b[..]).collect(),
                outs: p.outs.iter_mut().map(|o| &mut o[..]).collect(),
            })
            .collect();
        matrix_mul_batch(&mut tasks);
        drop(tasks);
        for p in pending.drain(..) {
            for (out, targets) in p.outs.into_iter().zip(p.dests) {
                // Zero-copy: the rebuilt buffer becomes the stored handle.
                let data = Bytes::from(out);
                for (key, node) in targets {
                    if let Some(dn) = self.datanodes.get(&node) {
                        dn.store(key, data.clone());
                    }
                }
            }
        }
    }

    fn missing_any_block(
        &self,
        meta: &FileMetadata,
        stripe: usize,
        local: usize,
        node: NodeId,
        code: &dyn ErasureCode,
    ) -> bool {
        code.node_blocks(local).iter().any(|&block| {
            let key = BlockKey::new(meta.id, stripe, block);
            self.datanodes
                .get(&node)
                .map(|dn| !dn.contains(&key))
                .unwrap_or(true)
        })
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> FsStats {
        FsStats {
            files: self.namenode.len(),
            stored_blocks: self.datanodes.values().map(DataNode::block_count).sum(),
            stored_bytes: self.datanodes.values().map(DataNode::used_bytes).sum(),
            write_network_bytes: self.write_network_bytes,
            read_network_bytes: self.read_network_bytes,
            repair_network_bytes: self.repair_network_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        tiny_spec()
    }

    fn tiny_spec() -> ClusterSpec {
        // 1 MiB blocks are enough to exercise multi-stripe files cheaply.
        let mut s = ClusterSpec::simulation_25(4);
        s.block_size_mb = 1;
        s
    }

    fn sample_data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn write_then_read_roundtrip_all_codes() {
        for kind in [
            CodeKind::TWO_REP,
            CodeKind::THREE_REP,
            CodeKind::Pentagon,
            CodeKind::Heptagon,
            CodeKind::HeptagonLocal,
        ] {
            let mut fs = DistributedFileSystem::new(tiny_spec(), 42);
            let data = sample_data(3 * 1024 * 1024 + 123);
            let id = fs.write_file("/data/file", &data, kind).unwrap();
            let back = fs.read_file(id).unwrap();
            assert_eq!(back, data, "roundtrip failed for {kind}");
        }
    }

    #[test]
    fn rejects_empty_files_and_duplicate_names() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 1);
        assert!(fs.write_file("/a", &[], CodeKind::TWO_REP).is_err());
        fs.write_file("/a", &[1, 2, 3], CodeKind::TWO_REP).unwrap();
        assert!(fs.write_file("/a", &[1], CodeKind::TWO_REP).is_err());
    }

    #[test]
    fn storage_overhead_matches_code() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 2);
        let data = sample_data(9 * 1024 * 1024); // exactly one pentagon stripe
        fs.write_file("/pent", &data, CodeKind::Pentagon).unwrap();
        let stats = fs.stats();
        assert_eq!(stats.files, 1);
        assert_eq!(stats.stored_blocks, 20);
        assert_eq!(stats.stored_bytes, 20 * 1024 * 1024);
    }

    #[test]
    fn transient_failure_reads_from_other_replica() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 3);
        let data = sample_data(2 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        let victim = meta.block_locations(0, 0).unwrap()[0];
        fs.fail_node(victim);
        assert_eq!(fs.read_file(id).unwrap(), data);
    }

    #[test]
    fn degraded_read_reconstructs_when_both_replicas_down() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 4);
        let data = sample_data(9 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        for &node in &meta.block_locations(0, 0).unwrap() {
            fs.fail_node(node);
        }
        let before = fs.stats().read_network_bytes;
        let back = fs.read_file(id).unwrap();
        assert_eq!(back, data);
        assert!(fs.stats().read_network_bytes > before);
    }

    #[test]
    fn too_many_failures_make_blocks_unavailable() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 5);
        let data = sample_data(1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::TWO_REP).unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        for &node in &meta.block_locations(0, 0).unwrap() {
            fs.fail_node(node);
        }
        assert!(matches!(
            fs.read_file(id),
            Err(HdfsError::BlockUnavailable { .. })
        ));
    }

    #[test]
    fn raidnode_repairs_permanent_single_failure() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 6);
        let data = sample_data(9 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        let victim = meta.placement.stripe_hosts(0).unwrap()[2];
        let blocks_before = fs.datanode(victim).unwrap().block_count();
        assert!(blocks_before > 0);
        fs.fail_node_permanently(victim);
        assert_eq!(fs.datanode(victim).unwrap().block_count(), 0);

        let report = fs.repair_nodes(&[victim]).unwrap();
        assert_eq!(report.unrecoverable_stripes, 0);
        assert_eq!(report.blocks_restored, blocks_before);
        assert!(report.stripes_repaired >= 1);
        // Repair bandwidth per the pentagon plan: 4 blocks per stripe-node.
        assert_eq!(report.network_bytes, 4 * 1024 * 1024);
        assert!(report.completed_at > report.issued_at);
        // The node is up again and the file reads back correctly from it.
        assert!(fs.cluster().is_up(victim));
        assert_eq!(fs.read_file(id).unwrap(), data);
        assert_eq!(fs.datanode(victim).unwrap().block_count(), blocks_before);
    }

    #[test]
    fn raidnode_repairs_double_failure_with_partial_parity_accounting() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 7);
        let data = sample_data(9 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        let hosts = meta.placement.stripe_hosts(0).unwrap();
        let victims = [hosts[0], hosts[1]];
        for &v in &victims {
            fs.fail_node_permanently(v);
        }
        let report = fs.repair_nodes(&victims).unwrap();
        assert_eq!(report.unrecoverable_stripes, 0);
        // Two-node pentagon repair costs 10 blocks of network traffic (§2.1).
        assert_eq!(report.network_bytes, 10 * 1024 * 1024);
        assert_eq!(fs.read_file(id).unwrap(), data);
    }

    #[test]
    fn unrecoverable_stripes_are_reported_not_fatal() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 8);
        let data = sample_data(1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::TWO_REP).unwrap();
        let meta = fs.namenode().file(id).unwrap().clone();
        let victims: Vec<NodeId> = meta.block_locations(0, 0).unwrap().to_vec();
        for &v in &victims {
            fs.fail_node_permanently(v);
        }
        let report = fs.repair_nodes(&victims).unwrap();
        assert_eq!(report.unrecoverable_stripes, 1);
        assert_eq!(report.blocks_restored, 0);
        assert_eq!(report.completed_at, report.issued_at);
        let _ = id;
    }

    #[test]
    fn stats_track_traffic() {
        let mut fs = DistributedFileSystem::new(spec(), 9);
        let data = sample_data(512 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::THREE_REP).unwrap();
        let stats = fs.stats();
        assert!(stats.write_network_bytes >= 3 * 512 * 1024);
        assert_eq!(stats.read_network_bytes, 0);
        let _ = fs.read_file(id).unwrap();
        assert!(fs.stats().read_network_bytes > 0);
        assert_eq!(fs.stats().repair_network_bytes, 0);
    }

    #[test]
    fn operations_advance_virtual_time_and_record_phases() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 10);
        assert_eq!(fs.now(), SimTime::ZERO);
        let data = sample_data(9 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        let after_write = fs.sync();
        assert!(after_write > SimTime::ZERO, "writes take virtual time");
        assert_eq!(fs.timeline().phases.len(), 1);
        assert_eq!(fs.timeline().phases[0].label, "write:/f");
        let created = fs.namenode().file(id).unwrap().created_at;
        assert_eq!(created, SimTime::ZERO);

        let _ = fs.read_file(id).unwrap();
        let after_read = fs.sync();
        assert!(
            after_read > after_write,
            "reads issued after sync start later"
        );
        assert!(fs
            .timeline()
            .with_prefix("read:")
            .all(|p| p.start >= after_write));
    }

    #[test]
    fn read_block_records_a_phase_with_disjoint_byte_accounting() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 12);
        let data = sample_data(9 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        fs.sync();
        let meta = fs.namenode().file(id).unwrap().clone();

        // Healthy single-block read: one phase, replica bytes only.
        let block = fs.read_block(&meta, 0, 1).unwrap();
        assert_eq!(block.len(), 1024 * 1024);
        let phase = fs.timeline().phases.last().unwrap().clone();
        assert_eq!(phase.label, "read:f0:s0:b1");
        assert_eq!(phase.bytes, 1024 * 1024);

        // Degraded single-block read: the reconstruction bytes live on the
        // degraded-read phase; the read phase itself carries none, and the
        // two prefixes together equal the stats counter delta.
        for &node in &meta.block_locations(0, 0).unwrap() {
            fs.fail_node(node);
        }
        let stats_before = fs.stats().read_network_bytes;
        let degraded_before = fs.timeline().bytes_with_prefix("degraded-read:");
        let block = fs.read_block(&meta, 0, 0).unwrap();
        assert_eq!(&block[..], &data[..1024 * 1024]);
        let read_phase = fs.timeline().phases.last().unwrap().clone();
        assert_eq!(read_phase.label, "read:f0:s0:b0");
        assert_eq!(
            read_phase.bytes, 0,
            "plan bytes belong to the degraded phase"
        );
        let degraded_bytes = fs.timeline().bytes_with_prefix("degraded-read:") - degraded_before;
        assert_eq!(
            degraded_bytes,
            fs.stats().read_network_bytes - stats_before,
            "phase byte accounting must partition the stats counter"
        );
    }

    #[test]
    fn t0_trace_with_zero_timeout_reproduces_the_static_repair() {
        use drc_cluster::FailureScenario;
        // Static path: permanent failures + caller-invoked repair.
        let mut static_fs = DistributedFileSystem::new(tiny_spec(), 21);
        let data = sample_data(9 * 1024 * 1024);
        let id = static_fs
            .write_file("/f", &data, CodeKind::Pentagon)
            .unwrap();
        let meta = static_fs.namenode().file(id).unwrap().clone();
        let victims: Vec<NodeId> = meta.block_locations(0, 0).unwrap().to_vec();
        for &v in &victims {
            static_fs.fail_node_permanently(v);
        }
        let static_report = static_fs.repair_nodes(&victims).unwrap();

        // Trace path: the same failures at t = 0, detection timeout 0.
        let mut traced_fs = DistributedFileSystem::new(tiny_spec(), 21);
        let id2 = traced_fs
            .write_file("/f", &data, CodeKind::Pentagon)
            .unwrap();
        assert_eq!(id, id2, "same seed, same namespace");
        traced_fs.set_detection_timeout(SimDuration::ZERO);
        traced_fs.schedule_trace(&FailureScenario::nodes(victims.clone()).to_trace());
        let reports = traced_fs.process_all_events().unwrap();

        // One batched pass, byte-for-byte equal to the static one.
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].network_bytes, static_report.network_bytes);
        assert_eq!(reports[0].blocks_restored, static_report.blocks_restored);
        assert_eq!(reports[0].stripes_repaired, static_report.stripes_repaired);
        assert_eq!(traced_fs.stats(), static_fs.stats());
        assert_eq!(traced_fs.auto_repair_reports().len(), 1);
        assert_eq!(traced_fs.pending_events(), 0);
        // Zero lag records no phantom detection-lag phase.
        assert_eq!(
            traced_fs.timeline().with_prefix("detection-lag:").count(),
            0
        );
        assert_eq!(traced_fs.read_file(id2).unwrap(), data);
    }

    #[test]
    fn detection_timeout_delays_the_auto_repair_and_records_the_lag() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        let mut fs = DistributedFileSystem::new(tiny_spec(), 22);
        let data = sample_data(9 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        fs.sync();
        let meta = fs.namenode().file(id).unwrap().clone();
        let victim = meta.placement.stripe_hosts(0).unwrap()[1];

        fs.set_detection_timeout(SimDuration::from_secs_f64(2.0));
        let fail_at = fs.now() + SimDuration::from_secs_f64(1.0);
        fs.schedule_trace(&FailureTrace::from_events(vec![FailureEvent {
            at_ns: fail_at.0,
            kind: FailureEventKind::NodeDown { node: victim },
        }]));
        assert_eq!(fs.next_event_at(), Some(fail_at));

        // Before the horizon reaches the detection boundary nothing repairs,
        // but the failure itself has been applied.
        let before = fs.process_events_until(fail_at).unwrap();
        assert!(before.is_empty());
        assert!(!fs.cluster().is_up(victim));
        assert!(!fs.namenode().is_dead(victim));
        assert_eq!(fs.datanode(victim).unwrap().block_count(), 0, "wiped");

        let detect_at = fail_at + SimDuration::from_secs_f64(2.0);
        let reports = fs.process_all_events().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(
            reports[0].issued_at, detect_at,
            "repair waits for detection"
        );
        assert!(reports[0].completed_at > detect_at);
        assert!(reports[0].network_bytes > 0);
        // The blind window is on the timeline, half-open [fail, detect).
        let lag = fs
            .timeline()
            .with_prefix("detection-lag:")
            .next()
            .expect("a detection-lag phase")
            .clone();
        assert_eq!(lag.start, fail_at);
        assert_eq!(lag.end, detect_at);
        assert_eq!(lag.bytes, 0);
        // The node is re-provisioned and the data intact.
        assert!(fs.cluster().is_up(victim));
        assert!(!fs.namenode().is_dead(victim));
        assert_eq!(fs.read_file(id).unwrap(), data);
    }

    #[test]
    fn raising_the_timeout_after_scheduling_delays_detection_instead_of_dropping_it() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        let mut fs = DistributedFileSystem::new(tiny_spec(), 26);
        let data = sample_data(9 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        fs.sync();
        let meta = fs.namenode().file(id).unwrap().clone();
        let victim = meta.placement.stripe_hosts(0).unwrap()[1];

        // The failure is scheduled under a 1 s timeout …
        fs.set_detection_timeout(SimDuration::from_secs_f64(1.0));
        let fail_at = fs.now();
        fs.schedule_trace(&FailureTrace::from_events(vec![FailureEvent {
            at_ns: fail_at.0,
            kind: FailureEventKind::NodeDown { node: victim },
        }]));
        // … and the timeout is raised before the boundary fires: detection
        // must happen at the *new* boundary, not never.
        fs.set_detection_timeout(SimDuration::from_secs_f64(4.0));
        let reports = fs.process_all_events().unwrap();
        assert_eq!(reports.len(), 1, "detection must not be dropped");
        let detect_at = fail_at + SimDuration::from_secs_f64(4.0);
        assert_eq!(reports[0].issued_at, detect_at);
        let lag = fs
            .timeline()
            .with_prefix("detection-lag:")
            .next()
            .expect("a detection-lag phase")
            .clone();
        assert_eq!(lag.end, detect_at);
        assert!(fs.cluster().is_up(victim));
        assert_eq!(fs.read_file(id).unwrap(), data);
    }

    #[test]
    fn recovery_before_the_detection_boundary_cancels_the_repair() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        let mut fs = DistributedFileSystem::new(tiny_spec(), 23);
        let data = sample_data(2 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        fs.sync();
        let meta = fs.namenode().file(id).unwrap().clone();
        let victim = meta.placement.stripe_hosts(0).unwrap()[0];

        fs.set_detection_timeout(SimDuration::from_secs_f64(5.0));
        let fail_at = fs.now();
        fs.schedule_trace(&FailureTrace::from_events(vec![
            FailureEvent {
                at_ns: fail_at.0,
                kind: FailureEventKind::NodeDown { node: victim },
            },
            // The node is re-provisioned inside the detection window.
            FailureEvent {
                at_ns: (fail_at + SimDuration::from_secs_f64(1.0)).0,
                kind: FailureEventKind::NodeUp { node: victim },
            },
        ]));
        let reports = fs.process_all_events().unwrap();
        assert!(reports.is_empty(), "a recovered node is never repaired");
        assert!(fs.cluster().is_up(victim));
        assert!(!fs.namenode().is_dead(victim));
        assert_eq!(fs.timeline().with_prefix("detection-lag:").count(), 0);
        // The node came back empty (fail-stop wiped it), so reads of its
        // blocks go degraded — but the file survives.
        assert_eq!(fs.read_file(id).unwrap(), data);
    }

    #[test]
    fn rack_burst_detects_and_repairs_the_whole_rack_as_one_pass() {
        use drc_cluster::{FailureEventKind, FailureTrace, RackId};
        // Many small racks: losing one whole rack costs two nodes, which
        // every double-replicated array code tolerates regardless of where
        // the random placement put the stripes.
        let mut spec = ClusterSpec::custom(24, 12, 4);
        spec.block_size_mb = 1;
        let mut fs = DistributedFileSystem::new(spec, 24);
        let data = sample_data(9 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::HeptagonLocal).unwrap();
        fs.sync();
        let rack = RackId(1);
        let members = fs.cluster().nodes_in_rack(rack);
        assert!(members.len() == 2);

        fs.set_detection_timeout(SimDuration::from_secs_f64(0.5));
        fs.schedule_trace(&FailureTrace::from_events(vec![
            drc_cluster::FailureEvent::at_secs(
                fs.now().as_secs_f64() + 0.25,
                FailureEventKind::RackDown { rack },
            ),
        ]));
        let reports = fs.process_all_events().unwrap();
        // Both members fail and are detected at the same instant, so the
        // correlated loss repairs as one batched pass.
        assert_eq!(reports.len(), 1, "one pass for the whole burst");
        assert_eq!(reports[0].unrecoverable_stripes, 0);
        assert!(reports[0].network_bytes > 0);
        for &n in &members {
            assert!(fs.cluster().is_up(n), "repair re-provisioned {n}");
        }
        // One detection-lag phase per rack member.
        assert_eq!(
            fs.timeline().with_prefix("detection-lag:").count(),
            members.len()
        );
        assert_eq!(fs.read_file(id).unwrap(), data);
    }

    #[test]
    fn recovery_exactly_at_the_boundary_cancels_detection_even_for_composed_traces() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        let mut fs = DistributedFileSystem::new(tiny_spec(), 28);
        let data = sample_data(2 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        fs.sync();
        let meta = fs.namenode().file(id).unwrap().clone();
        let victim = meta.placement.stripe_hosts(0).unwrap()[0];

        fs.set_detection_timeout(SimDuration::from_secs_f64(2.0));
        let fail_at = fs.now();
        let boundary = fail_at + SimDuration::from_secs_f64(2.0);
        // The failure is scheduled (queueing its Detect) *before* the
        // recovery trace arrives with a NodeUp at the exact boundary
        // instant: per the half-open rule the node is serving again at
        // that instant and must never be declared dead, whatever the
        // queue's insertion order.
        fs.schedule_trace(&FailureTrace::from_events(vec![FailureEvent {
            at_ns: fail_at.0,
            kind: FailureEventKind::NodeDown { node: victim },
        }]));
        let early = fs.process_events_until(fail_at).unwrap();
        assert!(early.is_empty());
        fs.schedule_trace(&FailureTrace::from_events(vec![FailureEvent {
            at_ns: boundary.0,
            kind: FailureEventKind::NodeUp { node: victim },
        }]));
        let reports = fs.process_all_events().unwrap();
        assert!(reports.is_empty(), "recovery at the boundary cancels");
        assert!(fs.cluster().is_up(victim));
        assert!(!fs.namenode().is_dead(victim));
        assert_eq!(fs.timeline().with_prefix("detection-lag:").count(), 0);
        assert_eq!(fs.read_file(id).unwrap(), data);
    }

    #[test]
    fn nodeup_after_repair_does_not_phantom_occupy_the_node() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        let mut fs = DistributedFileSystem::new(tiny_spec(), 27);
        let data = sample_data(9 * 1024 * 1024);
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        fs.sync();
        let meta = fs.namenode().file(id).unwrap().clone();
        let victim = meta.placement.stripe_hosts(0).unwrap()[1];

        // Fail at now, detect quickly (auto-repair re-provisions the node),
        // and let the trace's own recovery arrive much later: the stale
        // NodeUp must be a no-op, not an occupy-until-60s on a node that
        // has been serving since the repair.
        fs.set_detection_timeout(SimDuration::from_secs_f64(0.5));
        let fail_at = fs.now();
        let late_up = fail_at + SimDuration::from_secs_f64(60.0);
        fs.schedule_trace(&FailureTrace::from_events(vec![
            FailureEvent {
                at_ns: fail_at.0,
                kind: FailureEventKind::NodeDown { node: victim },
            },
            FailureEvent {
                at_ns: late_up.0,
                kind: FailureEventKind::NodeUp { node: victim },
            },
        ]));
        let reports = fs.process_all_events().unwrap();
        assert_eq!(reports.len(), 1, "the repair beat the trace's recovery");
        assert!(fs.cluster().is_up(victim));
        let io = fs.cluster_net().node(victim);
        assert!(
            io.disk.next_free() < late_up && io.nic.next_free() < late_up,
            "a stale NodeUp must not occupy the node through its instant"
        );
        assert_eq!(fs.read_file(id).unwrap(), data);
    }

    #[test]
    fn slowdown_events_stretch_the_node_io() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        let mut fs = DistributedFileSystem::new(tiny_spec(), 25);
        let node = NodeId(3);
        fs.schedule_trace(&FailureTrace::from_events(vec![FailureEvent::at_secs(
            1.0,
            FailureEventKind::Slowdown { node, factor: 4.0 },
        )]));
        let reports = fs.process_all_events().unwrap();
        assert!(reports.is_empty(), "a slowdown is not a failure");
        assert!(fs.cluster().is_up(node), "the node stays up");
        assert_eq!(fs.cluster_net().node(node).disk.slowdown(), 4.0);
        assert_eq!(fs.cluster_net().node(node).nic.slowdown(), 4.0);
    }

    #[test]
    fn repair_and_degraded_reads_overlap_in_virtual_time() {
        let mut fs = DistributedFileSystem::new(tiny_spec(), 11);
        let data = sample_data(18 * 1024 * 1024); // two pentagon stripes
        let id = fs.write_file("/f", &data, CodeKind::Pentagon).unwrap();
        fs.sync();
        let meta = fs.namenode().file(id).unwrap().clone();
        // Lose both replicas of data block 0 of stripe 0: reads of that
        // block must go degraded until the RaidNode repairs the nodes.
        let victims: Vec<NodeId> = meta.block_locations(0, 0).unwrap().to_vec();
        for &v in &victims {
            fs.fail_node_permanently(v);
        }

        // Issue the degraded read and the repair pass back-to-back without
        // syncing: both start at the same virtual instant and compete for
        // the surviving nodes' disks.
        let back = fs.read_file(id).unwrap();
        assert_eq!(back, data);
        let report = fs.repair_nodes(&victims).unwrap();
        assert!(report.stripes_repaired >= 1);

        let overlap = fs.timeline().overlap("repair:", "degraded-read:");
        assert!(
            overlap.as_secs_f64() > 0.0,
            "repair and degraded reads must overlap in virtual time:\n{}",
            fs.timeline()
        );
    }
}
