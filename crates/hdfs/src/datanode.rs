//! A simulated DataNode: stores block replicas and serves reads.

use std::collections::BTreeMap;

use bytes::Bytes;
use parking_lot::RwLock;

use drc_cluster::NodeId;

use crate::block::BlockKey;

/// A DataNode holding block replicas in memory.
///
/// The node tracks how many bytes it has served and received, which the
/// RaidNode and the file-system facade use to account network traffic.
#[derive(Debug)]
pub struct DataNode {
    id: NodeId,
    blocks: RwLock<BTreeMap<BlockKey, Bytes>>,
    bytes_served: RwLock<u64>,
    bytes_received: RwLock<u64>,
}

impl DataNode {
    /// Creates an empty DataNode.
    pub fn new(id: NodeId) -> Self {
        DataNode {
            id,
            blocks: RwLock::new(BTreeMap::new()),
            bytes_served: RwLock::new(0),
            bytes_received: RwLock::new(0),
        }
    }

    /// The cluster node this DataNode runs on.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Stores (or overwrites) a block replica.
    pub fn store(&self, key: BlockKey, data: Bytes) {
        *self.bytes_received.write() += data.len() as u64;
        self.blocks.write().insert(key, data);
    }

    /// Reads a block replica, if present, counting the bytes as served.
    pub fn read(&self, key: &BlockKey) -> Option<Bytes> {
        let data = self.blocks.read().get(key).cloned();
        if let Some(d) = &data {
            *self.bytes_served.write() += d.len() as u64;
        }
        data
    }

    /// Returns `true` if the node holds a replica of the block.
    pub fn contains(&self, key: &BlockKey) -> bool {
        self.blocks.read().contains_key(key)
    }

    /// Deletes a block replica, returning whether it was present.
    pub fn delete(&self, key: &BlockKey) -> bool {
        self.blocks.write().remove(key).is_some()
    }

    /// Removes every block (simulates a disk wipe on permanent failure).
    pub fn wipe(&self) {
        self.blocks.write().clear();
    }

    /// Number of block replicas stored.
    pub fn block_count(&self) -> usize {
        self.blocks.read().len()
    }

    /// Total bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.blocks.read().values().map(|b| b.len() as u64).sum()
    }

    /// Bytes served to readers so far.
    pub fn bytes_served(&self) -> u64 {
        *self.bytes_served.read()
    }

    /// Bytes received from writers and repairs so far.
    pub fn bytes_received(&self) -> u64 {
        *self.bytes_received.read()
    }

    /// The keys of every block stored on this node.
    pub fn block_keys(&self) -> Vec<BlockKey> {
        self.blocks.read().keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namenode::FileId;

    fn key(stripe: usize, block: usize) -> BlockKey {
        BlockKey::new(FileId(1), stripe, block)
    }

    #[test]
    fn store_read_delete_cycle() {
        let dn = DataNode::new(NodeId(3));
        assert_eq!(dn.id(), NodeId(3));
        assert_eq!(dn.block_count(), 0);
        dn.store(key(0, 0), Bytes::from(vec![1u8, 2, 3]));
        dn.store(key(0, 1), Bytes::from(vec![4u8; 10]));
        assert_eq!(dn.block_count(), 2);
        assert_eq!(dn.used_bytes(), 13);
        assert!(dn.contains(&key(0, 0)));
        assert_eq!(dn.read(&key(0, 0)).unwrap().as_ref(), &[1, 2, 3]);
        assert!(dn.read(&key(9, 9)).is_none());
        assert!(dn.delete(&key(0, 0)));
        assert!(!dn.delete(&key(0, 0)));
        assert_eq!(dn.block_count(), 1);
        assert_eq!(dn.block_keys(), vec![key(0, 1)]);
        dn.wipe();
        assert_eq!(dn.block_count(), 0);
    }

    #[test]
    fn traffic_counters() {
        let dn = DataNode::new(NodeId(0));
        dn.store(key(0, 0), Bytes::from(vec![0u8; 100]));
        assert_eq!(dn.bytes_received(), 100);
        assert_eq!(dn.bytes_served(), 0);
        let _ = dn.read(&key(0, 0));
        let _ = dn.read(&key(0, 0));
        assert_eq!(dn.bytes_served(), 200);
        // Misses don't count.
        let _ = dn.read(&key(1, 1));
        assert_eq!(dn.bytes_served(), 200);
    }
}
