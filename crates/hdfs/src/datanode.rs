//! A simulated DataNode: stores block replicas and serves reads as timed
//! events on its node's disk and NIC in the cluster-wide [`ClusterNet`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use drc_cluster::NodeId;
use drc_sim::{ClusterNet, NodeIo, Reservation, Resource, SimTime};

use crate::block::BlockKey;

/// A DataNode holding block replicas in memory.
///
/// The node tracks how many bytes it has served and received (lock-free
/// atomics — reads are concurrent once the event-driven substrate overlaps
/// them), which the RaidNode and the file-system facade use to account
/// network traffic. Its I/O resources (disk + NIC) are *handles into the
/// cluster-wide [`ClusterNet`]*, not private copies: every store/read is a
/// timed event on the same resources other layers reserve, so repair
/// traffic, degraded reads and a MapReduce job's shuffle fetches all queue
/// on the same disks and links. The returned [`Reservation`] says when the
/// operation starts and finishes in virtual time.
#[derive(Debug)]
pub struct DataNode {
    id: NodeId,
    net: Arc<ClusterNet>,
    blocks: RwLock<BTreeMap<BlockKey, Bytes>>,
    bytes_served: AtomicU64,
    bytes_received: AtomicU64,
}

impl DataNode {
    /// Creates an empty DataNode whose I/O happens on `net`'s resources for
    /// this node id.
    pub fn new(id: NodeId, net: Arc<ClusterNet>) -> Self {
        DataNode {
            id,
            net,
            blocks: RwLock::new(BTreeMap::new()),
            bytes_served: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
        }
    }

    /// The cluster node this DataNode runs on.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's modeled I/O resources (disk and NIC) in the shared
    /// [`ClusterNet`].
    pub fn io(&self) -> &NodeIo {
        self.net.node(self.id)
    }

    /// Stores (or overwrites) a block replica.
    pub fn store(&self, key: BlockKey, data: Bytes) {
        self.bytes_received
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.blocks.write().insert(key, data);
    }

    /// Stores a block replica as a timed event issued at `now`: the incoming
    /// bytes traverse the shared `fabric` and the node's NIC, then land on
    /// its disk — the write finishes at the reservation's end. This is the
    /// store path the file system's write and repair passes use.
    pub fn store_timed(
        &self,
        key: BlockKey,
        data: Bytes,
        now: SimTime,
        fabric: &Resource,
    ) -> Reservation {
        let res = drc_sim::push_to(now, self.io(), fabric, data.len() as u64);
        self.store(key, data);
        res
    }

    /// Reads a block replica, if present, counting the bytes as served.
    pub fn read(&self, key: &BlockKey) -> Option<Bytes> {
        let data = self.blocks.read().get(key).cloned();
        if let Some(d) = &data {
            self.bytes_served
                .fetch_add(d.len() as u64, Ordering::Relaxed);
        }
        data
    }

    /// Reads a block replica as a timed event issued at `now`: the read
    /// occupies the node's disk and streams out through its NIC and the
    /// shared `fabric`, queueing behind earlier I/O. This is the read path
    /// the file system's replica reads and decode fetches use.
    ///
    /// Misses cost nothing (the node answers from metadata).
    pub fn read_timed(
        &self,
        key: &BlockKey,
        now: SimTime,
        fabric: &Resource,
    ) -> Option<(Bytes, Reservation)> {
        let data = self.read(key)?;
        let res = drc_sim::pull_from(now, self.io(), fabric, data.len() as u64);
        Some((data, res))
    }

    /// Reads a block replica *without* counting it as served.
    ///
    /// The streaming repair path gathers payload handles up front but
    /// accounts traffic per modeled transfer (only what the repair plan
    /// actually moves), so the gather itself must be accounting-neutral;
    /// pair with [`DataNode::record_served`] for each modeled transfer.
    pub fn peek(&self, key: &BlockKey) -> Option<Bytes> {
        self.blocks.read().get(key).cloned()
    }

    /// Counts `bytes` as served by this node, for callers that model a
    /// transfer's traffic separately from fetching the payload handle
    /// (see [`DataNode::peek`]).
    pub fn record_served(&self, bytes: u64) {
        self.bytes_served.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Returns `true` if the node holds a replica of the block.
    pub fn contains(&self, key: &BlockKey) -> bool {
        self.blocks.read().contains_key(key)
    }

    /// Deletes a block replica, returning whether it was present.
    pub fn delete(&self, key: &BlockKey) -> bool {
        self.blocks.write().remove(key).is_some()
    }

    /// Removes every block (simulates a disk wipe on permanent failure).
    ///
    /// Sole-owner payloads go back to the block pool (see
    /// [`drc_gf::bufpool`]); replicas still referenced elsewhere just drop
    /// their handle here.
    pub fn wipe(&self) {
        let blocks = std::mem::take(&mut *self.blocks.write());
        recycle_payloads(blocks);
    }

    /// Number of block replicas stored.
    pub fn block_count(&self) -> usize {
        self.blocks.read().len()
    }

    /// Total bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.blocks.read().values().map(|b| b.len() as u64).sum()
    }

    /// Bytes served to readers so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served.load(Ordering::Relaxed)
    }

    /// Bytes received from writers and repairs so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// The keys of every block stored on this node.
    pub fn block_keys(&self) -> Vec<BlockKey> {
        self.blocks.read().keys().copied().collect()
    }
}

impl Drop for DataNode {
    /// Returns every sole-owner payload to the block pool, so dropping one
    /// simulation cell's file system funds the next cell's writes instead
    /// of handing gigabytes back to the allocator.
    fn drop(&mut self) {
        let blocks = std::mem::take(self.blocks.get_mut());
        recycle_payloads(blocks);
    }
}

/// Recycles the sole-owner payloads of a drained block map.
///
/// A block replicated on several nodes is the same `Bytes` handle on each;
/// only the last handle standing unwraps, so every allocation is recycled
/// exactly once.
fn recycle_payloads(blocks: BTreeMap<BlockKey, Bytes>) {
    for (_, payload) in blocks {
        if let Ok(buf) = payload.try_unwrap() {
            drc_gf::bufpool::recycle(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namenode::FileId;

    fn key(stripe: usize, block: usize) -> BlockKey {
        BlockKey::new(FileId(1), stripe, block)
    }

    fn node(id: usize) -> DataNode {
        let net = Arc::new(ClusterNet::new(&drc_cluster::ClusterSpec::simulation_25(4)));
        DataNode::new(NodeId(id), net)
    }

    #[test]
    fn store_read_delete_cycle() {
        let dn = node(3);
        assert_eq!(dn.id(), NodeId(3));
        assert_eq!(dn.block_count(), 0);
        dn.store(key(0, 0), Bytes::from(vec![1u8, 2, 3]));
        dn.store(key(0, 1), Bytes::from(vec![4u8; 10]));
        assert_eq!(dn.block_count(), 2);
        assert_eq!(dn.used_bytes(), 13);
        assert!(dn.contains(&key(0, 0)));
        assert_eq!(dn.read(&key(0, 0)).unwrap().as_ref(), &[1, 2, 3]);
        assert!(dn.read(&key(9, 9)).is_none());
        assert!(dn.delete(&key(0, 0)));
        assert!(!dn.delete(&key(0, 0)));
        assert_eq!(dn.block_count(), 1);
        assert_eq!(dn.block_keys(), vec![key(0, 1)]);
        dn.wipe();
        assert_eq!(dn.block_count(), 0);
    }

    #[test]
    fn traffic_counters() {
        let dn = node(0);
        dn.store(key(0, 0), Bytes::from(vec![0u8; 100]));
        assert_eq!(dn.bytes_received(), 100);
        assert_eq!(dn.bytes_served(), 0);
        let _ = dn.read(&key(0, 0));
        let _ = dn.read(&key(0, 0));
        assert_eq!(dn.bytes_served(), 200);
        // Misses don't count.
        let _ = dn.read(&key(1, 1));
        assert_eq!(dn.bytes_served(), 200);
        // Peeks are accounting-neutral; record_served backfills explicitly.
        assert_eq!(dn.peek(&key(0, 0)).unwrap().len(), 100);
        assert_eq!(dn.bytes_served(), 200);
        dn.record_served(50);
        assert_eq!(dn.bytes_served(), 250);
    }

    #[test]
    fn timed_io_queues_on_the_node_resources() {
        let dn = node(1);
        let fabric = Resource::new(0.0); // infinitely fast LAN for this test
        let mib = 1024 * 1024;
        // simulation_25: 100 MiB/s disks, 60 MiB/s NICs — a 100 MiB store is
        // NIC-bound at 100/60 s.
        let w = dn.store_timed(
            key(0, 0),
            Bytes::from(vec![7u8; 100 * mib]),
            SimTime::ZERO,
            &fabric,
        );
        assert!((w.duration().as_secs_f64() - 100.0 / 60.0).abs() < 1e-6);
        let (data, r) = dn.read_timed(&key(0, 0), SimTime::ZERO, &fabric).unwrap();
        assert_eq!(data.len(), 100 * mib);
        assert_eq!(r.start, w.end, "the read queues behind the write");
        assert!(dn.read_timed(&key(5, 5), SimTime::ZERO, &fabric).is_none());
    }

    #[test]
    fn counters_are_safe_under_concurrent_reads() {
        let dn = node(2);
        dn.store(key(0, 0), Bytes::from(vec![1u8; 1000]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let _ = dn.read(&key(0, 0));
                    }
                });
            }
        });
        assert_eq!(dn.bytes_served(), 4 * 100 * 1000);
    }
}
