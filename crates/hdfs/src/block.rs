//! Block identifiers used by the simulated file system.

use serde::{Deserialize, Serialize};

use crate::namenode::FileId;

/// Globally unique identifier of one distinct coded block: the file it
/// belongs to, the stripe within the file, and the distinct-block index
/// within the stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockKey {
    /// Owning file.
    pub file: FileId,
    /// Stripe index within the file.
    pub stripe: usize,
    /// Distinct-block index within the stripe (`< k` for data blocks).
    pub block: usize,
}

impl BlockKey {
    /// Creates a block key.
    pub fn new(file: FileId, stripe: usize, block: usize) -> Self {
        BlockKey {
            file,
            stripe,
            block,
        }
    }

    /// Returns `true` if this is a data block of a code with `k` data blocks
    /// per stripe.
    pub fn is_data(&self, data_blocks_per_stripe: usize) -> bool {
        self.block < data_blocks_per_stripe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_data_classification() {
        let a = BlockKey::new(FileId(0), 0, 1);
        let b = BlockKey::new(FileId(0), 1, 0);
        assert!(a < b);
        assert!(a.is_data(9));
        assert!(!BlockKey::new(FileId(0), 0, 9).is_data(9));
    }
}
