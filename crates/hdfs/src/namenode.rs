//! The simulated NameNode: the file namespace, the block→location map and
//! heartbeat-based liveness detection.
//!
//! Failure *detection* is distinct from failure *occurrence*: a node that
//! fail-stops at virtual instant `t` only stops heartbeating at `t`; the
//! NameNode declares it dead once a configurable timeout has elapsed without
//! a heartbeat (the file-system facade drives that as a timed event). The
//! window `[t, t + timeout)` is the **detection lag** — half-open, like every
//! interval on the substrate's `Timeline`: the node is silent *at* `t` and
//! declared dead *at* `t + timeout`, at which instant repairs are already
//! being enqueued.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use drc_cluster::{NodeId, NodeList, PlacementMap};
use drc_codes::CodeKind;
use drc_sim::SimTime;

use crate::block::BlockKey;
use crate::HdfsError;

/// Identifier of a file in the namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FileId(pub u64);

/// Metadata the NameNode keeps for one file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMetadata {
    /// The file id.
    pub id: FileId,
    /// The file's name (unique within the namespace).
    pub name: String,
    /// Logical file size in bytes (before padding).
    pub size: u64,
    /// Block size used when striping the file.
    pub block_size: u64,
    /// The coding scheme protecting the file.
    pub code: CodeKind,
    /// Number of stripes.
    pub stripes: usize,
    /// Number of data blocks per stripe.
    pub data_blocks_per_stripe: usize,
    /// The virtual instant the file's write was issued (the event-driven
    /// substrate's clock; writes before the substrate existed read as zero).
    pub created_at: SimTime,
    /// The stripe→cluster-node placement, shared (the engine clones file
    /// metadata freely; at 10M blocks the placement must not be deep-copied).
    pub placement: Arc<PlacementMap>,
}

impl FileMetadata {
    /// Number of data blocks that actually carry file content (the final
    /// stripe may be partially filled with padding blocks).
    pub fn content_blocks(&self) -> usize {
        (self.size as usize).div_ceil(self.block_size as usize)
    }

    /// The cluster nodes holding a replica of the given block.
    ///
    /// # Errors
    ///
    /// Returns the placement's [`drc_cluster::ClusterError::UnknownBlock`]
    /// (wrapped in [`HdfsError::Cluster`]) for out-of-range indices —
    /// unknown blocks are an error, never an empty location list.
    pub fn block_locations(&self, stripe: usize, block: usize) -> Result<NodeList, HdfsError> {
        Ok(self
            .placement
            .locations(drc_cluster::GlobalBlockId::new(stripe, block))?)
    }

    /// The keys of the data blocks that carry file content, in file order.
    pub fn content_block_keys(&self) -> Vec<BlockKey> {
        (0..self.content_blocks())
            .map(|i| BlockKey {
                file: self.id,
                stripe: i / self.data_blocks_per_stripe,
                block: i % self.data_blocks_per_stripe,
            })
            .collect()
    }
}

/// The file namespace plus block-location and liveness bookkeeping.
#[derive(Debug, Default)]
pub struct NameNode {
    files: BTreeMap<FileId, FileMetadata>,
    by_name: BTreeMap<String, FileId>,
    next_id: u64,
    /// Nodes whose heartbeats stopped, keyed to the instant of the first
    /// missed heartbeat. Cleared when the node heartbeats again or is
    /// declared dead and repaired.
    silent_since: BTreeMap<NodeId, SimTime>,
    /// Nodes declared dead (detection timeout elapsed), keyed to the
    /// detection instant.
    dead_since: BTreeMap<NodeId, SimTime>,
}

impl NameNode {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        NameNode::default()
    }

    /// Registers a new file and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`HdfsError::FileExists`] if the name is already taken.
    // One parameter per FileMetadata field the caller decides; a builder
    // would only restate this signature.
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        name: &str,
        size: u64,
        block_size: u64,
        code: CodeKind,
        data_blocks_per_stripe: usize,
        created_at: SimTime,
        placement: PlacementMap,
    ) -> Result<FileId, HdfsError> {
        if self.by_name.contains_key(name) {
            return Err(HdfsError::FileExists {
                name: name.to_string(),
            });
        }
        let id = FileId(self.next_id);
        self.next_id += 1;
        let meta = FileMetadata {
            id,
            name: name.to_string(),
            size,
            block_size,
            code,
            stripes: placement.stripe_count(),
            data_blocks_per_stripe,
            created_at,
            placement: Arc::new(placement),
        };
        self.files.insert(id, meta);
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a file by id.
    ///
    /// # Errors
    ///
    /// Returns [`HdfsError::FileNotFound`] if the id is unknown.
    pub fn file(&self, id: FileId) -> Result<&FileMetadata, HdfsError> {
        self.files
            .get(&id)
            .ok_or_else(|| HdfsError::file_not_found(id))
    }

    /// Looks up a file by name.
    ///
    /// # Errors
    ///
    /// Returns [`HdfsError::FileNotFound`] if the name is unknown.
    pub fn file_by_name(&self, name: &str) -> Result<&FileMetadata, HdfsError> {
        self.by_name
            .get(name)
            .and_then(|id| self.files.get(id))
            .ok_or_else(|| HdfsError::FileNotFound {
                file: name.to_string(),
            })
    }

    /// Removes a file from the namespace, returning its metadata.
    ///
    /// # Errors
    ///
    /// Returns [`HdfsError::FileNotFound`] if the id is unknown.
    pub fn unregister(&mut self, id: FileId) -> Result<FileMetadata, HdfsError> {
        let meta = self
            .files
            .remove(&id)
            .ok_or_else(|| HdfsError::file_not_found(id))?;
        self.by_name.remove(&meta.name);
        Ok(meta)
    }

    /// Iterates over every file's metadata.
    pub fn iter(&self) -> impl Iterator<Item = &FileMetadata> {
        self.files.values()
    }

    /// Number of files in the namespace.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Returns `true` if the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Records that `node`'s heartbeats stopped arriving at `at` (the
    /// node failed, but the NameNode does not *know* yet — detection only
    /// happens once the timeout elapses). A node already silent keeps its
    /// original silence instant.
    pub fn heartbeat_lost(&mut self, node: NodeId, at: SimTime) {
        self.silent_since.entry(node).or_insert(at);
    }

    /// Records that `node` is heartbeating again (it recovered, or a repair
    /// re-provisioned it): it is no longer silent nor dead.
    pub fn heartbeat_restored(&mut self, node: NodeId) {
        self.silent_since.remove(&node);
        self.dead_since.remove(&node);
    }

    /// The instant `node` went silent, if its heartbeats are still missing.
    pub fn silent_since(&self, node: NodeId) -> Option<SimTime> {
        self.silent_since.get(&node).copied()
    }

    /// Declares `node` dead at `at` (its detection timeout elapsed with no
    /// heartbeat). Repairs for its blocks are now enqueueable.
    pub fn declare_dead(&mut self, node: NodeId, at: SimTime) {
        self.dead_since.entry(node).or_insert(at);
    }

    /// Returns `true` if the NameNode has declared `node` dead (and no
    /// heartbeat or repair has revived it since).
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead_since.contains_key(&node)
    }

    /// The nodes currently declared dead, in id order.
    pub fn dead_nodes(&self) -> Vec<NodeId> {
        self.dead_since.keys().copied().collect()
    }

    /// Every block key (of every file) whose replica set includes `node` —
    /// the NameNode's answer to "which blocks did we lose when this node
    /// died?".
    ///
    /// A node no placement knows about (outside every file's node universe)
    /// hosts nothing by definition, so it reports an empty answer rather
    /// than an error — the NameNode outlives any single cluster size.
    pub fn blocks_on_node(&self, node: NodeId) -> Vec<BlockKey> {
        let mut out = Vec::new();
        for meta in self.files.values() {
            if node.0 >= meta.placement.node_universe() {
                continue;
            }
            meta.placement
                .for_each_block_on_node(node, |gb| {
                    out.push(BlockKey {
                        file: meta.id,
                        stripe: gb.stripe(),
                        block: gb.block(),
                    });
                })
                // drc-lint: allow(panic-hygiene): the `continue` above filters nodes
                // outside the universe, the only for_each_block_on_node error.
                .expect("node is inside this placement's universe");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drc_cluster::{Cluster, ClusterSpec, PlacementPolicy};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn placement(stripes: usize) -> PlacementMap {
        let cluster = Cluster::new(ClusterSpec::simulation_25(2));
        let code = CodeKind::Pentagon.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn register_lookup_unregister() {
        let mut nn = NameNode::new();
        assert!(nn.is_empty());
        let id = nn
            .register(
                "/data/a",
                1000,
                128,
                CodeKind::Pentagon,
                9,
                SimTime::ZERO,
                placement(2),
            )
            .unwrap();
        assert_eq!(nn.len(), 1);
        assert_eq!(nn.file(id).unwrap().name, "/data/a");
        assert_eq!(nn.file_by_name("/data/a").unwrap().id, id);
        assert!(nn.file_by_name("/nope").is_err());
        assert!(nn
            .register(
                "/data/a",
                10,
                128,
                CodeKind::TWO_REP,
                1,
                SimTime::ZERO,
                placement(1)
            )
            .is_err());
        let meta = nn.unregister(id).unwrap();
        assert_eq!(meta.id, id);
        assert!(nn.file(id).is_err());
        assert!(nn.unregister(id).is_err());
    }

    #[test]
    fn metadata_block_math() {
        let mut nn = NameNode::new();
        let id = nn
            .register(
                "/f",
                1000,
                128,
                CodeKind::Pentagon,
                9,
                SimTime::ZERO,
                placement(2),
            )
            .unwrap();
        let meta = nn.file(id).unwrap();
        assert_eq!(meta.content_blocks(), 8); // ceil(1000 / 128)
        assert_eq!(meta.stripes, 2);
        let keys = meta.content_block_keys();
        assert_eq!(keys.len(), 8);
        assert!(keys.iter().all(|k| k.stripe == 0 && k.block < 9));
        assert_eq!(meta.block_locations(0, 0).unwrap().len(), 2);
        assert!(meta.block_locations(99, 0).is_err());
    }

    #[test]
    fn heartbeat_lifecycle_tracks_silence_and_death() {
        let mut nn = NameNode::new();
        let n = NodeId(4);
        assert_eq!(nn.silent_since(n), None);
        assert!(!nn.is_dead(n));
        nn.heartbeat_lost(n, SimTime(100));
        // A repeated loss keeps the original silence instant.
        nn.heartbeat_lost(n, SimTime(500));
        assert_eq!(nn.silent_since(n), Some(SimTime(100)));
        nn.declare_dead(n, SimTime(700));
        assert!(nn.is_dead(n));
        assert_eq!(nn.dead_nodes(), vec![n]);
        // A heartbeat (recovery or repair) clears both states.
        nn.heartbeat_restored(n);
        assert_eq!(nn.silent_since(n), None);
        assert!(!nn.is_dead(n));
        assert!(nn.dead_nodes().is_empty());
    }

    #[test]
    fn blocks_on_node_reports_all_files() {
        let mut nn = NameNode::new();
        let p = placement(3);
        let node = p.stripe_hosts(0).unwrap()[0];
        nn.register("/x", 100, 10, CodeKind::Pentagon, 9, SimTime::ZERO, p)
            .unwrap();
        let blocks = nn.blocks_on_node(node);
        // The node hosts one pentagon stripe-node => 4 blocks of stripe 0
        // (possibly more from other stripes of the same file).
        assert!(blocks.len() >= 4);
        assert!(blocks.iter().all(|b| b.file == FileId(0)));
        assert_eq!(nn.iter().count(), 1);
    }
}
