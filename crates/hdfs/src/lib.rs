//! A simulated HDFS with erasure-coded striping (the HDFS-RAID role).
//!
//! The paper's experiments run on Hadoop 0.20 with Facebook's HDFS-RAID
//! module, extended to support the array nature of the pentagon and heptagon
//! codes. This crate is the reproduction's stand-in for that storage layer:
//!
//! * [`NameNode`] — file namespace and block→location metadata,
//! * [`DataNode`] — in-memory block replica storage with lock-free traffic
//!   counters and timed, resource-modeled disk I/O,
//! * [`DistributedFileSystem`] — the client write/read path (striping,
//!   encoding, degraded reads) and the RaidNode repair pass, all of which
//!   operate on real block payloads so every reconstruction is verified
//!   byte-for-byte,
//! * network-byte accounting that follows the codes' repair and degraded-read
//!   plans (including the partial-parity savings of §2.1/§3.1).
//!
//! Since PR 2 the layer runs on the event-driven substrate of `drc_sim`:
//! reads, writes and repair transfers are issued as timed events against
//! modeled disk/NIC/fabric bandwidth, so repair passes and degraded reads
//! *overlap* in virtual time and contend for the same resources (see the
//! timeline machinery on [`DistributedFileSystem`]). Byte accounting is
//! unchanged and independent of both the virtual clock and the worker-pool
//! thread count (`DRC_SIM_THREADS`).
//!
//! # Example
//!
//! ```
//! use drc_cluster::ClusterSpec;
//! use drc_codes::CodeKind;
//! use drc_hdfs::DistributedFileSystem;
//!
//! # fn main() -> Result<(), drc_hdfs::HdfsError> {
//! let mut spec = ClusterSpec::simulation_25(4);
//! spec.block_size_mb = 1; // keep the example light
//! let mut fs = DistributedFileSystem::new(spec, 7);
//! let data = vec![42u8; 2 * 1024 * 1024];
//! let id = fs.write_file("/demo", &data, CodeKind::Pentagon)?;
//! assert_eq!(fs.read_file(id)?, data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod datanode;
mod error;
mod fs;
mod namenode;

pub use block::BlockKey;
pub use datanode::DataNode;
pub use error::HdfsError;
pub use fs::{
    DistributedFileSystem, FsStats, RepairReport, DEFAULT_DETECTION_TIMEOUT,
    DEFAULT_REPAIR_CHUNK_BYTES,
};
pub use namenode::{FileId, FileMetadata, NameNode};
