use std::fmt;

use drc_cluster::ClusterError;
use drc_codes::CodeError;

use crate::block::BlockKey;
use crate::namenode::FileId;

/// Errors produced by the simulated distributed file system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HdfsError {
    /// The file id or path does not exist.
    FileNotFound {
        /// Description of the missing file (id or name).
        file: String,
    },
    /// A file with the same name already exists.
    FileExists {
        /// The conflicting name.
        name: String,
    },
    /// A block could not be found on any live DataNode and could not be
    /// reconstructed.
    BlockUnavailable {
        /// The block in question.
        block: BlockKey,
        /// Explanation (e.g. the underlying code error).
        reason: String,
    },
    /// A DataNode id is unknown or down when it must be up.
    DataNodeUnavailable {
        /// The node index.
        node: usize,
    },
    /// An empty file or invalid write request.
    InvalidRequest {
        /// Explanation of the problem.
        reason: String,
    },
    /// The underlying erasure code reported an error.
    Code(CodeError),
    /// The underlying cluster/placement layer reported an error.
    Cluster(ClusterError),
}

impl fmt::Display for HdfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdfsError::FileNotFound { file } => write!(f, "file not found: {file}"),
            HdfsError::FileExists { name } => write!(f, "file already exists: {name}"),
            HdfsError::BlockUnavailable { block, reason } => write!(
                f,
                "block (file {}, stripe {}, block {}) unavailable: {reason}",
                block.file.0, block.stripe, block.block
            ),
            HdfsError::DataNodeUnavailable { node } => write!(f, "datanode {node} unavailable"),
            HdfsError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            HdfsError::Code(e) => write!(f, "erasure code error: {e}"),
            HdfsError::Cluster(e) => write!(f, "cluster error: {e}"),
        }
    }
}

impl std::error::Error for HdfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HdfsError::Code(e) => Some(e),
            HdfsError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodeError> for HdfsError {
    fn from(e: CodeError) -> Self {
        HdfsError::Code(e)
    }
}

impl From<ClusterError> for HdfsError {
    fn from(e: ClusterError) -> Self {
        HdfsError::Cluster(e)
    }
}

impl HdfsError {
    /// Convenience constructor for a missing file id.
    pub fn file_not_found(id: FileId) -> Self {
        HdfsError::FileNotFound {
            file: format!("file id {}", id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_sources() {
        use std::error::Error;
        let errs = vec![
            HdfsError::file_not_found(FileId(3)),
            HdfsError::FileExists { name: "a".into() },
            HdfsError::BlockUnavailable {
                block: BlockKey {
                    file: FileId(1),
                    stripe: 0,
                    block: 2,
                },
                reason: "all replicas down".into(),
            },
            HdfsError::DataNodeUnavailable { node: 4 },
            HdfsError::InvalidRequest {
                reason: "empty".into(),
            },
            HdfsError::Code(CodeError::UnequalBlockLengths),
            HdfsError::Cluster(ClusterError::UnknownNode { node: 9 }),
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(errs[5].source().is_some());
        assert!(errs[0].source().is_none());
    }
}
