//! Encoding-duration benchmark (§5): encode one stripe of real payload per
//! code and measure the throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use drc_core::codes::CodeKind;

const BLOCK_BYTES: usize = 256 * 1024;

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding_duration");
    group.sample_size(20);

    let mut kinds = vec![CodeKind::TWO_REP];
    kinds.extend(CodeKind::table1_set());
    kinds.push(CodeKind::ReedSolomon {
        data: 10,
        parity: 4,
    });
    for kind in kinds {
        let code = kind.build().expect("builds");
        let k = code.data_blocks();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..BLOCK_BYTES).map(|j| (i + j) as u8).collect())
            .collect();
        group.throughput(Throughput::Bytes((k * BLOCK_BYTES) as u64));
        group.bench_with_input(
            BenchmarkId::new("encode_stripe", kind.to_string()),
            &data,
            |b, data| b.iter(|| code.encode(data).expect("encodes")),
        );
    }
    group.finish();
}

fn bench_decoding(c: &mut Criterion) {
    use std::collections::BTreeMap;
    let mut group = c.benchmark_group("decoding_after_two_failures");
    group.sample_size(20);

    for kind in [
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
    ] {
        let code = kind.build().expect("builds");
        let k = code.data_blocks();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..BLOCK_BYTES).map(|j| (i * 3 + j) as u8).collect())
            .collect();
        let coded = code.encode(&data).expect("encodes");
        // Lose the first two nodes' blocks.
        let failed: std::collections::BTreeSet<usize> = [0, 1].into_iter().collect();
        let mut available: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
        for node in 2..code.node_count() {
            for &b in code.node_blocks(node) {
                available.insert(b, coded[b].clone());
            }
        }
        assert!(code.can_recover(&failed));
        group.throughput(Throughput::Bytes((k * BLOCK_BYTES) as u64));
        group.bench_with_input(
            BenchmarkId::new("decode_stripe", kind.to_string()),
            &available,
            |b, available| b.iter(|| code.decode(available, BLOCK_BYTES).expect("decodes")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encoding, bench_decoding);
criterion_main!(benches);
