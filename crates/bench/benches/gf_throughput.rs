//! Galois-field substrate micro-benchmarks: bulk XOR, multiply-accumulate and
//! Reed–Solomon encode/reconstruct throughput, per kernel variant.
//!
//! Run as a normal criterion bench (`cargo bench --bench gf_throughput`), or
//! with a `repro` argument (`cargo bench --bench gf_throughput -- repro`) to
//! emit `BENCH_gf.json` — bytes/sec per kernel per operation (including
//! worst-case RS(10,4) reconstruct pinned to each kernel via
//! `kernel::with_forced`) plus RS(10,4) stripe-encode throughput — so the
//! perf trajectory is tracked across PRs.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};

use drc_gf::kernel::{self, Kernel};
use drc_gf::{slice, Matrix, ReedSolomon};

const BUF: usize = 1024 * 1024;

fn make_src(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + 7) as u8).collect()
}

fn bench_slice_ops(c: &mut Criterion) {
    for kern in kernel::all() {
        let mut group = c.benchmark_group(format!("gf_slice_ops/{}", kern.name()));
        group.throughput(Throughput::Bytes(BUF as u64));
        let src = make_src(BUF);
        group.bench_function("xor_assign_1MiB", |b| {
            let mut dst = vec![0u8; BUF];
            b.iter(|| kern.xor_assign(&mut dst, &src))
        });
        group.bench_function("mul_acc_1MiB", |b| {
            let mut dst = vec![0u8; BUF];
            b.iter(|| kern.mul_acc(&mut dst, &src, 0x1d))
        });
        group.bench_function("scale_assign_1MiB", |b| {
            let mut dst = make_src(BUF);
            b.iter(|| kern.scale_assign(&mut dst, 0x1d))
        });
        group.finish();
    }
}

fn bench_reconstruct_per_kernel(c: &mut Criterion) {
    // Worst-case RS(10,4) reconstruction (4 data shards lost) pinned to each
    // kernel in turn via `kernel::with_forced`, so BENCH_gf.json tracks
    // reconstruct throughput for every variant, not just the auto-selected
    // one. The pin is process-wide, so the pool workers the parallel split
    // engages run the pinned kernel too.
    let rs = ReedSolomon::new(10, 4).expect("valid parameters");
    let shard = 64 * 1024;
    let data: Vec<Vec<u8>> = (0..10u8)
        .map(|i| make_src(shard).iter().map(|b| b.wrapping_add(i)).collect())
        .collect();
    let coded = rs.encode(&data).expect("encodes");
    let present: Vec<Option<&[u8]>> = coded
        .iter()
        .enumerate()
        .map(|(i, s)| (i >= 4).then_some(s.as_slice()))
        .collect();
    let mut group = c.benchmark_group("gf_reconstruct");
    group.throughput(Throughput::Bytes((10 * shard) as u64));
    for kern in kernel::all() {
        let mut out = vec![vec![0u8; shard]; 14];
        group.bench_function(kern.name(), |b| {
            kernel::with_forced(kern, || {
                b.iter(|| {
                    rs.reconstruct_into(&present, shard, &mut out)
                        .expect("reconstructs")
                })
            })
        });
    }
    group.finish();
}

fn bench_fused_encode(c: &mut Criterion) {
    // The fused cache-blocked matrix product vs row-by-row mul_acc, on an
    // RS(10,4)-shaped parity computation over 10 x 64 KiB shards.
    let rs = ReedSolomon::new(10, 4).expect("valid parameters");
    let shard = 64 * 1024;
    let data: Vec<Vec<u8>> = (0..10).map(|_| make_src(shard)).collect();
    let coeffs = rs.generator().rows_flat(10, 14).to_vec();
    let mut group = c.benchmark_group("gf_fused");
    group.throughput(Throughput::Bytes((10 * shard) as u64));
    group.bench_function("matrix_mul_into_rs(10,4)_64KiB", |b| {
        let mut outs = vec![vec![0u8; shard]; 4];
        b.iter(|| slice::matrix_mul_into(&coeffs, 10, &data, &mut outs))
    });
    group.bench_function("row_by_row_rs(10,4)_64KiB", |b| {
        let mut outs = vec![vec![0u8; shard]; 4];
        b.iter(|| {
            for (p, out) in outs.iter_mut().enumerate() {
                slice::linear_combination_into(&coeffs[p * 10..(p + 1) * 10], &data, out);
            }
        })
    });
    group.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_reed_solomon");
    group.sample_size(20);
    for (k, m) in [(9usize, 1usize), (10, 4), (40, 2)] {
        let rs = ReedSolomon::new(k, m).expect("valid parameters");
        let shard = 64 * 1024;
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; shard]).collect();
        group.throughput(Throughput::Bytes((k * shard) as u64));
        group.bench_with_input(
            BenchmarkId::new("encode", format!("rs({k},{m})")),
            &data,
            |b, data| b.iter(|| rs.encode(data).expect("encodes")),
        );
        group.bench_with_input(
            BenchmarkId::new("encode_into", format!("rs({k},{m})")),
            &data,
            |b, data| {
                let mut parity = vec![vec![0u8; shard]; m];
                b.iter(|| rs.encode_into(data, &mut parity).expect("encodes"))
            },
        );
        let coded = rs.encode(&data).expect("encodes");
        let present: Vec<Option<&[u8]>> = coded
            .iter()
            .enumerate()
            .map(|(i, s)| (i >= m).then_some(s.as_slice()))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("reconstruct_worst_case", format!("rs({k},{m})")),
            &present,
            |b, present| b.iter(|| rs.reconstruct(present, shard).expect("reconstructs")),
        );
        group.bench_with_input(
            BenchmarkId::new("reconstruct_into_worst_case", format!("rs({k},{m})")),
            &present,
            |b, present| {
                let mut out = vec![vec![0u8; shard]; k + m];
                b.iter(|| {
                    rs.reconstruct_into(present, shard, &mut out)
                        .expect("reconstructs")
                })
            },
        );
    }
    group.finish();
}

fn bench_matrix_inversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_matrix");
    for n in [9usize, 20, 40] {
        let rows: Vec<usize> = (0..n).collect();
        let m = Matrix::vandermonde(n + 4, n)
            .expect("valid dimensions")
            .select_rows(&rows);
        group.bench_with_input(BenchmarkId::new("invert", n), &m, |b, m| {
            b.iter(|| m.inverse().expect("invertible"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_slice_ops,
    bench_reconstruct_per_kernel,
    bench_fused_encode,
    bench_reed_solomon,
    bench_matrix_inversion
);

// ---------------------------------------------------------------------------
// `repro` mode: machine-readable kernel throughput for cross-PR tracking.
// ---------------------------------------------------------------------------

fn bps_value(m: &criterion::Measurement) -> serde_json::Value {
    match m.bytes_per_sec() {
        Some(bps) => serde_json::Value::Float(bps),
        None => serde_json::Value::Null,
    }
}

/// Runs the criterion benches and distils their measurements into
/// `BENCH_gf.json`, so the JSON and the human-readable bench output come
/// from one measurement harness (budget: `CRITERION_MEASURE_MS`).
fn repro() {
    let mut criterion = Criterion::default();
    bench_slice_ops(&mut criterion);
    bench_reconstruct_per_kernel(&mut criterion);
    bench_fused_encode(&mut criterion);
    bench_reed_solomon(&mut criterion);

    let mut kernels_json: Vec<(String, serde_json::Value)> = Vec::new();
    for kern in kernel::all() {
        let kern: &Kernel = kern;
        let prefix = format!("gf_slice_ops/{}/", kern.name());
        let mut ops: Vec<(String, serde_json::Value)> = criterion
            .measurements()
            .iter()
            .filter_map(|m| {
                let op = m.id.strip_prefix(&prefix)?.strip_suffix("_1MiB")?;
                Some((format!("{op}_bps"), bps_value(m)))
            })
            .collect();
        // RS(10,4) worst-case reconstruct throughput pinned to this kernel.
        let rec_id = format!("gf_reconstruct/{}", kern.name());
        if let Some(m) = criterion.measurements().iter().find(|m| m.id == rec_id) {
            ops.push(("reconstruct_bps".to_string(), bps_value(m)));
        }
        kernels_json.push((kern.name().to_string(), serde_json::Value::Map(ops)));
    }

    // RS(10,4) over 10 x 64 KiB shards — the HDFS-RAID configuration.
    let mut rs_json = vec![(
        "shard_bytes".to_string(),
        serde_json::Value::UInt(64 * 1024),
    )];
    for (key, id) in [
        ("encode_bps", "gf_reed_solomon/encode/rs(10,4)"),
        ("encode_into_bps", "gf_reed_solomon/encode_into/rs(10,4)"),
        (
            "reconstruct_bps",
            "gf_reed_solomon/reconstruct_worst_case/rs(10,4)",
        ),
    ] {
        let m = criterion
            .measurements()
            .iter()
            .find(|m| m.id == id)
            .expect("bench_reed_solomon ran");
        rs_json.push((key.to_string(), bps_value(m)));
    }

    let doc = serde_json::Value::Map(vec![
        (
            "active_kernel".into(),
            serde_json::Value::Str(kernel::active().name().into()),
        ),
        ("buffer_bytes".into(), serde_json::Value::UInt(BUF as u64)),
        ("kernels".into(), serde_json::Value::Map(kernels_json)),
        ("rs_10_4".into(), serde_json::Value::Map(rs_json)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write(drc_bench::GF_BENCH_JSON_PATH, &json).expect("writable BENCH_gf.json");
    println!("{json}");
    println!("wrote {}", drc_bench::GF_BENCH_JSON_PATH);
}

fn main() {
    if std::env::args().any(|a| a == "repro") {
        repro();
        return;
    }
    let mut criterion = Criterion::default();
    benches(&mut criterion);
}
