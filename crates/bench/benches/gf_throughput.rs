//! Galois-field substrate micro-benchmarks: bulk XOR, multiply-accumulate and
//! Reed–Solomon encode/reconstruct throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use drc_core::gf::{slice, Gf256, Matrix, ReedSolomon};

const BUF: usize = 1024 * 1024;

fn bench_slice_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_slice_ops");
    group.throughput(Throughput::Bytes(BUF as u64));
    let src: Vec<u8> = (0..BUF).map(|i| i as u8).collect();
    group.bench_function("xor_assign_1MiB", |b| {
        let mut dst = vec![0u8; BUF];
        b.iter(|| slice::xor_assign(&mut dst, &src))
    });
    group.bench_function("mul_acc_1MiB", |b| {
        let mut dst = vec![0u8; BUF];
        b.iter(|| slice::mul_acc(&mut dst, &src, Gf256::new(0x1d)))
    });
    group.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_reed_solomon");
    group.sample_size(20);
    for (k, m) in [(9usize, 1usize), (10, 4), (40, 2)] {
        let rs = ReedSolomon::new(k, m).expect("valid parameters");
        let shard = 64 * 1024;
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; shard]).collect();
        group.throughput(Throughput::Bytes((k * shard) as u64));
        group.bench_with_input(
            BenchmarkId::new("encode", format!("rs({k},{m})")),
            &data,
            |b, data| b.iter(|| rs.encode(data).expect("encodes")),
        );
        let coded = rs.encode(&data).expect("encodes");
        let present: Vec<Option<&[u8]>> = coded
            .iter()
            .enumerate()
            .map(|(i, s)| (i >= m).then_some(s.as_slice()))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("reconstruct_worst_case", format!("rs({k},{m})")),
            &present,
            |b, present| b.iter(|| rs.reconstruct(present, shard).expect("reconstructs")),
        );
    }
    group.finish();
}

fn bench_matrix_inversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_matrix");
    for n in [9usize, 20, 40] {
        let rows: Vec<usize> = (0..n).collect();
        let m = Matrix::vandermonde(n + 4, n)
            .expect("valid dimensions")
            .select_rows(&rows);
        group.bench_with_input(BenchmarkId::new("invert", n), &m, |b, m| {
            b.iter(|| m.inverse().expect("invertible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slice_ops, bench_reed_solomon, bench_matrix_inversion);
criterion_main!(benches);
