//! Fig. 3 benchmark: the locality simulation for representative points of the
//! figure (each benched point is one full set of randomised trials).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use drc_core::codes::CodeKind;
use drc_core::mapreduce::{simulate_locality, LocalityConfig, SchedulerKind};

fn bench_fig3_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_locality");
    group.sample_size(10);

    for (code, scheduler, mu) in [
        (CodeKind::TWO_REP, SchedulerKind::Delay, 2usize),
        (CodeKind::Pentagon, SchedulerKind::Delay, 2),
        (CodeKind::Heptagon, SchedulerKind::Delay, 2),
        (CodeKind::Pentagon, SchedulerKind::Delay, 8),
        (CodeKind::Pentagon, SchedulerKind::MaxMatching, 4),
        (CodeKind::Heptagon, SchedulerKind::Peeling, 4),
    ] {
        let config = LocalityConfig::new(code, scheduler, mu, 100.0).with_trials(20);
        let label = format!("{code}/{scheduler}/mu{mu}/load100");
        group.bench_with_input(BenchmarkId::new("point", label), &config, |b, config| {
            b.iter(|| simulate_locality(config).expect("simulates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3_points);
criterion_main!(benches);
