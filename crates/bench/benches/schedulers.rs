//! Scheduler micro-benchmarks: delay scheduling vs maximum matching vs
//! peeling on identical task–node graphs (the §3.2 comment that maximum
//! matching is "computationally intensive" compared with delay scheduling).

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use drc_core::cluster::{Cluster, ClusterSpec, NodeId, PlacementMap, PlacementPolicy};
use drc_core::codes::CodeKind;
use drc_core::mapreduce::{MapTask, SchedulerKind, TaskId, TaskNodeGraph};

fn build_graph(
    code: CodeKind,
    nodes: usize,
    mu: usize,
    load: f64,
) -> (TaskNodeGraph, BTreeMap<NodeId, usize>) {
    let cluster = Cluster::new(ClusterSpec::custom(nodes, 3, mu));
    let built = code.build().expect("builds");
    let tasks = cluster.spec().tasks_for_load(load);
    let stripes = tasks.div_ceil(built.data_blocks());
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let placement = PlacementMap::place(
        built.as_ref(),
        &cluster,
        stripes,
        PlacementPolicy::Random,
        &mut rng,
    )
    .expect("places");
    let map_tasks: Vec<MapTask> = placement
        .data_blocks()
        .into_iter()
        .take(tasks)
        .enumerate()
        .map(|(i, block)| MapTask {
            id: TaskId(i),
            block,
        })
        .collect();
    let graph = TaskNodeGraph::build(&map_tasks, &placement, &cluster);
    let caps = graph.nodes().iter().map(|&n| (n, mu)).collect();
    (graph, caps)
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    group.sample_size(30);
    // A 100-node cluster at full load stresses the assignment algorithms.
    for (label, nodes) in [("25_nodes", 25usize), ("100_nodes", 100)] {
        let (graph, caps) = build_graph(CodeKind::Heptagon, nodes, 4, 100.0);
        for kind in SchedulerKind::all() {
            let scheduler = kind.build();
            group.bench_function(BenchmarkId::new(kind.to_string(), label), |b| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(3);
                    scheduler.assign(&graph, &caps, &mut rng)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
