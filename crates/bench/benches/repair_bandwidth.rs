//! §3.1 benchmark: repair planning and degraded-read planning for every code,
//! plus assembly of the repair-bandwidth table.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use drc_core::codes::CodeKind;
use drc_core::experiments::repair_bandwidth::run_repair_bandwidth;

fn bench_repair_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_bandwidth");
    group.sample_size(30);

    for kind in [
        CodeKind::THREE_REP,
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
        CodeKind::RAID_M_10_9,
    ] {
        let code = kind.build().expect("builds");
        let single: BTreeSet<usize> = [0].into_iter().collect();
        let double: BTreeSet<usize> = [0, 1].into_iter().collect();
        group.bench_with_input(
            BenchmarkId::new("single_node_repair_plan", kind.to_string()),
            &code,
            |b, code| b.iter(|| code.repair_plan(&single).expect("tolerated")),
        );
        if code.fault_tolerance() >= 2 {
            group.bench_with_input(
                BenchmarkId::new("double_node_repair_plan", kind.to_string()),
                &code,
                |b, code| b.iter(|| code.repair_plan(&double).expect("tolerated")),
            );
        }
        let hosts: BTreeSet<usize> = code.block_locations(0).iter().copied().collect();
        if code.can_recover(&hosts) {
            group.bench_with_input(
                BenchmarkId::new("degraded_read_plan", kind.to_string()),
                &code,
                |b, code| b.iter(|| code.degraded_read_plan(0, &hosts).expect("recoverable")),
            );
        }
    }
    group.bench_function("assemble_full_table", |b| {
        b.iter(|| run_repair_bandwidth().expect("table builds"))
    });
    group.finish();
}

criterion_group!(benches, bench_repair_planning);
criterion_main!(benches);
