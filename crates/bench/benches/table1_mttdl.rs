//! Table 1 benchmark: the Markov-chain MTTDL computation for every code of
//! the table, plus the full table assembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use drc_core::codes::CodeKind;
use drc_core::experiments::table1::run_table1;
use drc_core::reliability::{group_mttdl, FatalityModel, ReliabilityParams};

fn bench_table1(c: &mut Criterion) {
    let params = ReliabilityParams::default();
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);

    for kind in CodeKind::table1_set() {
        let code = kind.build().expect("paper codes build");
        group.bench_with_input(
            BenchmarkId::new("mttdl_worst_case", kind.to_string()),
            &code,
            |b, code| b.iter(|| group_mttdl(code.as_ref(), &params).expect("solvable")),
        );
    }
    // The pattern-aware model enumerates failure patterns exhaustively; the
    // heptagon-local code is the most expensive of the set.
    let hl = CodeKind::HeptagonLocal.build().expect("builds");
    let aware = params.with_fatality_model(FatalityModel::PatternAware);
    group.bench_function("mttdl_pattern_aware/heptagon-local", |b| {
        b.iter(|| group_mttdl(hl.as_ref(), &aware).expect("solvable"))
    });

    group.bench_function("assemble_full_table", |b| {
        b.iter(|| run_table1(&params).expect("table builds"))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
