//! Fig. 4 benchmark: one simulated Terasort execution on set-up 1 (25 nodes,
//! 2 map slots) per code at 100% load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use drc_core::cluster::{Cluster, ClusterSpec};
use drc_core::codes::CodeKind;
use drc_core::mapreduce::{run_job, SchedulerKind};
use drc_core::workloads::{provision_workload, WorkloadKind};

fn bench_fig4_jobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_terasort_setup1");
    group.sample_size(20);
    let scheduler = SchedulerKind::Delay.build();

    for kind in CodeKind::fig4_set() {
        let code = kind.build().expect("builds");
        let cluster = Cluster::new(ClusterSpec::setup1());
        let mut rng = ChaCha8Rng::seed_from_u64(0xF164);
        let workload = provision_workload(WorkloadKind::Terasort, kind, &cluster, 100.0, &mut rng)
            .expect("provisions");
        group.bench_with_input(
            BenchmarkId::new("terasort_100pct", kind.to_string()),
            &workload,
            |b, workload| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(1);
                    run_job(
                        &workload.job,
                        code.as_ref(),
                        &workload.placement,
                        &cluster,
                        scheduler.as_ref(),
                        &mut rng,
                    )
                    .expect("runs")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4_jobs);
criterion_main!(benches);
