//! Fig. 5 benchmark: one simulated Terasort execution on set-up 2 (9 nodes,
//! 4 map slots) per code, across the figure's load range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use drc_core::cluster::{Cluster, ClusterSpec};
use drc_core::codes::CodeKind;
use drc_core::mapreduce::{run_job, SchedulerKind};
use drc_core::workloads::{provision_workload, setup2_loads, WorkloadKind};

fn bench_fig5_jobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_terasort_setup2");
    group.sample_size(20);
    let scheduler = SchedulerKind::Delay.build();

    for kind in CodeKind::fig5_set() {
        for load in setup2_loads() {
            let code = kind.build().expect("builds");
            let cluster = Cluster::new(ClusterSpec::setup2());
            let mut rng = ChaCha8Rng::seed_from_u64(0xF165);
            let workload = provision_workload(
                WorkloadKind::Terasort,
                kind,
                &cluster,
                load.percent,
                &mut rng,
            )
            .expect("provisions");
            let label = format!("{kind}/load{load}");
            group.bench_with_input(
                BenchmarkId::new("terasort", label),
                &workload,
                |b, workload| {
                    b.iter(|| {
                        let mut rng = ChaCha8Rng::seed_from_u64(2);
                        run_job(
                            &workload.job,
                            code.as_ref(),
                            &workload.placement,
                            &cluster,
                            scheduler.as_ref(),
                            &mut rng,
                        )
                        .expect("runs")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5_jobs);
criterion_main!(benches);
