//! Event-driven substrate, shard-parallel encode and metadata-plane
//! benchmarks.
//!
//! Five groups:
//!
//! * `sim_stripe_encode` — production stripe-encode throughput (the
//!   HDFS-RAID write path: `StripeEncoder` over `encode_into`) at one worker
//!   thread versus the full pool, for an RS(10,4) stripe and the GF-heavy
//!   heptagon-local stripe,
//! * `sim_reconstruct` — worst-case Reed–Solomon reconstruction, single vs
//!   multi-thread,
//! * `pool_dispatch` — nanoseconds per `rayon::scope` round-trip through
//!   the persistent worker pool at widths 1/2/N, next to the per-call
//!   `std::thread::scope` spawn the old pool paid (the baseline the pool
//!   must beat for the lowered `PAR_MIN_LEN` to make sense),
//! * `sim_substrate` — the discrete-event machinery itself (event queue
//!   churn, timed cluster transfers), in operations per second,
//! * `metadata` — the placement index at datacenter scale (a 1000-node
//!   2-rep placement of 500k blocks): point lookups and full reverse
//!   repair scans per second on the compact backend.
//!
//! `repro` mode additionally stamps `meta_bytes_per_block` (and its
//! map-reference baseline) measured with a counting global allocator —
//! resident bytes the index build actually held onto, per distinct block —
//! plus the lookup and repair-scan rates, all gated or tracked by
//! `check_speedup`. It also times the full quick-effort repro through the
//! cell harness at 1 job versus the default width (`repro_wall_s`,
//! `repro_serial_wall_s`, `repro_cell_speedup`), asserting the results are
//! identical at both widths for every experiment without wall-clock fields.
//!
//! Run with a `repro` argument (`cargo bench -p drc_bench --bench
//! sim_throughput -- repro`) to emit `BENCH_sim.json`: provenance (git SHA,
//! GF kernel, thread count, bench-host CPU count), bytes/sec per
//! configuration, the measured multi-thread speedup, the pool dispatch
//! costs, and the virtual-time contention headlines (shuffle∩repair
//! slowdown, the live failure-trace slowdown and repair∩job overlap, and
//! the streaming-repair pipelined/serial ratio per code), so the
//! parallel-encode and contention trajectories are tracked across
//! PRs. On a
//! single-core host the forced 2-thread point oversubscribes one core, so
//! the recorded speedup is honestly <= 1.0 — `provenance.host_cpus` lets
//! the `check_speedup` gate tell that apart from a real multi-core
//! measurement; only multi-core hosts show the real scaling.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};

use criterion::{criterion_group, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use drc_cluster::{
    Cluster, ClusterSpec, GlobalBlockId, IndexKind, NodeId, PlacementMap, PlacementPolicy,
};
use drc_codes::{CodeKind, StripeEncoder};
use drc_gf::kernel;
use drc_sim::{ClusterNet, EventQueue, SimTime};

// ---------------------------------------------------------------------------
// Counting allocator: the `meta_bytes_per_block` headline reports bytes the
// allocator actually handed out for the placement index, not the index's own
// (floor-estimate) accounting. Same thread-marker pattern as the gf crate's
// alloc_free test: only the registered thread's traffic counts, so criterion
// timers and the rayon pool cannot skew the measurement.
// ---------------------------------------------------------------------------

struct CountingAllocator;

/// Net live bytes allocated by the measured thread (signed: frees of
/// pre-registration memory would otherwise underflow).
static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);
/// Marker address of the thread whose allocations are counted (0 = none).
static MEASURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// A per-thread address identifying the thread inside `alloc` without
    /// allocating (const-initialised TLS never lazily allocates).
    static THREAD_MARKER: u8 = const { 0 };
}

fn on_measured_thread() -> bool {
    THREAD_MARKER
        .try_with(|m| m as *const u8 as usize)
        .map(|addr| MEASURED.load(Ordering::Relaxed) == addr)
        .unwrap_or(false)
}

fn measure_this_thread() {
    THREAD_MARKER.with(|m| MEASURED.store(m as *const u8 as usize, Ordering::Relaxed));
}

fn unmeasure_thread() {
    MEASURED.store(0, Ordering::Relaxed);
}

fn live_bytes() -> isize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

// SAFETY: `unsafe` is required by the `GlobalAlloc` contract; every call
// forwards to `System` with the caller's layout and pointer unchanged, so
// the contract is upheld verbatim and the counters touch no allocator state.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if on_measured_thread() {
            LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        }
        // SAFETY: same arguments the caller handed us.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if on_measured_thread() {
            LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        }
        // SAFETY: same arguments the caller handed us.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if on_measured_thread() {
            LIVE_BYTES.fetch_add(
                new_size as isize - layout.size() as isize,
                Ordering::Relaxed,
            );
        }
        // SAFETY: same arguments the caller handed us.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Shard/block size for the encode benches: large enough that the parallel
/// split engages (several `PAR_MIN_LEN`s per worker).
const BLOCK: usize = 1024 * 1024;

fn make_block(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + salt * 7 + 3) as u8).collect()
}

/// The worker counts to benchmark: always 1, plus the configured pool width
/// when it exceeds 1.
fn thread_points() -> Vec<usize> {
    let n = rayon::current_num_threads();
    if n > 1 {
        vec![1, n]
    } else {
        vec![1, 2]
    }
}

fn bench_stripe_encode(c: &mut Criterion) {
    for kind in [
        CodeKind::ReedSolomon {
            data: 10,
            parity: 4,
        },
        CodeKind::HeptagonLocal,
    ] {
        let code = kind.build().expect("code builds");
        let k = code.data_blocks();
        let data: Vec<Vec<u8>> = (0..k).map(|i| make_block(BLOCK, i)).collect();
        let mut group = c.benchmark_group(format!("sim_stripe_encode/{kind}"));
        group.throughput(Throughput::Bytes((k * BLOCK) as u64));
        for threads in thread_points() {
            let mut encoder = StripeEncoder::new();
            group.bench_function(format!("threads={threads}"), |b| {
                rayon::with_num_threads(threads, || {
                    b.iter(|| encoder.encode(code.as_ref(), &data).expect("encodes").len())
                })
            });
        }
        group.finish();
    }
}

fn bench_reconstruct(c: &mut Criterion) {
    let rs = drc_gf::ReedSolomon::new(10, 4).expect("valid parameters");
    let data: Vec<Vec<u8>> = (0..10).map(|i| make_block(BLOCK, i)).collect();
    let coded = rs.encode(&data).expect("encodes");
    // Worst case: the first 4 (data) shards are lost.
    let present: Vec<Option<&[u8]>> = coded
        .iter()
        .enumerate()
        .map(|(i, s)| (i >= 4).then_some(s.as_slice()))
        .collect();
    let mut group = c.benchmark_group("sim_reconstruct/rs(10,4)");
    group.throughput(Throughput::Bytes((10 * BLOCK) as u64));
    for threads in thread_points() {
        let mut out = vec![vec![0u8; BLOCK]; 14];
        group.bench_function(format!("threads={threads}"), |b| {
            rayon::with_num_threads(threads, || {
                b.iter(|| {
                    rs.reconstruct_into(&present, BLOCK, &mut out)
                        .expect("reconstructs")
                })
            })
        });
    }
    group.finish();
}

/// The widths the pool-dispatch microbench measures: 1 (inline path), 2,
/// and the full pool (at least 4 so the queue handoff is exercised even on
/// narrow hosts — the pool happily oversubscribes).
fn dispatch_widths() -> Vec<usize> {
    vec![1, 2, rayon::current_num_threads().max(4)]
}

fn bench_pool_dispatch(c: &mut Criterion) {
    // Cost of one `rayon::scope` round-trip with trivial tasks: this is the
    // pure dispatch overhead (queue push + condvar wake + completion latch)
    // that bounds how small PAR_MIN_LEN can go. The `thread_scope_spawn`
    // baseline is what the old per-call `std::thread::scope` pool paid for
    // every dispatch; the persistent pool must sit well below it.
    let mut group = c.benchmark_group("pool_dispatch");
    for width in dispatch_widths() {
        group.bench_function(format!("scope/threads={width}"), |b| {
            rayon::with_num_threads(width, || {
                b.iter(|| {
                    rayon::scope(|s| {
                        for _ in 0..width {
                            s.spawn(|_| {
                                criterion::black_box(());
                            });
                        }
                    })
                })
            })
        });
    }
    group.bench_function("thread_scope_spawn_baseline", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                let h = s.spawn(|| criterion::black_box(0u64));
                h.join().expect("baseline thread joins")
            })
        })
    });
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_substrate");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("event_queue_1024", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1024u64 {
                // Reversed times exercise the heap, equal times the FIFO path.
                q.schedule_at(SimTime(1024 - (i % 512)), i);
            }
            let mut popped = 0u64;
            while q.pop().is_some() {
                popped += 1;
            }
            popped
        })
    });
    group.bench_function("cluster_transfers_1024", |b| {
        let spec = ClusterSpec::simulation_25(4);
        b.iter(|| {
            let net = ClusterNet::new(&spec);
            let mut end = SimTime::ZERO;
            for i in 0..1024usize {
                let r = net.transfer(
                    SimTime::ZERO,
                    NodeId(i % 25),
                    NodeId((i + 7) % 25),
                    128 << 20,
                );
                end = end.max(r.end);
            }
            end
        })
    });
    group.finish();
}

/// The metadata-plane headline configuration: 2-rep (the paper's baseline
/// and the worst arena bytes/block ratio of the built-in codes) over a
/// datacenter cluster. `(nodes, stripes, lookups)`.
const META_CONFIG: (usize, usize, usize) = (1000, 500_000, 200_000);

/// Builds a 2-rep placement of the headline size on the given backend,
/// returning it plus the allocator-measured resident bytes of the build.
fn build_meta_placement(index: IndexKind) -> (PlacementMap, isize) {
    let (nodes, stripes, _) = META_CONFIG;
    let code = CodeKind::TWO_REP.build().expect("code builds");
    let cluster = Cluster::new(ClusterSpec::datacenter(nodes));
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_2014);
    measure_this_thread();
    let before = live_bytes();
    let placement = drc_cluster::with_index_kind(index, || {
        PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::RoundRobin,
            &mut rng,
        )
    })
    .expect("placement fits the datacenter cluster");
    let resident = live_bytes() - before;
    unmeasure_thread();
    assert!(resident > 0, "a fresh index must hold live memory");
    (placement, resident)
}

/// One pass of the point-lookup workload: a Weyl sequence over the block
/// space, summing replica-list lengths so the lookups cannot be elided.
fn meta_lookup_pass(placement: &PlacementMap, lookups: usize) -> usize {
    let stripes = placement.stripe_count();
    let distinct = placement.distinct_blocks_per_stripe();
    let mut replica_sum = 0usize;
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..lookups {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let stripe = (x >> 32) as usize % stripes;
        let block = (x as u32) as usize % distinct;
        replica_sum += placement
            .locations(GlobalBlockId::new(stripe, block))
            .expect("in-range block")
            .len();
    }
    replica_sum
}

/// One pass of the repair-scan workload: every node's reverse index walked
/// in full, exactly as a repair pass planning that node's loss would.
fn meta_scan_pass(placement: &PlacementMap) -> usize {
    let mut scanned = 0usize;
    for node in 0..placement.node_universe() {
        placement
            .for_each_block_on_node(NodeId(node), |_| scanned += 1)
            .expect("in-universe node");
    }
    scanned
}

fn bench_metadata(c: &mut Criterion) {
    let (_, _, lookups) = META_CONFIG;
    let (placement, _) = build_meta_placement(IndexKind::Compact);
    let mut group = c.benchmark_group("metadata");
    group.throughput(Throughput::Elements(lookups as u64));
    group.bench_function("lookups", |b| {
        b.iter(|| meta_lookup_pass(&placement, lookups))
    });
    let total_blocks = placement.stripe_count() * placement.distinct_blocks_per_stripe();
    group.throughput(Throughput::Elements(total_blocks as u64));
    group.bench_function("repair_scan", |b| b.iter(|| meta_scan_pass(&placement)));
    group.finish();
}

criterion_group!(
    benches,
    bench_stripe_encode,
    bench_reconstruct,
    bench_pool_dispatch,
    bench_substrate,
    bench_metadata
);

// ---------------------------------------------------------------------------
// `repro` mode: machine-readable substrate + parallel-encode numbers.
// ---------------------------------------------------------------------------

fn bps(criterion: &Criterion, id: &str) -> Option<f64> {
    criterion
        .measurements()
        .iter()
        .find(|m| m.id == id)
        .and_then(|m| m.bytes_per_sec())
}

fn ns(criterion: &Criterion, id: &str) -> Option<f64> {
    criterion
        .measurements()
        .iter()
        .find(|m| m.id == id)
        .map(|m| m.ns_per_iter)
        .filter(|v| v.is_finite())
}

fn float_value(v: Option<f64>) -> serde_json::Value {
    match v {
        Some(x) => serde_json::Value::Float(x),
        None => serde_json::Value::Null,
    }
}

fn repro() {
    let mut criterion = Criterion::default();
    bench_stripe_encode(&mut criterion);
    bench_reconstruct(&mut criterion);
    bench_pool_dispatch(&mut criterion);

    // Headline contention number: how much a concurrent repair pass slows
    // the event-driven shuffle (quick configuration of the
    // `shuffle_contention` experiment), tracked across PRs.
    let contention =
        drc_core::experiments::shuffle_contention::run_shuffle_contention(1024 * 1024, 100)
            .expect("shuffle-contention experiment runs");
    let per_code: Vec<(String, serde_json::Value)> = contention
        .rows
        .iter()
        .map(|r| (r.code.to_string(), serde_json::Value::Float(r.slowdown)))
        .collect();

    // Headline live-trace numbers: worst job slowdown across the detection
    // timeout × arrival rate sweep and the largest repair∩job overlap
    // (the shared quick configuration of the `failure_trace` experiment,
    // so the stamped numbers match the CI repro artifact).
    let (ft_block_bytes, ft_target_tasks) = drc_bench::FAILURE_TRACE_QUICK;
    let failure =
        drc_core::experiments::failure_trace::run_failure_trace(ft_block_bytes, ft_target_tasks)
            .expect("failure-trace experiment runs");
    let failure_per_code: Vec<(String, serde_json::Value)> = {
        let mut worst: Vec<(String, f64)> = Vec::new();
        for row in &failure.rows {
            let name = row.code.to_string();
            match worst.iter_mut().find(|(n, _)| *n == name) {
                Some((_, s)) => *s = s.max(row.slowdown),
                None => worst.push((name, row.slowdown)),
            }
        }
        worst
            .into_iter()
            .map(|(n, s)| (n, serde_json::Value::Float(s)))
            .collect()
    };

    // Headline streaming-repair numbers: pipelined vs serial virtual-time
    // ratio per code (the shared quick configuration of the
    // `repair_pipeline` experiment, so the stamped numbers match the CI
    // repro artifact). Virtual-time, hardware-independent: `check_speedup`
    // requires every erasure code's ratio strictly below 1.0.
    let (rp_block_bytes, rp_stripes, rp_chunks) = drc_bench::REPAIR_PIPELINE_QUICK;
    let pipeline = drc_core::experiments::repair_pipeline::run_repair_pipeline(
        rp_block_bytes,
        rp_stripes,
        rp_chunks,
    )
    .expect("repair-pipeline experiment runs");
    // Per code, the smallest measured chunk's ratio (the headline
    // streaming configuration).
    let rp_min_chunk = rp_chunks.iter().copied().min().expect("a chunk size");
    let pipeline_per_code: Vec<(String, serde_json::Value)> = pipeline
        .rows
        .iter()
        .filter(|r| r.chunk_bytes == rp_min_chunk)
        .map(|r| (r.code.to_string(), serde_json::Value::Float(r.ratio)))
        .collect();

    // Metadata-plane headlines: allocator-measured resident bytes per block
    // for both index backends on the same 10M-block-class placement, plus
    // query rates on the compact (default) backend. The bytes are
    // deterministic layout properties; the rates are wall-clock and tracked
    // as advisories.
    let (meta_nodes, meta_stripes, meta_lookups) = META_CONFIG;
    let (map_placement, map_resident) = build_meta_placement(IndexKind::Map);
    let meta_blocks = map_placement.stripe_count() * map_placement.distinct_blocks_per_stripe();
    drop(map_placement);
    let (placement, compact_resident) = build_meta_placement(IndexKind::Compact);
    let meta_bytes_per_block = compact_resident as f64 / meta_blocks as f64;
    let meta_bytes_per_block_map = map_resident as f64 / meta_blocks as f64;
    let started = std::time::Instant::now();
    let replica_sum = meta_lookup_pass(&placement, meta_lookups);
    let meta_lookups_per_s = meta_lookups as f64 / started.elapsed().as_secs_f64().max(1e-9);
    assert!(replica_sum > 0, "lookups must observe real replica lists");
    let started = std::time::Instant::now();
    let scanned = meta_scan_pass(&placement);
    let meta_scan_per_s = scanned as f64 / started.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        scanned,
        2 * meta_stripes,
        "2-rep stores two replicas/stripe"
    );
    assert_eq!(meta_nodes, placement.node_universe());
    drop(placement);

    // Cell-harness fan-out headlines: wall time of the full quick-effort
    // repro (all 12 experiments through the same code path the repro binary
    // uses) at 1 harness job versus the default width. The merge order is
    // fixed, so the only thing the width changes is the wall clock —
    // asserted here for every experiment that carries no wall-clock fields
    // of its own (`encoding` and `metadata_scale` measure real elapsed time
    // inside their rows and are compared by the width-differential test
    // structurally instead).
    use drc_core::experiments::harness;
    let repro_jobs = harness::current_jobs();
    let started = std::time::Instant::now();
    let serial_results =
        harness::with_jobs(1, drc_bench::quick_repro_results).expect("quick repro runs serially");
    let repro_serial_wall_s = started.elapsed().as_secs_f64().max(1e-9);
    let started = std::time::Instant::now();
    let wide_results = drc_bench::quick_repro_results().expect("quick repro runs at full width");
    let repro_wall_s = started.elapsed().as_secs_f64().max(1e-9);
    let wallclock_experiments = ["encoding", "metadata_scale"];
    for ((serial_name, serial_value), (wide_name, wide_value)) in
        serial_results.iter().zip(&wide_results)
    {
        assert_eq!(serial_name, wide_name, "experiment order must not vary");
        if !wallclock_experiments.contains(serial_name) {
            assert_eq!(
                serial_value, wide_value,
                "{serial_name}: results must be identical at widths 1 and {repro_jobs}"
            );
        }
    }
    let repro_cell_speedup = repro_serial_wall_s / repro_wall_s;

    let points = thread_points();
    let multi = *points.last().expect("at least one thread point");
    let mut groups: Vec<(String, serde_json::Value)> = Vec::new();
    let mut speedups: Vec<(String, serde_json::Value)> = Vec::new();
    for (label, group) in [
        ("rs_10_4", "sim_stripe_encode/RS(10,4)"),
        ("heptagon_local", "sim_stripe_encode/heptagon-local"),
        ("reconstruct_rs_10_4", "sim_reconstruct/rs(10,4)"),
    ] {
        let single = bps(&criterion, &format!("{group}/threads=1"));
        let wide = bps(&criterion, &format!("{group}/threads={multi}"));
        groups.push((
            label.to_string(),
            serde_json::Value::Map(vec![
                ("threads_1_bps".to_string(), float_value(single)),
                (format!("threads_{multi}_bps"), float_value(wide)),
            ]),
        ));
        let speedup = match (single, wide) {
            (Some(s), Some(w)) if s > 0.0 => serde_json::Value::Float(w / s),
            _ => serde_json::Value::Null,
        };
        speedups.push((label.to_string(), speedup));
    }

    let doc = serde_json::Value::Map(vec![
        ("provenance".to_string(), drc_bench::provenance()),
        (
            "active_kernel".to_string(),
            serde_json::Value::Str(kernel::active().name().to_string()),
        ),
        (
            "block_bytes".to_string(),
            serde_json::Value::UInt(BLOCK as u64),
        ),
        (
            "multi_threads".to_string(),
            serde_json::Value::UInt(multi as u64),
        ),
        (
            "par_min_len".to_string(),
            serde_json::Value::UInt(drc_gf::slice::PAR_MIN_LEN as u64),
        ),
        (
            "par_engage_min".to_string(),
            serde_json::Value::UInt(drc_gf::slice::PAR_ENGAGE_MIN as u64),
        ),
        ("stripe_encode".to_string(), serde_json::Value::Map(groups)),
        (
            "parallel_speedup".to_string(),
            serde_json::Value::Map(speedups),
        ),
        (
            "pool_dispatch_ns".to_string(),
            serde_json::Value::Map(
                dispatch_widths()
                    .into_iter()
                    .map(|w| {
                        (
                            format!("scope_threads_{w}"),
                            float_value(ns(
                                &criterion,
                                &format!("pool_dispatch/scope/threads={w}"),
                            )),
                        )
                    })
                    .chain(std::iter::once((
                        "thread_scope_spawn_baseline".to_string(),
                        float_value(ns(&criterion, "pool_dispatch/thread_scope_spawn_baseline")),
                    )))
                    .collect(),
            ),
        ),
        (
            "shuffle_contention_slowdown".to_string(),
            serde_json::Value::Float(contention.headline_slowdown()),
        ),
        (
            "shuffle_contention_slowdown_per_code".to_string(),
            serde_json::Value::Map(per_code),
        ),
        (
            "failure_trace_slowdown".to_string(),
            serde_json::Value::Float(failure.headline_slowdown()),
        ),
        (
            "failure_trace_slowdown_per_code".to_string(),
            serde_json::Value::Map(failure_per_code),
        ),
        (
            "failure_trace_repair_job_overlap_s".to_string(),
            serde_json::Value::Float(failure.max_repair_job_overlap_s()),
        ),
        (
            "repair_pipeline_ratio".to_string(),
            serde_json::Value::Float(
                pipeline
                    .worst_erasure_ratio()
                    .expect("erasure rows are measured"),
            ),
        ),
        (
            "repair_pipeline_ratio_per_code".to_string(),
            serde_json::Value::Map(pipeline_per_code),
        ),
        (
            "meta_blocks".to_string(),
            serde_json::Value::UInt(meta_blocks as u64),
        ),
        (
            "meta_bytes_per_block".to_string(),
            serde_json::Value::Float(meta_bytes_per_block),
        ),
        (
            "meta_bytes_per_block_map".to_string(),
            serde_json::Value::Float(meta_bytes_per_block_map),
        ),
        (
            "meta_lookups_per_s".to_string(),
            serde_json::Value::Float(meta_lookups_per_s),
        ),
        (
            "meta_repair_scan_blocks_per_s".to_string(),
            serde_json::Value::Float(meta_scan_per_s),
        ),
        (
            "repro_jobs".to_string(),
            serde_json::Value::UInt(repro_jobs as u64),
        ),
        (
            "repro_wall_s".to_string(),
            serde_json::Value::Float(repro_wall_s),
        ),
        (
            "repro_serial_wall_s".to_string(),
            serde_json::Value::Float(repro_serial_wall_s),
        ),
        (
            "repro_cell_speedup".to_string(),
            serde_json::Value::Float(repro_cell_speedup),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write(drc_bench::SIM_BENCH_JSON_PATH, &json).expect("writable BENCH_sim.json");
    println!("{json}");
    println!("wrote {}", drc_bench::SIM_BENCH_JSON_PATH);
}

fn main() {
    if std::env::args().any(|a| a == "repro") {
        repro();
        return;
    }
    let mut criterion = Criterion::default();
    benches(&mut criterion);
}
