//! Event-driven substrate and shard-parallel encode benchmarks.
//!
//! Four groups:
//!
//! * `sim_stripe_encode` — production stripe-encode throughput (the
//!   HDFS-RAID write path: `StripeEncoder` over `encode_into`) at one worker
//!   thread versus the full pool, for an RS(10,4) stripe and the GF-heavy
//!   heptagon-local stripe,
//! * `sim_reconstruct` — worst-case Reed–Solomon reconstruction, single vs
//!   multi-thread,
//! * `pool_dispatch` — nanoseconds per `rayon::scope` round-trip through
//!   the persistent worker pool at widths 1/2/N, next to the per-call
//!   `std::thread::scope` spawn the old pool paid (the baseline the pool
//!   must beat for the lowered `PAR_MIN_LEN` to make sense),
//! * `sim_substrate` — the discrete-event machinery itself (event queue
//!   churn, timed cluster transfers), in operations per second.
//!
//! Run with a `repro` argument (`cargo bench -p drc_bench --bench
//! sim_throughput -- repro`) to emit `BENCH_sim.json`: provenance (git SHA,
//! GF kernel, thread count, bench-host CPU count), bytes/sec per
//! configuration, the measured multi-thread speedup, the pool dispatch
//! costs, and the virtual-time contention headlines (shuffle∩repair
//! slowdown plus the live failure-trace slowdown and repair∩job overlap),
//! so the parallel-encode and contention trajectories are tracked across
//! PRs. On a
//! single-core host the forced 2-thread point oversubscribes one core, so
//! the recorded speedup is honestly <= 1.0 — `provenance.host_cpus` lets
//! the `check_speedup` gate tell that apart from a real multi-core
//! measurement; only multi-core hosts show the real scaling.

use criterion::{criterion_group, Criterion, Throughput};

use drc_cluster::{ClusterSpec, NodeId};
use drc_codes::{CodeKind, StripeEncoder};
use drc_gf::kernel;
use drc_sim::{ClusterNet, EventQueue, SimTime};

/// Shard/block size for the encode benches: large enough that the parallel
/// split engages (several `PAR_MIN_LEN`s per worker).
const BLOCK: usize = 1024 * 1024;

fn make_block(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + salt * 7 + 3) as u8).collect()
}

/// The worker counts to benchmark: always 1, plus the configured pool width
/// when it exceeds 1.
fn thread_points() -> Vec<usize> {
    let n = rayon::current_num_threads();
    if n > 1 {
        vec![1, n]
    } else {
        vec![1, 2]
    }
}

fn bench_stripe_encode(c: &mut Criterion) {
    for kind in [
        CodeKind::ReedSolomon {
            data: 10,
            parity: 4,
        },
        CodeKind::HeptagonLocal,
    ] {
        let code = kind.build().expect("code builds");
        let k = code.data_blocks();
        let data: Vec<Vec<u8>> = (0..k).map(|i| make_block(BLOCK, i)).collect();
        let mut group = c.benchmark_group(format!("sim_stripe_encode/{kind}"));
        group.throughput(Throughput::Bytes((k * BLOCK) as u64));
        for threads in thread_points() {
            let mut encoder = StripeEncoder::new();
            group.bench_function(format!("threads={threads}"), |b| {
                rayon::with_num_threads(threads, || {
                    b.iter(|| encoder.encode(code.as_ref(), &data).expect("encodes").len())
                })
            });
        }
        group.finish();
    }
}

fn bench_reconstruct(c: &mut Criterion) {
    let rs = drc_gf::ReedSolomon::new(10, 4).expect("valid parameters");
    let data: Vec<Vec<u8>> = (0..10).map(|i| make_block(BLOCK, i)).collect();
    let coded = rs.encode(&data).expect("encodes");
    // Worst case: the first 4 (data) shards are lost.
    let present: Vec<Option<&[u8]>> = coded
        .iter()
        .enumerate()
        .map(|(i, s)| (i >= 4).then_some(s.as_slice()))
        .collect();
    let mut group = c.benchmark_group("sim_reconstruct/rs(10,4)");
    group.throughput(Throughput::Bytes((10 * BLOCK) as u64));
    for threads in thread_points() {
        let mut out = vec![vec![0u8; BLOCK]; 14];
        group.bench_function(format!("threads={threads}"), |b| {
            rayon::with_num_threads(threads, || {
                b.iter(|| {
                    rs.reconstruct_into(&present, BLOCK, &mut out)
                        .expect("reconstructs")
                })
            })
        });
    }
    group.finish();
}

/// The widths the pool-dispatch microbench measures: 1 (inline path), 2,
/// and the full pool (at least 4 so the queue handoff is exercised even on
/// narrow hosts — the pool happily oversubscribes).
fn dispatch_widths() -> Vec<usize> {
    vec![1, 2, rayon::current_num_threads().max(4)]
}

fn bench_pool_dispatch(c: &mut Criterion) {
    // Cost of one `rayon::scope` round-trip with trivial tasks: this is the
    // pure dispatch overhead (queue push + condvar wake + completion latch)
    // that bounds how small PAR_MIN_LEN can go. The `thread_scope_spawn`
    // baseline is what the old per-call `std::thread::scope` pool paid for
    // every dispatch; the persistent pool must sit well below it.
    let mut group = c.benchmark_group("pool_dispatch");
    for width in dispatch_widths() {
        group.bench_function(format!("scope/threads={width}"), |b| {
            rayon::with_num_threads(width, || {
                b.iter(|| {
                    rayon::scope(|s| {
                        for _ in 0..width {
                            s.spawn(|_| {
                                criterion::black_box(());
                            });
                        }
                    })
                })
            })
        });
    }
    group.bench_function("thread_scope_spawn_baseline", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                let h = s.spawn(|| criterion::black_box(0u64));
                h.join().expect("baseline thread joins")
            })
        })
    });
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_substrate");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("event_queue_1024", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1024u64 {
                // Reversed times exercise the heap, equal times the FIFO path.
                q.schedule_at(SimTime(1024 - (i % 512)), i);
            }
            let mut popped = 0u64;
            while q.pop().is_some() {
                popped += 1;
            }
            popped
        })
    });
    group.bench_function("cluster_transfers_1024", |b| {
        let spec = ClusterSpec::simulation_25(4);
        b.iter(|| {
            let net = ClusterNet::new(&spec);
            let mut end = SimTime::ZERO;
            for i in 0..1024usize {
                let r = net.transfer(
                    SimTime::ZERO,
                    NodeId(i % 25),
                    NodeId((i + 7) % 25),
                    128 << 20,
                );
                end = end.max(r.end);
            }
            end
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stripe_encode,
    bench_reconstruct,
    bench_pool_dispatch,
    bench_substrate
);

// ---------------------------------------------------------------------------
// `repro` mode: machine-readable substrate + parallel-encode numbers.
// ---------------------------------------------------------------------------

fn bps(criterion: &Criterion, id: &str) -> Option<f64> {
    criterion
        .measurements()
        .iter()
        .find(|m| m.id == id)
        .and_then(|m| m.bytes_per_sec())
}

fn ns(criterion: &Criterion, id: &str) -> Option<f64> {
    criterion
        .measurements()
        .iter()
        .find(|m| m.id == id)
        .map(|m| m.ns_per_iter)
        .filter(|v| v.is_finite())
}

fn float_value(v: Option<f64>) -> serde_json::Value {
    match v {
        Some(x) => serde_json::Value::Float(x),
        None => serde_json::Value::Null,
    }
}

fn repro() {
    let mut criterion = Criterion::default();
    bench_stripe_encode(&mut criterion);
    bench_reconstruct(&mut criterion);
    bench_pool_dispatch(&mut criterion);

    // Headline contention number: how much a concurrent repair pass slows
    // the event-driven shuffle (quick configuration of the
    // `shuffle_contention` experiment), tracked across PRs.
    let contention =
        drc_core::experiments::shuffle_contention::run_shuffle_contention(1024 * 1024, 100)
            .expect("shuffle-contention experiment runs");
    let per_code: Vec<(String, serde_json::Value)> = contention
        .rows
        .iter()
        .map(|r| (r.code.to_string(), serde_json::Value::Float(r.slowdown)))
        .collect();

    // Headline live-trace numbers: worst job slowdown across the detection
    // timeout × arrival rate sweep and the largest repair∩job overlap
    // (the shared quick configuration of the `failure_trace` experiment,
    // so the stamped numbers match the CI repro artifact).
    let (ft_block_bytes, ft_target_tasks) = drc_bench::FAILURE_TRACE_QUICK;
    let failure =
        drc_core::experiments::failure_trace::run_failure_trace(ft_block_bytes, ft_target_tasks)
            .expect("failure-trace experiment runs");
    let failure_per_code: Vec<(String, serde_json::Value)> = {
        let mut worst: Vec<(String, f64)> = Vec::new();
        for row in &failure.rows {
            let name = row.code.to_string();
            match worst.iter_mut().find(|(n, _)| *n == name) {
                Some((_, s)) => *s = s.max(row.slowdown),
                None => worst.push((name, row.slowdown)),
            }
        }
        worst
            .into_iter()
            .map(|(n, s)| (n, serde_json::Value::Float(s)))
            .collect()
    };

    let points = thread_points();
    let multi = *points.last().expect("at least one thread point");
    let mut groups: Vec<(String, serde_json::Value)> = Vec::new();
    let mut speedups: Vec<(String, serde_json::Value)> = Vec::new();
    for (label, group) in [
        ("rs_10_4", "sim_stripe_encode/RS(10,4)"),
        ("heptagon_local", "sim_stripe_encode/heptagon-local"),
        ("reconstruct_rs_10_4", "sim_reconstruct/rs(10,4)"),
    ] {
        let single = bps(&criterion, &format!("{group}/threads=1"));
        let wide = bps(&criterion, &format!("{group}/threads={multi}"));
        groups.push((
            label.to_string(),
            serde_json::Value::Map(vec![
                ("threads_1_bps".to_string(), float_value(single)),
                (format!("threads_{multi}_bps"), float_value(wide)),
            ]),
        ));
        let speedup = match (single, wide) {
            (Some(s), Some(w)) if s > 0.0 => serde_json::Value::Float(w / s),
            _ => serde_json::Value::Null,
        };
        speedups.push((label.to_string(), speedup));
    }

    let doc = serde_json::Value::Map(vec![
        ("provenance".to_string(), drc_bench::provenance()),
        (
            "active_kernel".to_string(),
            serde_json::Value::Str(kernel::active().name().to_string()),
        ),
        (
            "block_bytes".to_string(),
            serde_json::Value::UInt(BLOCK as u64),
        ),
        (
            "multi_threads".to_string(),
            serde_json::Value::UInt(multi as u64),
        ),
        (
            "par_min_len".to_string(),
            serde_json::Value::UInt(drc_gf::slice::PAR_MIN_LEN as u64),
        ),
        (
            "par_engage_min".to_string(),
            serde_json::Value::UInt(drc_gf::slice::PAR_ENGAGE_MIN as u64),
        ),
        ("stripe_encode".to_string(), serde_json::Value::Map(groups)),
        (
            "parallel_speedup".to_string(),
            serde_json::Value::Map(speedups),
        ),
        (
            "pool_dispatch_ns".to_string(),
            serde_json::Value::Map(
                dispatch_widths()
                    .into_iter()
                    .map(|w| {
                        (
                            format!("scope_threads_{w}"),
                            float_value(ns(
                                &criterion,
                                &format!("pool_dispatch/scope/threads={w}"),
                            )),
                        )
                    })
                    .chain(std::iter::once((
                        "thread_scope_spawn_baseline".to_string(),
                        float_value(ns(&criterion, "pool_dispatch/thread_scope_spawn_baseline")),
                    )))
                    .collect(),
            ),
        ),
        (
            "shuffle_contention_slowdown".to_string(),
            serde_json::Value::Float(contention.headline_slowdown()),
        ),
        (
            "shuffle_contention_slowdown_per_code".to_string(),
            serde_json::Value::Map(per_code),
        ),
        (
            "failure_trace_slowdown".to_string(),
            serde_json::Value::Float(failure.headline_slowdown()),
        ),
        (
            "failure_trace_slowdown_per_code".to_string(),
            serde_json::Value::Map(failure_per_code),
        ),
        (
            "failure_trace_repair_job_overlap_s".to_string(),
            serde_json::Value::Float(failure.max_repair_job_overlap_s()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write(drc_bench::SIM_BENCH_JSON_PATH, &json).expect("writable BENCH_sim.json");
    println!("{json}");
    println!("wrote {}", drc_bench::SIM_BENCH_JSON_PATH);
}

fn main() {
    if std::env::args().any(|a| a == "repro") {
        repro();
        return;
    }
    let mut criterion = Criterion::default();
    benches(&mut criterion);
}
