//! Shared helpers for the benchmark harness and the `repro` binary.
//!
//! The Criterion benches in `benches/` measure the computational kernels
//! behind each table and figure (MTTDL solves, repair planning, locality
//! simulation, Terasort execution, encoding), while the `repro` binary
//! regenerates the tables and figure series themselves in a paper-comparable
//! textual form. Both are thin wrappers around
//! [`drc_core::experiments`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use drc_core::experiments::Effort;

/// Parses an effort level from a command-line string.
///
/// Accepts `quick` (default) and `full`.
pub fn parse_effort(arg: Option<&str>) -> Effort {
    match arg {
        Some("full") => Effort::Full,
        _ => Effort::Quick,
    }
}

/// The experiment names understood by the `repro` binary, in presentation
/// order.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "repair_bw",
    "fig3",
    "fig4",
    "fig5",
    "encoding",
    "degraded_mr",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_parsing() {
        assert_eq!(parse_effort(None), Effort::Quick);
        assert_eq!(parse_effort(Some("quick")), Effort::Quick);
        assert_eq!(parse_effort(Some("full")), Effort::Full);
        assert_eq!(parse_effort(Some("garbage")), Effort::Quick);
    }

    #[test]
    fn experiment_list_is_complete() {
        assert_eq!(EXPERIMENTS.len(), 7);
        assert!(EXPERIMENTS.contains(&"table1"));
        assert!(EXPERIMENTS.contains(&"fig5"));
    }
}
