//! Shared helpers for the benchmark harness and the `repro` binary.
//!
//! The Criterion benches in `benches/` measure the computational kernels
//! behind each table and figure (MTTDL solves, repair planning, locality
//! simulation, Terasort execution, encoding, the event-driven substrate),
//! while the `repro` binary regenerates the tables and figure series
//! themselves in a paper-comparable textual form. Both are thin wrappers
//! around [`drc_core::experiments`].
//!
//! Every machine-readable artifact (`repro --json`, `BENCH_gf.json`,
//! `BENCH_sim.json`) is stamped with [`provenance`] — git SHA, active GF
//! kernel and worker-thread count — so numbers are comparable across PRs
//! and across hosts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use drc_core::experiments::Effort;
use drc_core::gf::kernel;
use drc_core::DrcError;

/// Parses an effort level from a command-line string.
///
/// Accepts `quick` (the default when no value is given) and `full`; any
/// other value is an error naming the valid set — the same contract the
/// `DRC_GF_KERNEL` selector follows, so a typo'd `--effort ful` fails loudly
/// instead of silently running the quick profile.
///
/// # Errors
///
/// Returns a message naming the valid values when `arg` is neither `quick`
/// nor `full`.
pub fn parse_effort(arg: Option<&str>) -> Result<Effort, String> {
    match arg {
        None | Some("quick") => Ok(Effort::Quick),
        Some("full") => Ok(Effort::Full),
        Some(other) => Err(format!(
            "unknown effort '{other}'; valid values are 'quick' and 'full'"
        )),
    }
}

/// The experiment names understood by the `repro` binary, in presentation
/// order.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "repair_bw",
    "fig3",
    "fig4",
    "fig5",
    "encoding",
    "degraded_mr",
    "overlap",
    "shuffle_contention",
    "failure_trace",
    "metadata_scale",
    "repair_pipeline",
];

/// Quick-effort configuration of the `failure_trace` experiment,
/// `(block_bytes, target_tasks)`. One definition shared by the `repro`
/// binary's quick arm and the `sim_throughput` bench's headline run, so the
/// `failure_trace_*` numbers in `BENCH_sim.json` always describe the same
/// configuration as the CI repro artifact.
pub const FAILURE_TRACE_QUICK: (usize, usize) = (1024 * 1024, 60);

/// Quick-effort configuration of the `repair_pipeline` experiment,
/// `(block_bytes, stripes, chunk_sizes)`. Shared by the `repro` binary's
/// quick arm and the `sim_throughput` bench's headline run, so the
/// `repair_pipeline_*` numbers in `BENCH_sim.json` always describe the same
/// configuration as the CI repro artifact.
pub const REPAIR_PIPELINE_QUICK: (usize, usize, &[u64]) =
    (4 * 1024 * 1024, 2, &[1 << 20, 256 * 1024]);

/// Runs every experiment once at quick effort — the exact configurations
/// the `repro` binary's quick arm uses — and returns `(name, result)` pairs
/// in presentation order, each result serialised to JSON.
///
/// One definition serves three consumers: the width-differential test (the
/// emitted JSON must be identical at every `DRC_REPRO_JOBS` width), the
/// `sim_throughput` bench's `repro_wall_s` / `repro_cell_speedup` headlines
/// (which time this function at 1 and N harness jobs), and — structurally —
/// the `repro` binary itself, whose quick arms must stay in sync with the
/// configurations here.
///
/// # Errors
///
/// Propagates the first experiment error in presentation order.
pub fn quick_repro_results() -> Result<Vec<(&'static str, serde_json::Value)>, DrcError> {
    use drc_core::experiments::{
        degraded_mr::run_degraded_mr, encoding::run_encoding, failure_trace::run_failure_trace,
        fig3::run_fig3, fig4::run_fig4, fig5::run_fig5, metadata_scale::run_metadata_scale,
        overlap::run_overlap, repair_bandwidth::run_repair_bandwidth,
        repair_pipeline::run_repair_pipeline, shuffle_contention::run_shuffle_contention,
        table1::run_table1,
    };
    use drc_core::reliability::ReliabilityParams;

    let effort = Effort::Quick;
    let (ft_block, ft_tasks) = FAILURE_TRACE_QUICK;
    let (rp_block, rp_stripes, rp_chunks) = REPAIR_PIPELINE_QUICK;
    macro_rules! json {
        ($result:expr) => {
            serde_json::to_value(&$result?).expect("experiment results are serializable")
        };
    }
    Ok(vec![
        ("table1", json!(run_table1(&ReliabilityParams::default()))),
        ("repair_bw", json!(run_repair_bandwidth())),
        ("fig3", json!(run_fig3(effort))),
        ("fig4", json!(run_fig4(effort))),
        ("fig5", json!(run_fig5(effort))),
        ("encoding", json!(run_encoding(1024 * 1024, 8))),
        ("degraded_mr", json!(run_degraded_mr(effort))),
        ("overlap", json!(run_overlap(1024 * 1024, 2))),
        (
            "shuffle_contention",
            json!(run_shuffle_contention(1024 * 1024, 100)),
        ),
        (
            "failure_trace",
            json!(run_failure_trace(ft_block, ft_tasks)),
        ),
        ("metadata_scale", json!(run_metadata_scale(effort))),
        (
            "repair_pipeline",
            json!(run_repair_pipeline(rp_block, rp_stripes, rp_chunks)),
        ),
    ])
}

/// Workspace-root path of `BENCH_gf.json` (written by the `gf_throughput`
/// bench in `repro` mode), independent of the cwd cargo gives bench/bin
/// targets (the package directory).
pub const GF_BENCH_JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gf.json");

/// Workspace-root path of `BENCH_sim.json` (written by the `sim_throughput`
/// bench in `repro` mode and read back by the `check_speedup` CI gate).
pub const SIM_BENCH_JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");

/// Looks up `key` in a JSON object from the vendored `serde_json`.
pub fn json_lookup<'a>(v: &'a serde_json::Value, key: &str) -> Option<&'a serde_json::Value> {
    match v {
        serde_json::Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Numeric coercion of a JSON scalar (float, signed or unsigned integer).
pub fn json_f64(v: &serde_json::Value) -> Option<f64> {
    match v {
        serde_json::Value::Float(f) => Some(*f),
        serde_json::Value::Int(n) => Some(*n as f64),
        serde_json::Value::UInt(n) => Some(*n as f64),
        _ => None,
    }
}

/// The commit the benchmarked tree was built from, best-effort
/// (`"unknown"` outside a git checkout or without a `git` binary).
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The CPUs the current host actually has (1 if undetectable). Recorded in
/// [`provenance`] so snapshot consumers (notably the `check_speedup` gate)
/// can tell a genuine multi-core measurement from an oversubscribed one —
/// "2 threads" on a 1-CPU container time-slices one core and can never show
/// a speedup.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The provenance stamp every benchmark JSON carries: git SHA, active GF
/// kernel, worker-pool thread count and the benching host's CPU count.
/// Cross-PR (and cross-host) numbers are only comparable with this context
/// attached.
pub fn provenance() -> serde_json::Value {
    serde_json::Value::Map(vec![
        ("git_sha".to_string(), serde_json::Value::Str(git_sha())),
        (
            "gf_kernel".to_string(),
            serde_json::Value::Str(kernel::active().name().to_string()),
        ),
        (
            "threads".to_string(),
            serde_json::Value::UInt(rayon::current_num_threads() as u64),
        ),
        (
            "host_cpus".to_string(),
            serde_json::Value::UInt(host_cpus() as u64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_parsing() {
        assert_eq!(parse_effort(None), Ok(Effort::Quick));
        assert_eq!(parse_effort(Some("quick")), Ok(Effort::Quick));
        assert_eq!(parse_effort(Some("full")), Ok(Effort::Full));
        // Unknown values are a hard error that names the valid set — the
        // same contract the DRC_GF_KERNEL selector follows.
        let err = parse_effort(Some("garbage")).expect_err("garbage must not parse");
        assert!(err.contains("garbage"), "{err}");
        assert!(err.contains("quick") && err.contains("full"), "{err}");
    }

    #[test]
    fn experiment_list_is_complete() {
        assert_eq!(EXPERIMENTS.len(), 12);
        assert!(EXPERIMENTS.contains(&"table1"));
        assert!(EXPERIMENTS.contains(&"fig5"));
        assert!(EXPERIMENTS.contains(&"overlap"));
        assert!(EXPERIMENTS.contains(&"shuffle_contention"));
        assert!(EXPERIMENTS.contains(&"failure_trace"));
        assert!(EXPERIMENTS.contains(&"metadata_scale"));
        assert!(EXPERIMENTS.contains(&"repair_pipeline"));
    }

    #[test]
    fn provenance_has_the_four_stamps() {
        let serde_json::Value::Map(entries) = provenance() else {
            panic!("provenance must be a map");
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["git_sha", "gf_kernel", "threads", "host_cpus"]);
        assert!(matches!(&entries[2].1, serde_json::Value::UInt(n) if *n >= 1));
        assert!(matches!(&entries[3].1, serde_json::Value::UInt(n) if *n >= 1));
    }
}
