//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--experiment <name>] [--effort quick|full] [--json <path>]
//!
//!   <name> ∈ { table1, repair_bw, fig3, fig4, fig5, encoding, degraded_mr,
//!              overlap, shuffle_contention, failure_trace, metadata_scale,
//!              repair_pipeline, all }
//! ```
//!
//! With no arguments every experiment runs at `quick` effort and the
//! paper-style tables are printed to stdout. `--json` additionally dumps the
//! raw results as JSON (the data behind `EXPERIMENTS.md`).
//!
//! `DRC_REPRO_JOBS` sets the cell-harness fan-out width: each experiment
//! decomposes into independent cells that run concurrently on the worker
//! pool (default width = pool width; `DRC_REPRO_JOBS=1` runs them serially).
//! Results merge in fixed cell order after the join, so the output —
//! including `--json` dumps — is byte-identical at every width.
//!
//! `shuffle_contention` is the end-to-end contention experiment: it runs the
//! same MapReduce job with and without a concurrent RaidNode repair pass on
//! one shared `ClusterNet` and reports the per-code job slowdown, per-link
//! shuffle wait seconds and the shuffle∩repair overlap window.
//!
//! `failure_trace` goes one step further: node fail-stops arrive as a live
//! Poisson trace *while* the job runs; the NameNode detects them after a
//! configurable heartbeat timeout and auto-repairs on the shared substrate,
//! and the engine re-executes the lost attempts. The sweep reports job
//! slowdown per detection timeout × arrival rate and the repair∩job overlap.

use std::collections::BTreeMap;
use std::process::ExitCode;

use drc_bench::{parse_effort, provenance, EXPERIMENTS};
use drc_core::experiments::{
    degraded_mr::run_degraded_mr, encoding::run_encoding, failure_trace::run_failure_trace,
    fig3::run_fig3, fig4::run_fig4, fig5::run_fig5, metadata_scale::run_metadata_scale,
    overlap::run_overlap, repair_bandwidth::run_repair_bandwidth,
    repair_pipeline::run_repair_pipeline, shuffle_contention::run_shuffle_contention,
    table1::run_table1, Effort,
};
use drc_core::reliability::ReliabilityParams;
use drc_core::DrcError;

struct Options {
    experiment: String,
    effort: Effort,
    json_path: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut experiment = "all".to_string();
    let mut effort = Effort::Quick;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                experiment = args.next().ok_or("--experiment needs a value")?;
            }
            "--effort" => {
                effort = parse_effort(args.next().as_deref())?;
            }
            "--json" => {
                json_path = Some(args.next().ok_or("--json needs a path")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--experiment <{}|all>] [--effort quick|full] [--json <path>]\n\
                     \n\
                     environment:\n\
                     \x20 DRC_REPRO_JOBS  cell-harness fan-out width: how many experiment\n\
                     \x20                 cells run concurrently on the worker pool\n\
                     \x20                 (default: pool width; =1 runs cells serially;\n\
                     \x20                 output is byte-identical at every width)",
                    EXPERIMENTS.join("|")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Options {
        experiment,
        effort,
        json_path,
    })
}

fn run(options: &Options) -> Result<BTreeMap<String, serde_json::Value>, DrcError> {
    let mut results = BTreeMap::new();
    let wanted = |name: &str| options.experiment == "all" || options.experiment == name;

    if wanted("table1") {
        let table = run_table1(&ReliabilityParams::default())?;
        println!("{table}\n");
        results.insert(
            "table1".to_string(),
            serde_json::to_value(&table).expect("serializable"),
        );
    }
    if wanted("repair_bw") {
        let table = run_repair_bandwidth()?;
        println!("{table}\n");
        results.insert(
            "repair_bw".to_string(),
            serde_json::to_value(&table).expect("serializable"),
        );
    }
    if wanted("fig3") {
        let data = run_fig3(options.effort)?;
        println!("{data}");
        results.insert(
            "fig3".to_string(),
            serde_json::to_value(&data).expect("serializable"),
        );
    }
    if wanted("fig4") {
        let data = run_fig4(options.effort)?;
        println!("{data}\n");
        results.insert(
            "fig4".to_string(),
            serde_json::to_value(&data).expect("serializable"),
        );
    }
    if wanted("fig5") {
        let data = run_fig5(options.effort)?;
        println!("{data}\n");
        results.insert(
            "fig5".to_string(),
            serde_json::to_value(&data).expect("serializable"),
        );
    }
    if wanted("encoding") {
        let report = run_encoding(1024 * 1024, 8)?;
        println!("{report}\n");
        results.insert(
            "encoding".to_string(),
            serde_json::to_value(&report).expect("serializable"),
        );
    }
    if wanted("degraded_mr") {
        let report = run_degraded_mr(options.effort)?;
        println!("{report}\n");
        results.insert(
            "degraded_mr".to_string(),
            serde_json::to_value(&report).expect("serializable"),
        );
    }
    if wanted("overlap") {
        let (block_bytes, stripes) = match options.effort {
            Effort::Quick => (1024 * 1024, 2),
            Effort::Full => (4 * 1024 * 1024, 4),
        };
        let report = run_overlap(block_bytes, stripes)?;
        println!("{report}\n");
        results.insert(
            "overlap".to_string(),
            serde_json::to_value(&report).expect("serializable"),
        );
    }
    if wanted("shuffle_contention") {
        let (block_bytes, target_tasks) = match options.effort {
            Effort::Quick => (1024 * 1024, 100),
            Effort::Full => (2 * 1024 * 1024, 200),
        };
        let report = run_shuffle_contention(block_bytes, target_tasks)?;
        println!("{report}\n");
        results.insert(
            "shuffle_contention".to_string(),
            serde_json::to_value(&report).expect("serializable"),
        );
    }
    if wanted("failure_trace") {
        let (block_bytes, target_tasks) = match options.effort {
            Effort::Quick => drc_bench::FAILURE_TRACE_QUICK,
            Effort::Full => (2 * 1024 * 1024, 120),
        };
        let report = run_failure_trace(block_bytes, target_tasks)?;
        println!("{report}\n");
        results.insert(
            "failure_trace".to_string(),
            serde_json::to_value(&report).expect("serializable"),
        );
    }
    if wanted("repair_pipeline") {
        let (block_bytes, stripes, chunks) = match options.effort {
            Effort::Quick => drc_bench::REPAIR_PIPELINE_QUICK,
            Effort::Full => (8 * 1024 * 1024, 4, &[1 << 20, 256 * 1024, 64 * 1024][..]),
        };
        let report = run_repair_pipeline(block_bytes, stripes, chunks)?;
        println!("{report}\n");
        results.insert(
            "repair_pipeline".to_string(),
            serde_json::to_value(&report).expect("serializable"),
        );
    }
    if wanted("metadata_scale") {
        let report = run_metadata_scale(options.effort)?;
        println!("{report}\n");
        results.insert(
            "metadata_scale".to_string(),
            serde_json::to_value(&report).expect("serializable"),
        );
    }
    // Stamp the run so JSON dumps are comparable across PRs and hosts.
    results.insert("provenance".to_string(), provenance());
    Ok(results)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if options.experiment != "all" && !EXPERIMENTS.contains(&options.experiment.as_str()) {
        eprintln!(
            "error: unknown experiment '{}'; expected one of {} or 'all'",
            options.experiment,
            EXPERIMENTS.join(", ")
        );
        return ExitCode::FAILURE;
    }
    match run(&options) {
        Ok(results) => {
            if let Some(path) = &options.json_path {
                match serde_json::to_string_pretty(&results) {
                    Ok(json) => {
                        if let Err(e) = std::fs::write(path, json) {
                            eprintln!("error writing {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("wrote JSON results to {path}");
                    }
                    Err(e) => {
                        eprintln!("error serialising results: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
