//! CI gate for the multi-core stripe-encode scaling (ROADMAP: "Multi-core
//! speedup validation").
//!
//! Reads the `BENCH_sim.json` a preceding `cargo bench -p drc_bench --bench
//! sim_throughput -- repro` run wrote at the workspace root and asserts that
//! every stripe-encode `parallel_speedup` entry reaches
//! [`MIN_SPEEDUP`] — but only when the host actually has ≥ 2 CPUs. On a
//! single-CPU host the pool degenerates to one worker and a speedup of ~1.0
//! is the *honest* result, so the gate prints a loud skip notice and exits
//! successfully instead of failing on hardware that cannot show scaling.
//!
//! Exit status: 0 on pass or skip, 1 on a missing/malformed JSON or a
//! speedup below the floor.

use drc_bench::{json_f64, json_lookup, SIM_BENCH_JSON_PATH};

/// Minimum acceptable multi-thread stripe-encode speedup on ≥ 2 CPUs.
const MIN_SPEEDUP: f64 = 1.5;

/// The stripe-encode entries of `parallel_speedup` the gate checks
/// (`reconstruct_rs_10_4` is recorded but not gated: reconstruction spends
/// part of its time in serial matrix inversion).
const GATED: &[&str] = &["rs_10_4", "heptagon_local"];

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cpus < 2 {
        println!(
            "SKIP: multi-core stripe-encode speedup gate needs >= 2 CPUs, \
             this host reports {cpus}; parallel_speedup ~ 1.0 is expected here. \
             Run on a multi-core host to validate the >= {MIN_SPEEDUP}x scaling."
        );
        return;
    }

    let text = match std::fs::read_to_string(SIM_BENCH_JSON_PATH) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "FAIL: cannot read {SIM_BENCH_JSON_PATH}: {e} \
                 (run `cargo bench -p drc_bench --bench sim_throughput -- repro` first)"
            );
            std::process::exit(1);
        }
    };
    let doc = match serde_json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: {SIM_BENCH_JSON_PATH} is not valid JSON: {e:?}");
            std::process::exit(1);
        }
    };
    let speedups = match json_lookup(&doc, "parallel_speedup") {
        Some(v) => v,
        None => {
            eprintln!("FAIL: {SIM_BENCH_JSON_PATH} has no `parallel_speedup` map");
            std::process::exit(1);
        }
    };
    let threads = json_lookup(&doc, "multi_threads")
        .and_then(json_f64)
        .unwrap_or(0.0);
    if threads < 2.0 {
        println!(
            "SKIP: BENCH_sim.json was produced with multi_threads={threads}, so a \
             speedup of ~1.0 is the honest result for that run; re-run the sim \
             snapshot with a multi-thread pool to gate scaling."
        );
        return;
    }

    let mut failed = false;
    for name in GATED {
        match json_lookup(speedups, name).and_then(json_f64) {
            Some(s) if s >= MIN_SPEEDUP => {
                println!(
                    "OK:   {name} stripe-encode speedup {s:.2}x at {threads} threads \
                     (floor {MIN_SPEEDUP}x, {cpus} CPUs)"
                );
            }
            Some(s) => {
                eprintln!(
                    "FAIL: {name} stripe-encode speedup {s:.2}x at {threads} threads \
                     is below the {MIN_SPEEDUP}x floor on a {cpus}-CPU host"
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL: `parallel_speedup.{name}` missing from {SIM_BENCH_JSON_PATH}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("multi-core stripe-encode speedup gate passed");
}
