//! CI gate for the multi-core stripe-encode scaling (ROADMAP: "Multi-core
//! speedup validation").
//!
//! Reads the `BENCH_sim.json` a preceding `cargo bench -p drc_bench --bench
//! sim_throughput -- repro` run wrote at the workspace root and checks the
//! stripe-encode `parallel_speedup` entries against [`MIN_SPEEDUP`]. What a
//! miss *means* depends on the hardware the snapshot was measured on
//! (`provenance.host_cpus`, stamped by the bench itself), so the gate has
//! three modes:
//!
//! * **skip** — the snapshot's bench host had fewer CPUs than the pool had
//!   threads (e.g. 2 threads time-slicing one core, like a 1-CPU dev
//!   container, or a snapshot taken with `multi_threads < 2`). An
//!   oversubscribed run can never show a speedup, so ~1.0 or below is the
//!   honest result and asserting a floor against it would gate on noise.
//!   The gate prints a loud notice and exits successfully.
//! * **advisory** — the bench host had fewer than [`HARD_GATE_MIN_CPUS`]
//!   CPUs. Stripe encode is memory-bandwidth-bound, and the 2–4 shared
//!   vCPUs of a standard CI runner (typically hyperthreads on shared
//!   memory channels) do not reliably multiply the bandwidth of one, so a
//!   sub-floor speedup is reported as a WARN but does not fail the build.
//! * **enforced** — the bench host had at least [`HARD_GATE_MIN_CPUS`]
//!   CPUs, which in practice means dedicated hardware with real bandwidth
//!   headroom; there a speedup below the floor fails the gate.
//!
//! Before the hardware-dependent gate, the snapshot's *virtual-time*
//! contention headlines (`shuffle_contention_slowdown`,
//! `failure_trace_slowdown`, `failure_trace_repair_job_overlap_s`, and the
//! streaming-repair `repair_pipeline_ratio` — pipelined strictly below
//! serial for every erasure code) are
//! checked unconditionally — they are deterministic on any host, so a
//! missing or non-positive headline always fails. The metadata-plane size
//! headline (`meta_bytes_per_block`, a deterministic layout property) is
//! likewise enforced unconditionally against
//! [`META_MAX_BYTES_PER_BLOCK`]; the metadata query *rates* are wall-clock
//! and only advisory. The quick-repro wall time (`repro_wall_s`) must be
//! present and positive on any host, and the cell-harness
//! `repro_cell_speedup` (quick repro at 1 harness job vs the default width)
//! follows the same three hardware tiers as the stripe-encode gate.
//!
//! Exit status: 0 on pass, advisory or skip; 1 on a missing/malformed JSON,
//! a broken virtual-time headline, or an enforced speedup below the floor.

use drc_bench::{json_f64, json_lookup, SIM_BENCH_JSON_PATH};

/// Minimum acceptable multi-thread stripe-encode speedup.
const MIN_SPEEDUP: f64 = 1.5;

/// Ceiling on allocator-measured resident bytes per block for the compact
/// placement index. The arena layout lands at ~16 B/block for 2-rep and
/// below 5 B/block for the paper codes, so 64 B leaves generous headroom
/// while still catching a regression back to per-block `Vec` storage
/// (the map-based reference measures >100 B/block).
const META_MAX_BYTES_PER_BLOCK: f64 = 64.0;

/// Bench-host CPU count from which the floor is enforced rather than
/// advisory. Set above the 2–4 shared vCPUs of standard CI runners, whose
/// hyperthreads on shared memory channels cannot reliably deliver the
/// bandwidth the floor presumes for this memory-bound workload; >= 8 CPUs
/// indicates hardware with genuine scaling headroom.
const HARD_GATE_MIN_CPUS: usize = 8;

/// The stripe-encode entries of `parallel_speedup` the gate checks
/// (`reconstruct_rs_10_4` is recorded but not gated: reconstruction spends
/// part of its time in serial matrix inversion).
const GATED: &[&str] = &["rs_10_4", "heptagon_local"];

fn main() {
    let text = match std::fs::read_to_string(SIM_BENCH_JSON_PATH) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "FAIL: cannot read {SIM_BENCH_JSON_PATH}: {e} \
                 (run `cargo bench -p drc_bench --bench sim_throughput -- repro` first)"
            );
            std::process::exit(1);
        }
    };
    let doc = match serde_json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: {SIM_BENCH_JSON_PATH} is not valid JSON: {e:?}");
            std::process::exit(1);
        }
    };
    let speedups = match json_lookup(&doc, "parallel_speedup") {
        Some(v) => v,
        None => {
            eprintln!("FAIL: {SIM_BENCH_JSON_PATH} has no `parallel_speedup` map");
            std::process::exit(1);
        }
    };

    // The virtual-time contention headlines are deterministic and
    // hardware-independent, so — unlike the wall-clock speedup below — they
    // are enforced on every host: a stamped snapshot whose contended runs
    // show no slowdown or no repair∩job overlap means the event model broke.
    let mut failed = false;
    for (name, floor, kind) in [
        ("shuffle_contention_slowdown", 1.0, "slowdown"),
        ("failure_trace_slowdown", 1.0, "slowdown"),
        ("failure_trace_repair_job_overlap_s", 0.0, "overlap"),
    ] {
        match json_lookup(&doc, name).and_then(json_f64) {
            Some(v) if v > floor => {
                println!("OK:   {name} = {v:.3} (virtual-time {kind} headline)");
            }
            Some(v) => {
                eprintln!(
                    "FAIL: {name} = {v:.3} — the contended run must show a \
                     {kind} strictly above {floor}"
                );
                failed = true;
            }
            None => {
                eprintln!(
                    "FAIL: `{name}` missing from {SIM_BENCH_JSON_PATH} \
                     (stale snapshot? re-run `cargo bench -p drc_bench --bench \
                     sim_throughput -- repro`)"
                );
                failed = true;
            }
        }
    }
    // The streaming-repair headline is likewise virtual-time and
    // deterministic, so it is enforced unconditionally: the chunk-streamed
    // repair schedule must complete strictly before the serial whole-block
    // baseline for every erasure code (ratio < 1.0). Replication entries
    // have no rebuild stage to overlap and may be neutral, so they only
    // need to stay at-or-below 1.0 (plus per-chunk ns rounding).
    match json_lookup(&doc, "repair_pipeline_ratio").and_then(json_f64) {
        Some(v) if v > 0.0 && v < 1.0 => {
            println!("OK:   repair_pipeline_ratio = {v:.3} (pipelined < serial)");
        }
        Some(v) => {
            eprintln!(
                "FAIL: repair_pipeline_ratio = {v:.3} — the chunk-streamed repair \
                 must beat the serial whole-block schedule (ratio strictly < 1.0)"
            );
            failed = true;
        }
        None => {
            eprintln!(
                "FAIL: `repair_pipeline_ratio` missing from {SIM_BENCH_JSON_PATH} \
                 (stale snapshot? re-run `cargo bench -p drc_bench --bench \
                 sim_throughput -- repro`)"
            );
            failed = true;
        }
    }
    match json_lookup(&doc, "repair_pipeline_ratio_per_code") {
        Some(serde_json::Value::Map(entries)) if !entries.is_empty() => {
            for (code, v) in entries {
                let replication = code.ends_with("-rep");
                match json_f64(v) {
                    Some(r) if r > 0.0 && (r < 1.0 || (replication && r <= 1.0 + 1e-6)) => {
                        println!("OK:   repair_pipeline_ratio[{code}] = {r:.3}");
                    }
                    Some(r) => {
                        eprintln!(
                            "FAIL: repair_pipeline_ratio[{code}] = {r:.3} — every \
                             erasure code's pipelined repair must be strictly \
                             faster than serial"
                        );
                        failed = true;
                    }
                    None => {
                        eprintln!("FAIL: repair_pipeline_ratio[{code}] is not numeric");
                        failed = true;
                    }
                }
            }
        }
        _ => {
            eprintln!(
                "FAIL: `repair_pipeline_ratio_per_code` missing or empty in \
                 {SIM_BENCH_JSON_PATH} (stale snapshot? re-run `cargo bench -p \
                 drc_bench --bench sim_throughput -- repro`)"
            );
            failed = true;
        }
    }
    // The metadata-plane size headline is a deterministic layout property
    // (allocator-measured resident bytes per block of the compact placement
    // index), so it is enforced unconditionally on any host. The query-rate
    // headlines are wall-clock and therefore advisory: missing or
    // non-positive values WARN without failing the build.
    match json_lookup(&doc, "meta_bytes_per_block").and_then(json_f64) {
        Some(v) if v > 0.0 && v <= META_MAX_BYTES_PER_BLOCK => {
            println!(
                "OK:   meta_bytes_per_block = {v:.1} B (ceiling {META_MAX_BYTES_PER_BLOCK} B)"
            );
        }
        Some(v) => {
            eprintln!(
                "FAIL: meta_bytes_per_block = {v:.1} B — the compact placement \
                 index must stay within {META_MAX_BYTES_PER_BLOCK} B per block"
            );
            failed = true;
        }
        None => {
            eprintln!(
                "FAIL: `meta_bytes_per_block` missing from {SIM_BENCH_JSON_PATH} \
                 (stale snapshot? re-run `cargo bench -p drc_bench --bench \
                 sim_throughput -- repro`)"
            );
            failed = true;
        }
    }
    for name in ["meta_lookups_per_s", "meta_repair_scan_blocks_per_s"] {
        match json_lookup(&doc, name).and_then(json_f64) {
            Some(v) if v > 0.0 => println!("OK:   {name} = {v:.3e} (advisory)"),
            Some(v) => println!("WARN: {name} = {v:.3e} — expected a positive rate"),
            None => println!("WARN: `{name}` missing from {SIM_BENCH_JSON_PATH}"),
        }
    }
    // The CPUs of the host the *snapshot was measured on* — the gate may run
    // elsewhere than the bench, so its own CPU count proves nothing. Older
    // snapshots without the stamp fall back to this host (CI runs bench and
    // gate back-to-back on one runner).
    let bench_cpus = json_lookup(&doc, "provenance")
        .and_then(|p| json_lookup(p, "host_cpus"))
        .and_then(json_f64)
        .map(|n| n as usize)
        .unwrap_or_else(|| {
            let local = drc_bench::host_cpus();
            println!(
                "NOTE: {SIM_BENCH_JSON_PATH} predates the provenance.host_cpus stamp; \
                 assuming it was measured on this host ({local} CPUs)."
            );
            local
        });
    // The quick-repro wall time must exist and be positive on any host —
    // it is the denominator of the cell-speedup trajectory CI tracks.
    match json_lookup(&doc, "repro_wall_s").and_then(json_f64) {
        Some(v) if v > 0.0 => {
            println!("OK:   repro_wall_s = {v:.1}s (quick repro through the cell harness)");
        }
        Some(v) => {
            eprintln!("FAIL: repro_wall_s = {v} — expected a positive wall time");
            failed = true;
        }
        None => {
            eprintln!(
                "FAIL: `repro_wall_s` missing from {SIM_BENCH_JSON_PATH} \
                 (stale snapshot? re-run `cargo bench -p drc_bench --bench \
                 sim_throughput -- repro`)"
            );
            failed = true;
        }
    }
    // The cell-harness speedup follows the same hardware tiers as the
    // stripe-encode gate below: SKIP on single-job or oversubscribed
    // snapshots, advisory below HARD_GATE_MIN_CPUS, enforced at or above.
    let repro_jobs = json_lookup(&doc, "repro_jobs")
        .and_then(json_f64)
        .unwrap_or(0.0);
    match json_lookup(&doc, "repro_cell_speedup").and_then(json_f64) {
        None => {
            eprintln!("FAIL: `repro_cell_speedup` missing from {SIM_BENCH_JSON_PATH}");
            failed = true;
        }
        Some(s) if repro_jobs < 2.0 => {
            println!(
                "SKIP: repro_cell_speedup = {s:.2}x was measured with \
                 repro_jobs={repro_jobs}; a single-job run cannot show a \
                 speedup — re-run the snapshot with a multi-thread pool."
            );
        }
        Some(s) if (bench_cpus as f64) < repro_jobs => {
            println!(
                "SKIP: repro_cell_speedup = {s:.2}x with {repro_jobs} jobs on a \
                 {bench_cpus}-CPU host — an oversubscribed run time-slices \
                 cores and cannot show a speedup."
            );
        }
        Some(s) if s >= MIN_SPEEDUP => {
            println!(
                "OK:   repro_cell_speedup = {s:.2}x at {repro_jobs} jobs \
                 (floor {MIN_SPEEDUP}x, bench host {bench_cpus} CPUs)"
            );
        }
        Some(s) if bench_cpus < HARD_GATE_MIN_CPUS => {
            println!(
                "WARN: repro_cell_speedup = {s:.2}x at {repro_jobs} jobs is \
                 below the {MIN_SPEEDUP}x floor (advisory on a {bench_cpus}-CPU \
                 bench host)"
            );
        }
        Some(s) => {
            eprintln!(
                "FAIL: repro_cell_speedup = {s:.2}x at {repro_jobs} jobs is \
                 below the {MIN_SPEEDUP}x floor on a {bench_cpus}-CPU bench host"
            );
            failed = true;
        }
    }
    if failed {
        // Fatal regardless of what the hardware-dependent gate below would
        // decide: the SKIP/advisory escape hatches are for wall-clock
        // scaling, not for broken virtual-time accounting or a missing
        // repro headline.
        std::process::exit(1);
    }
    let threads = match json_lookup(&doc, "multi_threads").and_then(json_f64) {
        Some(t) => t,
        None => {
            eprintln!("FAIL: {SIM_BENCH_JSON_PATH} has no numeric `multi_threads` field");
            std::process::exit(1);
        }
    };
    if threads < 2.0 {
        println!(
            "SKIP: BENCH_sim.json was produced with multi_threads={threads}, so a \
             speedup of ~1.0 is the honest result for that run; re-run the sim \
             snapshot with a multi-thread pool to gate scaling."
        );
        return;
    }
    if (bench_cpus as f64) < threads {
        println!(
            "SKIP: BENCH_sim.json was measured with {threads} pool threads on a \
             {bench_cpus}-CPU host — an oversubscribed run time-slices cores and \
             cannot show a speedup (~1.0 or below is expected). Re-run the sim \
             snapshot on a host with >= {threads} CPUs to validate the \
             >= {MIN_SPEEDUP}x scaling."
        );
        return;
    }
    let enforced = bench_cpus >= HARD_GATE_MIN_CPUS;
    if !enforced {
        println!(
            "NOTE: bench host had {bench_cpus} CPUs (< {HARD_GATE_MIN_CPUS}); \
             memory-bandwidth-bound stripe encode cannot reliably reach \
             {MIN_SPEEDUP}x there, so the floor is advisory (WARN, not FAIL)."
        );
    }

    for name in GATED {
        match json_lookup(speedups, name).and_then(json_f64) {
            Some(s) if s >= MIN_SPEEDUP => {
                println!(
                    "OK:   {name} stripe-encode speedup {s:.2}x at {threads} threads \
                     (floor {MIN_SPEEDUP}x, bench host {bench_cpus} CPUs)"
                );
            }
            Some(s) if !enforced => {
                println!(
                    "WARN: {name} stripe-encode speedup {s:.2}x at {threads} threads \
                     is below the {MIN_SPEEDUP}x floor (advisory on a {bench_cpus}-CPU \
                     bench host)"
                );
            }
            Some(s) => {
                eprintln!(
                    "FAIL: {name} stripe-encode speedup {s:.2}x at {threads} threads \
                     is below the {MIN_SPEEDUP}x floor on a {bench_cpus}-CPU bench host"
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL: `parallel_speedup.{name}` missing from {SIM_BENCH_JSON_PATH}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("multi-core stripe-encode speedup gate passed");
}
