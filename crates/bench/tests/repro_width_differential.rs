//! Width differential over the full quick-effort repro: the cell harness
//! must produce the same serialised output no matter how many jobs fan the
//! cells out. One serial (width 1) baseline is compared against widths 2
//! and 4 across all 12 experiments.
//!
//! `encoding` and `metadata_scale` carry wall-clock measurements inside
//! their rows (throughput and query rates), so they are compared
//! structurally — every field except the wall-clock ones byte-identical —
//! while the other ten experiments must match byte-for-byte.
//!
//! The width override is the thread-local `harness::with_jobs` (not the
//! `DRC_REPRO_JOBS` env var): env mutation would race with the parallel
//! libtest runner.

use drc_core::experiments::harness;
use serde_json::Value;

/// Per-row fields that measure real elapsed time and legitimately vary
/// between runs (and between widths).
const WALL_CLOCK_FIELDS: &[&str] = &[
    "throughput_mb_per_s",
    "elapsed_s",
    "lookups_per_s",
    "repair_scan_blocks_per_s",
];

/// Experiments whose results contain `WALL_CLOCK_FIELDS`.
const WALL_CLOCK_EXPERIMENTS: &[&str] = &["encoding", "metadata_scale"];

/// Removes every wall-clock field from a result tree, recursively.
fn strip_wall_clock(v: &mut Value) {
    match v {
        Value::Map(entries) => {
            entries.retain(|(k, _)| !WALL_CLOCK_FIELDS.contains(&k.as_str()));
            for (_, child) in entries {
                strip_wall_clock(child);
            }
        }
        Value::Seq(items) => {
            for child in items {
                strip_wall_clock(child);
            }
        }
        _ => {}
    }
}

#[test]
fn quick_repro_is_byte_identical_at_widths_1_2_4() {
    let baseline =
        harness::with_jobs(1, drc_bench::quick_repro_results).expect("serial repro runs");
    assert_eq!(baseline.len(), drc_bench::EXPERIMENTS.len());
    for width in [2usize, 4] {
        let wide =
            harness::with_jobs(width, drc_bench::quick_repro_results).expect("wide repro runs");
        assert_eq!(baseline.len(), wide.len());
        for ((serial_name, serial_value), (wide_name, wide_value)) in baseline.iter().zip(&wide) {
            assert_eq!(
                serial_name, wide_name,
                "experiment order must not depend on the width"
            );
            if WALL_CLOCK_EXPERIMENTS.contains(serial_name) {
                let mut serial_stripped = serial_value.clone();
                let mut wide_stripped = wide_value.clone();
                strip_wall_clock(&mut serial_stripped);
                strip_wall_clock(&mut wide_stripped);
                assert_eq!(
                    serde_json::to_string(&serial_stripped).expect("serialises"),
                    serde_json::to_string(&wide_stripped).expect("serialises"),
                    "{serial_name}: structure must be identical at widths 1 and {width}"
                );
            } else {
                assert_eq!(
                    serde_json::to_string(serial_value).expect("serialises"),
                    serde_json::to_string(wide_value).expect("serialises"),
                    "{serial_name}: output must be byte-identical at widths 1 and {width}"
                );
            }
        }
    }
}
