//! Property-based tests on block placement.

use drc_cluster::{Cluster, ClusterSpec, PlacementMap, PlacementPolicy};
use drc_codes::CodeKind;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn paper_code() -> impl Strategy<Value = CodeKind> {
    prop_oneof![
        Just(CodeKind::TWO_REP),
        Just(CodeKind::THREE_REP),
        Just(CodeKind::Pentagon),
        Just(CodeKind::Heptagon),
        Just(CodeKind::HeptagonLocal),
        Just(CodeKind::RAID_M_10_9),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Placement invariants: distinct up nodes per stripe, consistent forward
    /// and reverse maps, and the code's replica counts preserved.
    #[test]
    fn placement_invariants(
        code in paper_code(),
        nodes in 20usize..60,
        stripes in 1usize..20,
        slots in 1usize..5,
        policy in prop_oneof![Just(PlacementPolicy::Random), Just(PlacementPolicy::RoundRobin)],
        seed in any::<u64>(),
    ) {
        let cluster = Cluster::new(ClusterSpec::custom(nodes, 3, slots));
        let built = code.build().unwrap();
        prop_assume!(built.node_count() <= nodes);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let placement =
            PlacementMap::place(built.as_ref(), &cluster, stripes, policy, &mut rng).unwrap();

        prop_assert_eq!(placement.stripe_count(), stripes);
        prop_assert_eq!(placement.data_block_count(), stripes * built.data_blocks());

        for stripe in 0..placement.stripe_count() {
            let hosts = placement.stripe_hosts(stripe).unwrap();
            prop_assert_eq!(hosts.len(), built.node_count());
            let unique: std::collections::BTreeSet<_> = hosts.iter().collect();
            prop_assert_eq!(unique.len(), hosts.len(), "stripe reuses a node");
        }
        // Forward/reverse consistency and replica counts.
        for (id, locations) in placement.iter_data_blocks() {
            prop_assert_eq!(locations.len(), built.block_locations(id.block()).len());
            for &node in &locations {
                prop_assert!(placement.blocks_on_node(node).unwrap().contains(&id));
            }
        }
        // Total stored replicas match the code's stored block count.
        let stored: usize = cluster
            .nodes()
            .map(|n| placement.node_block_count(n).unwrap())
            .sum();
        prop_assert_eq!(stored, stripes * built.stored_blocks());
    }

    /// Placement never uses down nodes, regardless of how many are down
    /// (as long as enough remain).
    #[test]
    fn placement_avoids_down_nodes(
        down_count in 0usize..10,
        seed in any::<u64>(),
    ) {
        let mut cluster = Cluster::new(ClusterSpec::custom(30, 3, 4));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (scenario, sampled) =
            drc_cluster::FailureScenario::random(&cluster, down_count, &mut rng);
        prop_assert_eq!(sampled, down_count.min(cluster.len()));
        scenario.apply(&mut cluster);
        let code = CodeKind::HeptagonLocal.build().unwrap();
        let result = PlacementMap::place(code.as_ref(), &cluster, 5, PlacementPolicy::Random, &mut rng);
        if cluster.up_nodes().len() >= code.node_count() {
            let placement = result.unwrap();
            for stripe in 0..placement.stripe_count() {
                for n in &placement.stripe_hosts(stripe).unwrap() {
                    prop_assert!(cluster.is_up(*n));
                }
            }
        } else {
            prop_assert!(result.is_err());
        }
    }
}
