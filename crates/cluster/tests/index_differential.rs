//! Differential tests between the two [`BlockIndex`] backends: the
//! map-based reference (`IndexKind::Map`) and the arena-backed compact
//! index (`IndexKind::Compact`) must be observationally identical — same
//! lookups, same reverse scans, same errors — through arbitrary
//! place/remap sequences over every paper code and placement policy. The
//! only permitted difference is resident size, which the compact index
//! must win.
//!
//! [`BlockIndex`]: drc_cluster::BlockIndex

use drc_cluster::{
    with_index_kind, Cluster, ClusterError, ClusterSpec, GlobalBlockId, IndexKind, NodeId,
    PlacementMap, PlacementPolicy,
};
use drc_codes::CodeKind;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Every code kind the registry evaluates.
fn any_code() -> impl Strategy<Value = CodeKind> {
    prop_oneof![
        Just(CodeKind::TWO_REP),
        Just(CodeKind::THREE_REP),
        Just(CodeKind::Pentagon),
        Just(CodeKind::Heptagon),
        Just(CodeKind::HeptagonLocal),
        Just(CodeKind::RAID_M_10_9),
        Just(CodeKind::RAID_M_12_11),
        Just(CodeKind::ReedSolomon {
            data: 10,
            parity: 4,
        }),
    ]
}

fn any_policy() -> impl Strategy<Value = PlacementPolicy> {
    prop_oneof![
        Just(PlacementPolicy::Random),
        Just(PlacementPolicy::RoundRobin),
    ]
}

/// Builds the same placement (same code, cluster, stripes, policy, seed) on
/// both backends.
fn build_pair(
    code: CodeKind,
    cluster: &Cluster,
    stripes: usize,
    policy: PlacementPolicy,
    seed: u64,
) -> (PlacementMap, PlacementMap) {
    let built = code.build().unwrap();
    let build = |kind: IndexKind| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        with_index_kind(kind, || {
            PlacementMap::place(built.as_ref(), cluster, stripes, policy, &mut rng)
        })
        .unwrap()
    };
    (build(IndexKind::Map), build(IndexKind::Compact))
}

/// Asserts every observable query — forward, reverse, counts, and the
/// out-of-range error cases — answers identically on both backends.
fn assert_observationally_equal(map: &PlacementMap, compact: &PlacementMap) {
    assert_eq!(map.index_kind(), IndexKind::Map);
    assert_eq!(compact.index_kind(), IndexKind::Compact);
    assert_eq!(map.stripe_count(), compact.stripe_count());
    assert_eq!(map.arity(), compact.arity());
    assert_eq!(
        map.distinct_blocks_per_stripe(),
        compact.distinct_blocks_per_stripe()
    );
    assert_eq!(map.node_universe(), compact.node_universe());

    let stripes = map.stripe_count();
    let distinct = map.distinct_blocks_per_stripe();
    for stripe in 0..stripes {
        assert_eq!(
            map.stripe_hosts(stripe).unwrap(),
            compact.stripe_hosts(stripe).unwrap(),
            "stripe {stripe} hosts"
        );
        for block in 0..distinct {
            let id = GlobalBlockId::new(stripe, block);
            assert_eq!(
                map.locations(id).unwrap(),
                compact.locations(id).unwrap(),
                "{id:?} locations"
            );
        }
        // One past the last block of each stripe: identical error.
        let over = GlobalBlockId::new(stripe, distinct);
        assert_eq!(map.locations(over), compact.locations(over));
    }
    assert_eq!(
        map.stripe_hosts(stripes),
        compact.stripe_hosts(stripes),
        "out-of-range stripe error"
    );
    let beyond = GlobalBlockId::new(stripes, 0);
    assert_eq!(map.locations(beyond), compact.locations(beyond));

    for node in 0..map.node_universe() {
        let node = NodeId(node);
        assert_eq!(
            map.blocks_on_node(node).unwrap(),
            compact.blocks_on_node(node).unwrap(),
            "{node:?} reverse scan"
        );
        assert_eq!(
            map.node_block_count(node).unwrap(),
            compact.node_block_count(node).unwrap()
        );
        let mut map_stripes = Vec::new();
        let mut compact_stripes = Vec::new();
        map.for_each_stripe_on_node(node, |s, l| map_stripes.push((s, l)))
            .unwrap();
        compact
            .for_each_stripe_on_node(node, |s, l| compact_stripes.push((s, l)))
            .unwrap();
        assert_eq!(map_stripes, compact_stripes, "{node:?} stripe scan");
    }
    let ghost = NodeId(map.node_universe());
    assert_eq!(map.blocks_on_node(ghost), compact.blocks_on_node(ghost));
    assert!(matches!(
        compact.blocks_on_node(ghost),
        Err(ClusterError::UnknownNode { .. })
    ));

    let map_data: Vec<_> = map.iter_data_blocks().collect();
    let compact_data: Vec<_> = compact.iter_data_blocks().collect();
    assert_eq!(map_data, compact_data, "data-block iteration");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Freshly placed: both backends answer every query identically for
    /// every code × policy, and the compact index is never larger.
    #[test]
    fn backends_agree_after_placement(
        code in any_code(),
        nodes in 20usize..50,
        stripes in 1usize..16,
        policy in any_policy(),
        seed in any::<u64>(),
    ) {
        let cluster = Cluster::new(ClusterSpec::custom(nodes, 3, 4));
        prop_assume!(code.build().unwrap().node_count() <= nodes);
        let (map, compact) = build_pair(code, &cluster, stripes, policy, seed);
        assert_observationally_equal(&map, &compact);
        // No size assertion here: at these deliberately tiny sizes the
        // compact index's fixed per-node posting headers can outweigh the
        // map's (undercounted) `heap_bytes` floor. Size is asserted at
        // non-toy scale in `compact_index_undercuts_map_at_scale` below.
    }

    /// Through a random remap (repair re-homing) sequence — including
    /// deliberately invalid requests — both backends return the same
    /// `Result` for every step and stay observationally identical at the
    /// end. Exercises the mutation path the repair engine drives.
    #[test]
    fn backends_agree_through_random_remap_sequences(
        code in any_code(),
        policy in any_policy(),
        seed in any::<u64>(),
        // Each element encodes a (stripe, local, to) triple in mixed radix
        // (24 × 24 × 40); the ranges deliberately exceed the real stripe,
        // local and node counts so some steps probe the error paths.
        remaps in proptest::collection::vec(0usize..24 * 24 * 40, 0..32),
    ) {
        let nodes = 30usize;
        let stripes = 12usize;
        let cluster = Cluster::new(ClusterSpec::custom(nodes, 3, 4));
        prop_assume!(code.build().unwrap().node_count() <= nodes);
        let (mut map, mut compact) = build_pair(code, &cluster, stripes, policy, seed);
        for encoded in remaps {
            let (stripe, local, to) = (encoded % 24, (encoded / 24) % 24, encoded / (24 * 24));
            let got_map = map.remap_stripe_host(stripe, local, NodeId(to));
            let got_compact = compact.remap_stripe_host(stripe, local, NodeId(to));
            prop_assert_eq!(
                got_map,
                got_compact,
                "remap(stripe {}, local {}, to {}) diverged",
                stripe,
                local,
                to
            );
        }
        assert_observationally_equal(&map, &compact);
    }
}

/// At non-toy scale (thousands of stripes) the compact index's self-reported
/// resident size must undercut the map reference's — and the map figure is a
/// *floor* (it omits `BTreeMap` node overhead), so the real gap is wider
/// still. The allocator-measured comparison lives in `index_memory.rs`.
#[test]
fn compact_index_undercuts_map_at_scale() {
    let cluster = Cluster::new(ClusterSpec::custom(30, 3, 4));
    for code in [
        CodeKind::TWO_REP,
        CodeKind::Pentagon,
        CodeKind::HeptagonLocal,
    ] {
        let (map, compact) = build_pair(code, &cluster, 4000, PlacementPolicy::RoundRobin, 7);
        assert_observationally_equal(&map, &compact);
        assert!(
            compact.heap_bytes() < map.heap_bytes(),
            "{code}: compact {} B must undercut map {} B",
            compact.heap_bytes(),
            map.heap_bytes()
        );
    }
}
