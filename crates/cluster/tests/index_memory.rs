//! Allocator-measured memory comparison of the two placement-index
//! backends. `PlacementMap::heap_bytes` is self-reported (and deliberately
//! a floor for the map reference, which omits `BTreeMap` node overhead);
//! this test closes the loop with a counting global allocator that tracks
//! *net live bytes*, proving on real allocations that
//!
//! * the map-based reference spends strictly more resident memory than the
//!   compact arena index on the same placement, and
//! * the compact index stays within the 48 B/block target at
//!   thousands-of-stripes scale.
//!
//! Lives in its own integration-test binary so the `#[global_allocator]`
//! does not leak into other tests, and only the measured thread's
//! allocations count (the libtest harness's main thread allocates at
//! nondeterministic moments — see `crates/gf/tests/alloc_free.rs`, where
//! the thread-marker pattern originates).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};

use drc_cluster::{
    with_index_kind, Cluster, ClusterSpec, IndexKind, PlacementMap, PlacementPolicy,
};
use drc_codes::CodeKind;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct CountingAllocator;

/// Net bytes currently allocated by the measured thread (alloc − dealloc).
static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);
/// Marker address of the thread whose allocations are counted (0 = none).
static MEASURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// A per-thread address that identifies the thread inside `alloc`
    /// without allocating (const-initialised TLS never lazily allocates).
    static THREAD_MARKER: u8 = const { 0 };
}

fn on_measured_thread() -> bool {
    THREAD_MARKER
        .try_with(|m| m as *const u8 as usize)
        .map(|addr| MEASURED.load(Ordering::Relaxed) == addr)
        .unwrap_or(false)
}

fn measure_this_thread() {
    THREAD_MARKER.with(|m| MEASURED.store(m as *const u8 as usize, Ordering::Relaxed));
}

// SAFETY: `unsafe` is required by the `GlobalAlloc` contract; every call
// forwards to `System` with the caller's layout and pointer unchanged, so
// the contract is upheld verbatim and the counters touch no allocator state.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if on_measured_thread() {
            LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        }
        // SAFETY: same arguments the caller handed us.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if on_measured_thread() {
            LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        }
        // SAFETY: same arguments the caller handed us.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if on_measured_thread() {
            LIVE_BYTES.fetch_add(
                new_size as isize - layout.size() as isize,
                Ordering::Relaxed,
            );
        }
        // SAFETY: same arguments the caller handed us.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn live_bytes() -> isize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Builds a placement on `index` and returns it with the net bytes the
/// build left resident.
fn build_measured(
    kind: CodeKind,
    index: IndexKind,
    nodes: usize,
    stripes: usize,
) -> (PlacementMap, isize) {
    let code = kind.build().unwrap();
    let cluster = Cluster::new(ClusterSpec::datacenter(nodes));
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_2014);
    let before = live_bytes();
    let placement = with_index_kind(index, || {
        PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::RoundRobin,
            &mut rng,
        )
    })
    .unwrap();
    let resident = live_bytes() - before;
    assert!(
        resident > 0,
        "{kind}/{index}: building the index must leave bytes resident"
    );
    (placement, resident)
}

/// Serialised entry point: one `#[test]` drives every comparison so the
/// single measured-thread slot is never contended.
#[test]
fn map_reference_spends_strictly_more_memory_than_compact() {
    measure_this_thread();
    for kind in [
        CodeKind::TWO_REP,
        CodeKind::Pentagon,
        CodeKind::HeptagonLocal,
    ] {
        let code = kind.build().unwrap();
        let stripes = 100_000usize.div_ceil(code.distinct_blocks());
        let blocks = stripes * code.distinct_blocks();

        // Build and drop the map placement before measuring the compact one
        // so their residencies never overlap in the counter.
        let (map_placement, map_resident) = build_measured(kind, IndexKind::Map, 60, stripes);
        assert!(
            map_resident >= map_placement.heap_bytes() as isize,
            "{kind}: self-reported map size {} B must floor the measured {} B",
            map_placement.heap_bytes(),
            map_resident
        );
        drop(map_placement);

        let (compact_placement, compact_resident) =
            build_measured(kind, IndexKind::Compact, 60, stripes);

        assert!(
            compact_resident < map_resident,
            "{kind}: compact {compact_resident} B must undercut map {map_resident} B"
        );
        let bytes_per_block = compact_resident as f64 / blocks as f64;
        assert!(
            bytes_per_block <= 48.0,
            "{kind}: compact index measures {bytes_per_block:.1} B/block, target <= 48"
        );
        drop(compact_placement);
    }
}
