use std::fmt;

/// Errors produced by cluster topology and placement operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A node id does not exist in the cluster.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// The cluster has too few (up) nodes to place a stripe of the code.
    InsufficientNodes {
        /// Nodes required by one stripe of the code (its code length).
        needed: usize,
        /// Nodes available in the cluster.
        available: usize,
    },
    /// A block id does not exist in a placement (stripe or stripe-local
    /// block index out of range).
    UnknownBlock {
        /// Stripe index of the offending block id.
        stripe: usize,
        /// Stripe-local distinct-block index of the offending block id.
        block: usize,
    },
    /// A placement request was invalid (e.g. zero stripes).
    InvalidPlacement {
        /// Explanation of the problem.
        reason: String,
    },
    /// A block index's internal tables disagree with each other — a bug in
    /// the index (or a caller mutating through it concurrently), never a
    /// caller mistake. Surfaced as a typed error instead of a panic so a
    /// corrupt metadata plane fails a run loudly rather than aborting it.
    CorruptIndex {
        /// Which internal invariant was violated.
        reason: String,
    },
}

impl ClusterError {
    /// A [`ClusterError::CorruptIndex`] with the given reason.
    pub(crate) fn corrupt(reason: impl Into<String>) -> ClusterError {
        ClusterError::CorruptIndex {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode { node } => write!(f, "unknown node {node}"),
            ClusterError::InsufficientNodes { needed, available } => write!(
                f,
                "stripe needs {needed} nodes but only {available} are available"
            ),
            ClusterError::UnknownBlock { stripe, block } => {
                write!(f, "unknown block (stripe {stripe}, block {block})")
            }
            ClusterError::InvalidPlacement { reason } => write!(f, "invalid placement: {reason}"),
            ClusterError::CorruptIndex { reason } => {
                write!(f, "corrupt block index: {reason}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            ClusterError::UnknownNode { node: 3 },
            ClusterError::InsufficientNodes {
                needed: 20,
                available: 9,
            },
            ClusterError::UnknownBlock {
                stripe: 99,
                block: 1,
            },
            ClusterError::InvalidPlacement {
                reason: "zero stripes".into(),
            },
            ClusterError::corrupt("postings disagree with the arena"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
