//! Cluster hardware specifications, including the paper's two experimental
//! set-ups (§4).

use serde::{Deserialize, Serialize};

/// Static description of a homogeneous Hadoop cluster.
///
/// The fields mirror the knobs the paper varies or reports: node count, map
/// and reduce slots per node, block size, and the disk / network bandwidth
/// that determine how much slower a remote (non-local) map task is than a
/// local one.
///
/// # Example
///
/// ```
/// use drc_cluster::ClusterSpec;
///
/// let s1 = ClusterSpec::setup1();
/// assert_eq!(s1.data_nodes, 25);
/// assert_eq!(s1.map_slots_per_node, 2);
/// assert_eq!(s1.total_map_slots(), 50);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable name of the set-up.
    pub name: String,
    /// Number of data nodes (excludes the master that hosts NameNode,
    /// JobTracker and RaidNode).
    pub data_nodes: usize,
    /// Number of racks the data nodes are spread over.
    pub racks: usize,
    /// Map slots configured per node.
    pub map_slots_per_node: usize,
    /// Reduce slots configured per node.
    pub reduce_slots_per_node: usize,
    /// Processor cores per node.
    pub cores_per_node: usize,
    /// HDFS block size in MiB.
    pub block_size_mb: u64,
    /// Sustained disk read bandwidth per node, in MiB/s.
    pub disk_bandwidth_mbps: f64,
    /// Usable network bandwidth per node, in MiB/s.
    pub network_bandwidth_mbps: f64,
    /// RAM per node in GiB (informational; not used by the simulator).
    pub ram_gb: u64,
}

impl ClusterSpec {
    /// The paper's set-up 1: 25 dual-core IBM laptops, 3 GB RAM, 128 MB
    /// blocks, 2 map + 1 reduce slots, shared 10 Gbps LAN.
    pub fn setup1() -> Self {
        ClusterSpec {
            name: "setup1 (25 nodes, 2 map slots)".to_string(),
            data_nodes: 25,
            racks: 1,
            map_slots_per_node: 2,
            reduce_slots_per_node: 1,
            cores_per_node: 2,
            block_size_mb: 128,
            // Laptop-class disks and a 10 Gbps LAN shared by 25 nodes:
            // effective per-node network bandwidth is what limits remote reads.
            disk_bandwidth_mbps: 90.0,
            network_bandwidth_mbps: 45.0,
            ram_gb: 3,
        }
    }

    /// The paper's set-up 2: 9 server-class nodes with 4 cores, 24 GB RAM,
    /// 512 MB blocks, 4 map + 2 reduce slots.
    pub fn setup2() -> Self {
        ClusterSpec {
            name: "setup2 (9 nodes, 4 map slots)".to_string(),
            data_nodes: 9,
            racks: 1,
            map_slots_per_node: 4,
            reduce_slots_per_node: 2,
            cores_per_node: 4,
            block_size_mb: 512,
            disk_bandwidth_mbps: 160.0,
            network_bandwidth_mbps: 110.0,
            ram_gb: 24,
        }
    }

    /// The 25-node system used for the Fig. 3 locality simulations and the
    /// Table 1 MTTDL analysis, parameterised by map slots per node.
    pub fn simulation_25(map_slots_per_node: usize) -> Self {
        ClusterSpec {
            name: format!("simulated 25-node cluster ({map_slots_per_node} map slots)"),
            data_nodes: 25,
            racks: 3,
            map_slots_per_node,
            reduce_slots_per_node: 1,
            cores_per_node: map_slots_per_node,
            block_size_mb: 128,
            disk_bandwidth_mbps: 100.0,
            network_bandwidth_mbps: 60.0,
            ram_gb: 8,
        }
    }

    /// A general custom cluster with sensible defaults for the remaining
    /// parameters.
    pub fn custom(data_nodes: usize, racks: usize, map_slots_per_node: usize) -> Self {
        ClusterSpec {
            name: format!("{data_nodes}-node cluster"),
            data_nodes,
            racks: racks.max(1),
            map_slots_per_node,
            reduce_slots_per_node: 1,
            cores_per_node: map_slots_per_node,
            block_size_mb: 128,
            disk_bandwidth_mbps: 100.0,
            network_bandwidth_mbps: 60.0,
            ram_gb: 8,
        }
    }

    /// A datacenter-scale cluster for the metadata-plane experiments:
    /// `data_nodes` server-class nodes spread over racks of 40, with the
    /// set-up-2 per-node hardware. Node counts of 1000+ are the intended
    /// range; placement and indexing stay O(blocks), not O(nodes × blocks).
    pub fn datacenter(data_nodes: usize) -> Self {
        ClusterSpec {
            name: format!("datacenter ({data_nodes} nodes)"),
            data_nodes,
            racks: data_nodes.div_ceil(40).max(1),
            map_slots_per_node: 4,
            reduce_slots_per_node: 2,
            cores_per_node: 4,
            block_size_mb: 128,
            disk_bandwidth_mbps: 160.0,
            network_bandwidth_mbps: 110.0,
            ram_gb: 24,
        }
    }

    /// Total map slots in the cluster (the denominator of the paper's *load*
    /// definition in §3.2).
    pub fn total_map_slots(&self) -> usize {
        self.data_nodes * self.map_slots_per_node
    }

    /// Total reduce slots in the cluster.
    pub fn total_reduce_slots(&self) -> usize {
        self.data_nodes * self.reduce_slots_per_node
    }

    /// The number of map tasks corresponding to a given load percentage
    /// (load = tasks / total map slots × 100, §3.2).
    pub fn tasks_for_load(&self, load_percent: f64) -> usize {
        // drc-lint: allow(lossy-float-cast): explicitly rounded; load
        // percentages are experiment-grid constants (25..=200), never
        // computed values that could go non-finite.
        ((load_percent / 100.0) * self.total_map_slots() as f64).round() as usize
    }

    /// The load percentage corresponding to a task count.
    pub fn load_for_tasks(&self, tasks: usize) -> f64 {
        tasks as f64 / self.total_map_slots() as f64 * 100.0
    }

    /// Block size in bytes.
    pub fn block_size_bytes(&self) -> u64 {
        self.block_size_mb * 1024 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup1_matches_paper() {
        let s = ClusterSpec::setup1();
        assert_eq!(s.data_nodes, 25);
        assert_eq!(s.map_slots_per_node, 2);
        assert_eq!(s.reduce_slots_per_node, 1);
        assert_eq!(s.cores_per_node, 2);
        assert_eq!(s.block_size_mb, 128);
        assert_eq!(s.total_map_slots(), 50);
    }

    #[test]
    fn setup2_matches_paper() {
        let s = ClusterSpec::setup2();
        assert_eq!(s.data_nodes, 9);
        assert_eq!(s.map_slots_per_node, 4);
        assert_eq!(s.reduce_slots_per_node, 2);
        assert_eq!(s.block_size_mb, 512);
        assert_eq!(s.total_map_slots(), 36);
    }

    #[test]
    fn load_math_matches_paper_example() {
        // §3.2: "A 100-node system that handles 250 map tasks, with 4 map
        // slots per node, is operating under a load of 62.5%."
        let s = ClusterSpec::custom(100, 1, 4);
        assert_eq!(s.total_map_slots(), 400);
        assert!((s.load_for_tasks(250) - 62.5).abs() < 1e-12);
        assert_eq!(s.tasks_for_load(62.5), 250);
    }

    #[test]
    fn simulation_cluster_slots() {
        for mu in [2, 4, 8] {
            let s = ClusterSpec::simulation_25(mu);
            assert_eq!(s.total_map_slots(), 25 * mu);
            assert_eq!(s.tasks_for_load(100.0), 25 * mu);
            assert_eq!(s.tasks_for_load(50.0), 25 * mu / 2);
        }
    }

    #[test]
    fn datacenter_scales_racks_with_nodes() {
        let s = ClusterSpec::datacenter(1000);
        assert_eq!(s.data_nodes, 1000);
        assert_eq!(s.racks, 25);
        assert_eq!(s.total_map_slots(), 4000);
        assert_eq!(ClusterSpec::datacenter(1).racks, 1);
    }

    #[test]
    fn block_size_conversion() {
        assert_eq!(ClusterSpec::setup1().block_size_bytes(), 128 * 1024 * 1024);
    }
}
