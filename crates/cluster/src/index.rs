//! Pluggable block-index backends for [`PlacementMap`](crate::PlacementMap).
//!
//! The metadata plane answers three queries: *block → replica locations*
//! (every read), *node → blocks* (every repair pass) and *stripe → hosts*
//! (degraded reads). This module provides a [`BlockIndex`] trait over those
//! queries plus two implementations:
//!
//! * [`MapIndex`] — the reference: a `BTreeMap<GlobalBlockId, Vec<NodeId>>`
//!   plus a reverse `BTreeMap<NodeId, Vec<GlobalBlockId>>` that duplicates
//!   every entry. Simple, but hundreds of bytes and several heap blocks per
//!   placed block.
//! * [`CompactIndex`] — exploits the structure of striped placement: the
//!   placement of a whole stripe is a fixed arity-`n` run of `u32` node ids
//!   in one flat arena, and every per-block answer is derived from that run
//!   through the code's (stripe-invariant) block↔local tables. The reverse
//!   view is a per-node postings list of `u32` arena offsets, updated
//!   incrementally on repair writes.
//!
//! Both implementations answer every query identically (the differential
//! proptests in `tests/index_differential.rs` drive them through random
//! place/remap sequences); they differ only in memory footprint and scan
//! speed. See `crates/cluster/INTERNALS.md` for the layout details and
//! measured bytes/block.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::mem::size_of;
use std::ops::Deref;

use serde::de::DeError;
use serde::value::Value;
use serde::{Deserialize, Serialize};

use drc_codes::ErasureCode;

use crate::topology::NodeId;
use crate::ClusterError;

/// Identifier of a distinct coded block across a whole placement, packed
/// into a single `u64`: the stripe index in the high 32 bits and the
/// stripe-local distinct-block index in the low 32 bits.
///
/// # Ordering
///
/// Because the stripe occupies the high bits, the derived `Ord` on the packed
/// `u64` is exactly the lexicographic `(stripe, block)` order the unpacked
/// two-field struct had — sorted id sequences and `BTreeMap` iteration order
/// are unchanged by the packing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct GlobalBlockId(u64);

impl GlobalBlockId {
    /// Packs a stripe index and a stripe-local block index into an id.
    ///
    /// # Panics
    ///
    /// Panics if either index does not fit in 32 bits.
    pub const fn new(stripe: usize, block: usize) -> Self {
        assert!(stripe <= u32::MAX as usize, "stripe index exceeds u32");
        assert!(block <= u32::MAX as usize, "block index exceeds u32");
        GlobalBlockId(((stripe as u64) << 32) | block as u64)
    }

    /// Index of the stripe within the placement.
    pub const fn stripe(self) -> usize {
        (self.0 >> 32) as usize
    }

    /// Distinct-block index within the stripe.
    pub const fn block(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    /// The raw packed representation.
    pub const fn packed(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its packed representation.
    pub const fn from_packed(packed: u64) -> Self {
        GlobalBlockId(packed)
    }
}

impl fmt::Debug for GlobalBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keep the unpacked two-field rendering: error messages and test
        // diagnostics talk about stripes and blocks, not packed words.
        f.debug_struct("GlobalBlockId")
            .field("stripe", &self.stripe())
            .field("block", &self.block())
            .finish()
    }
}

/// Replica-location capacity kept inline (the longest built-in stripe, the
/// (10,9) RAID+m, spans 20 nodes); longer answers spill to the heap.
const INLINE_NODES: usize = 20;

/// A short list of cluster nodes returned by index queries.
///
/// Stores up to 20 ids inline (`INLINE_NODES`) so the metadata hot paths
/// (location lookups, stripe-host fetches) do not allocate; arbitrary-arity
/// Reed–Solomon configurations spill to a heap vector. Dereferences to
/// `[NodeId]`, so all slice methods apply.
#[derive(Clone)]
pub struct NodeList {
    len: u32,
    inline: [NodeId; INLINE_NODES],
    spill: Vec<NodeId>,
}

impl NodeList {
    /// An empty list.
    pub fn new() -> Self {
        NodeList {
            len: 0,
            inline: [NodeId(0); INLINE_NODES],
            spill: Vec::new(),
        }
    }

    /// Appends a node.
    pub fn push(&mut self, node: NodeId) {
        let len = self.len as usize;
        if !self.spill.is_empty() {
            self.spill.push(node);
        } else if len < INLINE_NODES {
            self.inline[len] = node;
        } else {
            self.spill.reserve(len + 1);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(node);
        }
        self.len += 1;
    }

    /// The nodes as a slice.
    pub fn as_slice(&self) -> &[NodeId] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl Default for NodeList {
    fn default() -> Self {
        NodeList::new()
    }
}

impl Deref for NodeList {
    type Target = [NodeId];

    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

impl From<&[NodeId]> for NodeList {
    fn from(nodes: &[NodeId]) -> Self {
        let mut list = NodeList::new();
        for &n in nodes {
            list.push(n);
        }
        list
    }
}

impl FromIterator<NodeId> for NodeList {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut list = NodeList::new();
        for n in iter {
            list.push(n);
        }
        list
    }
}

impl<'a> IntoIterator for &'a NodeList {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for NodeList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for NodeList {}

impl PartialEq<[NodeId]> for NodeList {
    fn eq(&self, other: &[NodeId]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for NodeList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl Serialize for NodeList {
    fn serialize(&self) -> Value {
        Value::Seq(self.as_slice().iter().map(Serialize::serialize).collect())
    }
}

impl Deserialize for NodeList {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let nodes = Vec::<NodeId>::deserialize(v)?;
        Ok(nodes.into_iter().collect())
    }
}

/// Which [`BlockIndex`] backend a placement uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum IndexKind {
    /// The reference `BTreeMap` double-store ([`MapIndex`]).
    Map,
    /// The flat stripe arena with per-node postings ([`CompactIndex`]).
    #[default]
    Compact,
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKind::Map => write!(f, "map"),
            IndexKind::Compact => write!(f, "compact"),
        }
    }
}

thread_local! {
    static INDEX_OVERRIDE: Cell<Option<IndexKind>> = const { Cell::new(None) };
}

impl IndexKind {
    /// The backend new placements on this thread use: a scoped
    /// [`with_index_kind`] override if one is active, else the
    /// `DRC_BLOCK_INDEX` environment variable (`map` or `compact`), else
    /// [`IndexKind::Compact`].
    pub fn current() -> IndexKind {
        if let Some(kind) = INDEX_OVERRIDE.with(Cell::get) {
            return kind;
        }
        match std::env::var("DRC_BLOCK_INDEX").ok().as_deref() {
            Some("map") => IndexKind::Map,
            Some("compact") => IndexKind::Compact,
            _ => IndexKind::Compact,
        }
    }
}

/// Runs `f` with every placement built on this thread using `kind`,
/// restoring the previous selection afterwards (also on panic).
///
/// This is how the differential tests run the same experiment under both
/// backends in one process without racing on an environment variable.
pub fn with_index_kind<T>(kind: IndexKind, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<IndexKind>);
    impl Drop for Restore {
        fn drop(&mut self) {
            INDEX_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(INDEX_OVERRIDE.with(|c| c.replace(Some(kind))));
    f()
}

/// The stripe-invariant block↔local structure of a code, in compressed
/// sparse row form: which stripe-local nodes hold copies of each distinct
/// block (in the code's replica order), and which distinct blocks each
/// stripe-local node stores (ascending).
///
/// Built once per placement; every per-block query of both index backends is
/// answered through these two small tables, so nothing is stored per block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeShape {
    arity: u32,
    distinct_blocks: u32,
    data_blocks: u32,
    block_local_offsets: Vec<u32>,
    block_locals: Vec<u16>,
    local_block_offsets: Vec<u32>,
    local_blocks: Vec<u16>,
}

impl CodeShape {
    /// Extracts the shape of `code`.
    ///
    /// # Panics
    ///
    /// Panics if the code's arity or distinct-block count exceeds `u16`
    /// (no realistic erasure code comes close).
    pub fn of(code: &dyn ErasureCode) -> Self {
        let arity = code.node_count();
        let distinct = code.distinct_blocks();
        assert!(arity <= u16::MAX as usize, "code arity exceeds u16");
        assert!(
            distinct <= u16::MAX as usize,
            "distinct block count exceeds u16"
        );
        let mut block_local_offsets = Vec::with_capacity(distinct + 1);
        let mut block_locals = Vec::new();
        block_local_offsets.push(0);
        for block in 0..distinct {
            for &local in code.block_locations(block) {
                block_locals.push(local as u16);
            }
            block_local_offsets.push(block_locals.len() as u32);
        }
        let mut local_block_offsets = Vec::with_capacity(arity + 1);
        let mut local_blocks = Vec::new();
        local_block_offsets.push(0);
        for local in 0..arity {
            let mut blocks: Vec<u16> = code.node_blocks(local).iter().map(|&b| b as u16).collect();
            // The reverse rows are sorted so node scans emit blocks in
            // ascending (stripe, block) order, matching the map reference.
            blocks.sort_unstable();
            local_blocks.extend_from_slice(&blocks);
            local_block_offsets.push(local_blocks.len() as u32);
        }
        CodeShape {
            arity: arity as u32,
            distinct_blocks: distinct as u32,
            data_blocks: code.data_blocks() as u32,
            block_local_offsets,
            block_locals,
            local_block_offsets,
            local_blocks,
        }
    }

    /// Stripe-local nodes holding copies of `block`, in the code's replica
    /// order.
    pub fn locals_of_block(&self, block: usize) -> &[u16] {
        let start = self.block_local_offsets[block] as usize;
        let end = self.block_local_offsets[block + 1] as usize;
        &self.block_locals[start..end]
    }

    /// Distinct blocks stored on stripe-local node `local`, ascending.
    pub fn blocks_of_local(&self, local: usize) -> &[u16] {
        let start = self.local_block_offsets[local] as usize;
        let end = self.local_block_offsets[local + 1] as usize;
        &self.local_blocks[start..end]
    }

    /// The code's arity (cluster nodes per stripe).
    pub fn arity(&self) -> usize {
        self.arity as usize
    }

    /// Distinct blocks per stripe.
    pub fn distinct_blocks(&self) -> usize {
        self.distinct_blocks as usize
    }

    /// Data blocks per stripe.
    pub fn data_blocks(&self) -> usize {
        self.data_blocks as usize
    }

    fn heap_bytes(&self) -> usize {
        self.block_local_offsets.capacity() * size_of::<u32>()
            + self.block_locals.capacity() * size_of::<u16>()
            + self.local_block_offsets.capacity() * size_of::<u32>()
            + self.local_blocks.capacity() * size_of::<u16>()
    }
}

/// The flat per-stripe host arena shared by both backends: row `s` holds the
/// `arity` cluster-node ids (as `u32`) hosting stripe `s`'s local nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct StripeArena {
    arity: u32,
    hosts: Vec<u32>,
}

impl StripeArena {
    fn with_capacity(arity: usize, stripes: usize) -> Self {
        StripeArena {
            arity: arity as u32,
            hosts: Vec::with_capacity(arity * stripes),
        }
    }

    fn stripe_count(&self) -> usize {
        self.hosts.len() / self.arity as usize
    }

    fn push_stripe(&mut self, nodes: &[NodeId]) {
        debug_assert_eq!(nodes.len(), self.arity as usize);
        for &n in nodes {
            debug_assert!(n.0 <= u32::MAX as usize, "node id exceeds u32");
            self.hosts.push(n.0 as u32);
        }
    }

    fn host(&self, stripe: usize, local: usize) -> NodeId {
        NodeId(self.hosts[stripe * self.arity as usize + local] as usize)
    }

    fn row(&self, stripe: usize) -> &[u32] {
        let arity = self.arity as usize;
        &self.hosts[stripe * arity..(stripe + 1) * arity]
    }

    fn set_host(&mut self, stripe: usize, local: usize, node: NodeId) {
        self.hosts[stripe * self.arity as usize + local] = node.0 as u32;
    }

    fn heap_bytes(&self) -> usize {
        self.hosts.capacity() * size_of::<u32>()
    }
}

/// The three metadata-plane queries plus the repair-time mutation, abstracted
/// over storage layout.
///
/// All methods are total over *valid* ids and fail loudly on invalid ones —
/// an unknown block or node is a [`ClusterError`], never a silently empty
/// answer (a node inside the placement's universe that happens to store
/// nothing still answers `Ok` with an empty scan).
pub trait BlockIndex {
    /// Name of the code this placement was built for.
    fn code_name(&self) -> &str;

    /// The code's stripe-invariant block↔local structure.
    fn shape(&self) -> &CodeShape;

    /// Number of stripes placed.
    fn stripe_count(&self) -> usize;

    /// Number of cluster nodes the placement was built against; node ids
    /// `0..node_universe()` are valid query arguments.
    fn node_universe(&self) -> usize;

    /// The cluster nodes holding a replica of `block`, in the code's replica
    /// order.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownBlock`] if the stripe or block index is out of
    /// range.
    fn locations(&self, block: GlobalBlockId) -> Result<NodeList, ClusterError>;

    /// The cluster nodes hosting stripe `stripe`'s local nodes, in local
    /// order.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownBlock`] if the stripe index is out of range.
    fn stripe_hosts(&self, stripe: usize) -> Result<NodeList, ClusterError>;

    /// Calls `f` with every block (data and parity) stored on `node`, in
    /// ascending `(stripe, block)` order.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] if `node` is outside the placement's
    /// node universe.
    fn for_each_block_on_node(
        &self,
        node: NodeId,
        f: &mut dyn FnMut(GlobalBlockId),
    ) -> Result<(), ClusterError>;

    /// Calls `f` with every `(stripe, local)` pair hosted by `node`, in
    /// ascending stripe order — the granularity repair works at.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] if `node` is outside the placement's
    /// node universe.
    fn for_each_stripe_on_node(
        &self,
        node: NodeId,
        f: &mut dyn FnMut(usize, usize),
    ) -> Result<(), ClusterError>;

    /// Number of blocks stored on `node`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] if `node` is outside the placement's
    /// node universe.
    fn node_block_count(&self, node: NodeId) -> Result<usize, ClusterError>;

    /// Re-homes stripe `stripe`'s local node `local` onto cluster node `to`
    /// (what a repair does after reconstructing a lost node's blocks
    /// elsewhere). Returns the previous host.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownBlock`] for an out-of-range stripe or local
    /// index, [`ClusterError::UnknownNode`] if `to` is outside the node
    /// universe, and [`ClusterError::InvalidPlacement`] if `to` already
    /// hosts a different local node of the same stripe (stripes must span
    /// distinct cluster nodes).
    fn remap_stripe_host(
        &mut self,
        stripe: usize,
        local: usize,
        to: NodeId,
    ) -> Result<NodeId, ClusterError>;

    /// Estimated heap bytes resident in the index (vector buffers and map
    /// entries; `BTreeMap` node overhead is *not* counted, so the figure is
    /// a floor for the map reference).
    fn heap_bytes(&self) -> usize;
}

fn check_block(
    shape: &CodeShape,
    stripes: usize,
    block: GlobalBlockId,
) -> Result<(), ClusterError> {
    if block.stripe() >= stripes || block.block() >= shape.distinct_blocks() {
        return Err(ClusterError::UnknownBlock {
            stripe: block.stripe(),
            block: block.block(),
        });
    }
    Ok(())
}

fn check_stripe(stripes: usize, stripe: usize) -> Result<(), ClusterError> {
    if stripe >= stripes {
        return Err(ClusterError::UnknownBlock { stripe, block: 0 });
    }
    Ok(())
}

fn check_local(shape: &CodeShape, local: usize) -> Result<(), ClusterError> {
    if local >= shape.arity() {
        return Err(ClusterError::InvalidPlacement {
            reason: format!(
                "local index {local} out of range for arity {}",
                shape.arity()
            ),
        });
    }
    Ok(())
}

fn check_node(universe: usize, node: NodeId) -> Result<(), ClusterError> {
    if node.0 >= universe {
        return Err(ClusterError::UnknownNode { node: node.0 });
    }
    Ok(())
}

fn check_remap_target(
    arena: &StripeArena,
    stripe: usize,
    local: usize,
    to: NodeId,
) -> Result<(), ClusterError> {
    let row = arena.row(stripe);
    if let Some(other) = (0..row.len()).find(|&l| l != local && row[l] as usize == to.0) {
        return Err(ClusterError::InvalidPlacement {
            reason: format!(
                "node {} already hosts local {other} of stripe {stripe}",
                to.0
            ),
        });
    }
    Ok(())
}

/// The reference backend: the original `BTreeMap` double-store, one entry
/// per block in each direction. Kept as the behavioural oracle for
/// [`CompactIndex`] and as the memory baseline the bench reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapIndex {
    code_name: String,
    shape: CodeShape,
    arena: StripeArena,
    node_universe: usize,
    /// block -> cluster nodes holding a replica.
    locations: BTreeMap<GlobalBlockId, Vec<NodeId>>,
    /// cluster node -> blocks it stores (ascending).
    per_node: BTreeMap<NodeId, Vec<GlobalBlockId>>,
}

impl MapIndex {
    fn new(code_name: String, shape: CodeShape, arena: StripeArena, node_universe: usize) -> Self {
        let mut locations: BTreeMap<GlobalBlockId, Vec<NodeId>> = BTreeMap::new();
        let mut per_node: BTreeMap<NodeId, Vec<GlobalBlockId>> = BTreeMap::new();
        for stripe in 0..arena.stripe_count() {
            for block in 0..shape.distinct_blocks() {
                let id = GlobalBlockId::new(stripe, block);
                let nodes: Vec<NodeId> = shape
                    .locals_of_block(block)
                    .iter()
                    .map(|&local| arena.host(stripe, local as usize))
                    .collect();
                for &n in &nodes {
                    per_node.entry(n).or_default().push(id);
                }
                locations.insert(id, nodes);
            }
        }
        MapIndex {
            code_name,
            shape,
            arena,
            node_universe,
            locations,
            per_node,
        }
    }
}

impl BlockIndex for MapIndex {
    fn code_name(&self) -> &str {
        &self.code_name
    }

    fn shape(&self) -> &CodeShape {
        &self.shape
    }

    fn stripe_count(&self) -> usize {
        self.arena.stripe_count()
    }

    fn node_universe(&self) -> usize {
        self.node_universe
    }

    fn locations(&self, block: GlobalBlockId) -> Result<NodeList, ClusterError> {
        check_block(&self.shape, self.stripe_count(), block)?;
        let nodes = self.locations.get(&block).ok_or_else(|| {
            ClusterError::corrupt(format!(
                "in-range block (stripe {}, block {}) missing from the location map",
                block.stripe(),
                block.block()
            ))
        })?;
        Ok(nodes.as_slice().into())
    }

    fn stripe_hosts(&self, stripe: usize) -> Result<NodeList, ClusterError> {
        check_stripe(self.stripe_count(), stripe)?;
        Ok(self
            .arena
            .row(stripe)
            .iter()
            .map(|&n| NodeId(n as usize))
            .collect())
    }

    fn for_each_block_on_node(
        &self,
        node: NodeId,
        f: &mut dyn FnMut(GlobalBlockId),
    ) -> Result<(), ClusterError> {
        check_node(self.node_universe, node)?;
        if let Some(blocks) = self.per_node.get(&node) {
            for &id in blocks {
                f(id);
            }
        }
        Ok(())
    }

    fn for_each_stripe_on_node(
        &self,
        node: NodeId,
        f: &mut dyn FnMut(usize, usize),
    ) -> Result<(), ClusterError> {
        check_node(self.node_universe, node)?;
        if let Some(blocks) = self.per_node.get(&node) {
            let mut last_stripe = usize::MAX;
            for &id in blocks {
                let stripe = id.stripe();
                if stripe == last_stripe {
                    continue;
                }
                last_stripe = stripe;
                let row = self.arena.row(stripe);
                let local = row
                    .iter()
                    .position(|&h| h as usize == node.0)
                    .ok_or_else(|| {
                        ClusterError::corrupt(format!(
                            "node {} is indexed under stripe {stripe} but hosts none of its locals",
                            node.0
                        ))
                    })?;
                f(stripe, local);
            }
        }
        Ok(())
    }

    fn node_block_count(&self, node: NodeId) -> Result<usize, ClusterError> {
        check_node(self.node_universe, node)?;
        Ok(self.per_node.get(&node).map_or(0, Vec::len))
    }

    fn remap_stripe_host(
        &mut self,
        stripe: usize,
        local: usize,
        to: NodeId,
    ) -> Result<NodeId, ClusterError> {
        check_stripe(self.stripe_count(), stripe)?;
        check_local(&self.shape, local)?;
        check_node(self.node_universe, to)?;
        let from = self.arena.host(stripe, local);
        if from == to {
            return Ok(from);
        }
        check_remap_target(&self.arena, stripe, local, to)?;
        self.arena.set_host(stripe, local, to);
        for &block in self.shape.blocks_of_local(local) {
            let id = GlobalBlockId::new(stripe, block as usize);
            let slot = self
                .shape
                .locals_of_block(block as usize)
                .iter()
                .position(|&l| l as usize == local)
                .ok_or_else(|| {
                    ClusterError::corrupt(format!(
                        "local {local} stores block {block} but is absent from its locals list"
                    ))
                })?;
            self.locations.get_mut(&id).ok_or_else(|| {
                ClusterError::corrupt(format!(
                    "in-range block (stripe {stripe}, block {block}) missing from the \
                         location map"
                ))
            })?[slot] = to;
            let old_list = self.per_node.get_mut(&from).ok_or_else(|| {
                ClusterError::corrupt(format!("previous host {} has no postings entry", from.0))
            })?;
            let pos = old_list.binary_search(&id).map_err(|_| {
                ClusterError::corrupt(format!(
                    "previous host {} does not list block (stripe {stripe}, block {block})",
                    from.0
                ))
            })?;
            old_list.remove(pos);
            let new_list = self.per_node.entry(to).or_default();
            let pos = new_list.binary_search(&id).err().ok_or_else(|| {
                ClusterError::corrupt(format!(
                    "target host {} already lists block (stripe {stripe}, block {block})",
                    to.0
                ))
            })?;
            new_list.insert(pos, id);
        }
        if self.per_node.get(&from).is_some_and(Vec::is_empty) {
            self.per_node.remove(&from);
        }
        Ok(from)
    }

    fn heap_bytes(&self) -> usize {
        let location_entries =
            self.locations.len() * (size_of::<GlobalBlockId>() + size_of::<Vec<NodeId>>());
        let location_vecs: usize = self
            .locations
            .values()
            .map(|v| v.capacity() * size_of::<NodeId>())
            .sum();
        let per_node_entries =
            self.per_node.len() * (size_of::<NodeId>() + size_of::<Vec<GlobalBlockId>>());
        let per_node_vecs: usize = self
            .per_node
            .values()
            .map(|v| v.capacity() * size_of::<GlobalBlockId>())
            .sum();
        self.code_name.capacity()
            + self.shape.heap_bytes()
            + self.arena.heap_bytes()
            + location_entries
            + location_vecs
            + per_node_entries
            + per_node_vecs
    }
}

/// The compact backend: block → locations answered straight from the stripe
/// arena through the code shape, node → blocks served by per-node postings
/// of `u32` arena offsets. Nothing is stored per block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactIndex {
    code_name: String,
    shape: CodeShape,
    arena: StripeArena,
    node_universe: usize,
    /// `postings[n]` lists the arena offsets (`stripe * arity + local`) whose
    /// host is node `n`, ascending — i.e. stripes in ascending order.
    postings: Vec<Vec<u32>>,
}

impl CompactIndex {
    fn new(code_name: String, shape: CodeShape, arena: StripeArena, node_universe: usize) -> Self {
        let mut counts = vec![0usize; node_universe];
        for &host in &arena.hosts {
            counts[host as usize] += 1;
        }
        let mut postings: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (offset, &host) in arena.hosts.iter().enumerate() {
            postings[host as usize].push(offset as u32);
        }
        CompactIndex {
            code_name,
            shape,
            arena,
            node_universe,
            postings,
        }
    }
}

impl BlockIndex for CompactIndex {
    fn code_name(&self) -> &str {
        &self.code_name
    }

    fn shape(&self) -> &CodeShape {
        &self.shape
    }

    fn stripe_count(&self) -> usize {
        self.arena.stripe_count()
    }

    fn node_universe(&self) -> usize {
        self.node_universe
    }

    fn locations(&self, block: GlobalBlockId) -> Result<NodeList, ClusterError> {
        check_block(&self.shape, self.stripe_count(), block)?;
        let stripe = block.stripe();
        Ok(self
            .shape
            .locals_of_block(block.block())
            .iter()
            .map(|&local| self.arena.host(stripe, local as usize))
            .collect())
    }

    fn stripe_hosts(&self, stripe: usize) -> Result<NodeList, ClusterError> {
        check_stripe(self.stripe_count(), stripe)?;
        Ok(self
            .arena
            .row(stripe)
            .iter()
            .map(|&n| NodeId(n as usize))
            .collect())
    }

    fn for_each_block_on_node(
        &self,
        node: NodeId,
        f: &mut dyn FnMut(GlobalBlockId),
    ) -> Result<(), ClusterError> {
        check_node(self.node_universe, node)?;
        let arity = self.shape.arity();
        for &offset in &self.postings[node.0] {
            let stripe = offset as usize / arity;
            let local = offset as usize % arity;
            for &block in self.shape.blocks_of_local(local) {
                f(GlobalBlockId::new(stripe, block as usize));
            }
        }
        Ok(())
    }

    fn for_each_stripe_on_node(
        &self,
        node: NodeId,
        f: &mut dyn FnMut(usize, usize),
    ) -> Result<(), ClusterError> {
        check_node(self.node_universe, node)?;
        let arity = self.shape.arity();
        for &offset in &self.postings[node.0] {
            f(offset as usize / arity, offset as usize % arity);
        }
        Ok(())
    }

    fn node_block_count(&self, node: NodeId) -> Result<usize, ClusterError> {
        check_node(self.node_universe, node)?;
        let arity = self.shape.arity();
        Ok(self.postings[node.0]
            .iter()
            .map(|&offset| self.shape.blocks_of_local(offset as usize % arity).len())
            .sum())
    }

    fn remap_stripe_host(
        &mut self,
        stripe: usize,
        local: usize,
        to: NodeId,
    ) -> Result<NodeId, ClusterError> {
        check_stripe(self.stripe_count(), stripe)?;
        check_local(&self.shape, local)?;
        check_node(self.node_universe, to)?;
        let from = self.arena.host(stripe, local);
        if from == to {
            return Ok(from);
        }
        check_remap_target(&self.arena, stripe, local, to)?;
        self.arena.set_host(stripe, local, to);
        let offset = (stripe * self.shape.arity() + local) as u32;
        let old_list = &mut self.postings[from.0];
        let pos = old_list.binary_search(&offset).map_err(|_| {
            ClusterError::corrupt(format!(
                "previous host {} does not list arena offset {offset}",
                from.0
            ))
        })?;
        old_list.remove(pos);
        let new_list = &mut self.postings[to.0];
        let pos = new_list.binary_search(&offset).err().ok_or_else(|| {
            ClusterError::corrupt(format!(
                "target host {} already lists arena offset {offset}",
                to.0
            ))
        })?;
        new_list.insert(pos, offset);
        Ok(from)
    }

    fn heap_bytes(&self) -> usize {
        let posting_headers = self.postings.capacity() * size_of::<Vec<u32>>();
        let posting_bytes: usize = self
            .postings
            .iter()
            .map(|p| p.capacity() * size_of::<u32>())
            .sum();
        self.code_name.capacity()
            + self.shape.heap_bytes()
            + self.arena.heap_bytes()
            + posting_headers
            + posting_bytes
    }
}

/// The concrete backend held by a [`PlacementMap`](crate::PlacementMap).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementIndex {
    /// The reference `BTreeMap` double-store.
    Map(MapIndex),
    /// The flat-arena compact index.
    Compact(CompactIndex),
}

impl PlacementIndex {
    pub(crate) fn build(
        kind: IndexKind,
        code_name: String,
        shape: CodeShape,
        arena: StripeArena,
        node_universe: usize,
    ) -> Self {
        match kind {
            IndexKind::Map => {
                PlacementIndex::Map(MapIndex::new(code_name, shape, arena, node_universe))
            }
            IndexKind::Compact => {
                PlacementIndex::Compact(CompactIndex::new(code_name, shape, arena, node_universe))
            }
        }
    }

    /// Which backend this is.
    pub fn kind(&self) -> IndexKind {
        match self {
            PlacementIndex::Map(_) => IndexKind::Map,
            PlacementIndex::Compact(_) => IndexKind::Compact,
        }
    }

    /// The backend as a trait object.
    pub fn as_dyn(&self) -> &dyn BlockIndex {
        match self {
            PlacementIndex::Map(index) => index,
            PlacementIndex::Compact(index) => index,
        }
    }

    /// The backend as a mutable trait object.
    pub fn as_dyn_mut(&mut self) -> &mut dyn BlockIndex {
        match self {
            PlacementIndex::Map(index) => index,
            PlacementIndex::Compact(index) => index,
        }
    }
}

pub(crate) use builder::ArenaBuilder;

mod builder {
    //! Arena construction kept separate so `placement.rs` can fill stripes
    //! without seeing the arena internals.

    use super::{CodeShape, IndexKind, PlacementIndex, StripeArena};
    use crate::topology::NodeId;

    /// Accumulates per-stripe host rows and finishes into a backend.
    pub(crate) struct ArenaBuilder {
        code_name: String,
        shape: CodeShape,
        arena: StripeArena,
        node_universe: usize,
    }

    impl ArenaBuilder {
        pub(crate) fn new(
            code_name: String,
            shape: CodeShape,
            stripes: usize,
            node_universe: usize,
        ) -> Self {
            let arena = StripeArena::with_capacity(shape.arity(), stripes);
            ArenaBuilder {
                code_name,
                shape,
                arena,
                node_universe,
            }
        }

        pub(crate) fn push_stripe(&mut self, nodes: &[NodeId]) {
            self.arena.push_stripe(nodes);
        }

        pub(crate) fn finish(self, kind: IndexKind) -> PlacementIndex {
            PlacementIndex::build(
                kind,
                self.code_name,
                self.shape,
                self.arena,
                self.node_universe,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_block_id_packs_and_orders() {
        let a = GlobalBlockId::new(1, 2);
        assert_eq!(a.stripe(), 1);
        assert_eq!(a.block(), 2);
        assert_eq!(a.packed(), (1u64 << 32) | 2);
        assert_eq!(GlobalBlockId::from_packed(a.packed()), a);
        // Packed Ord == (stripe, block) lexicographic order.
        let ids = [
            GlobalBlockId::new(0, 0),
            GlobalBlockId::new(0, 1),
            GlobalBlockId::new(0, u32::MAX as usize),
            GlobalBlockId::new(1, 0),
            GlobalBlockId::new(2, 3),
        ];
        for pair in ids.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!((pair[0].stripe(), pair[0].block()) < (pair[1].stripe(), pair[1].block()));
        }
        assert_eq!(
            format!("{:?}", GlobalBlockId::new(3, 4)),
            "GlobalBlockId { stripe: 3, block: 4 }"
        );
    }

    #[test]
    fn node_list_spills_past_inline_capacity() {
        let mut list = NodeList::new();
        assert!(list.is_empty());
        for i in 0..INLINE_NODES + 5 {
            list.push(NodeId(i));
        }
        assert_eq!(list.len(), INLINE_NODES + 5);
        for (i, &n) in list.iter().enumerate() {
            assert_eq!(n, NodeId(i));
        }
        let copy: NodeList = list.as_slice().into();
        assert_eq!(copy, list);
        // Round-trips through the value model.
        let restored = NodeList::deserialize(&list.serialize()).unwrap();
        assert_eq!(restored, list);
    }

    #[test]
    fn index_kind_override_scopes_and_restores() {
        let before = IndexKind::current();
        let inside = with_index_kind(IndexKind::Map, IndexKind::current);
        assert_eq!(inside, IndexKind::Map);
        let nested = with_index_kind(IndexKind::Map, || {
            with_index_kind(IndexKind::Compact, IndexKind::current)
        });
        assert_eq!(nested, IndexKind::Compact);
        assert_eq!(IndexKind::current(), before);
    }
}
