//! Block placement: mapping the stripes of an erasure code onto the nodes of
//! a concrete cluster.
//!
//! The key property the placement must preserve is exactly the one the paper
//! draws in Fig. 2: *all blocks assigned to the same stripe-local node land on
//! the same cluster node*. The choice of code therefore fully determines how
//! many distinct cluster nodes can serve each data block (two for all the
//! double-replication codes), and how many blocks of the same stripe pile up
//! on a single node (four for the pentagon, six for the heptagon, one for
//! RAID+m and replication) — which is what drives map-task locality.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use drc_codes::ErasureCode;

use crate::topology::{Cluster, NodeId};
use crate::ClusterError;

/// Identifier of a distinct coded block across a whole placement: the stripe
/// index plus the stripe-local distinct-block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalBlockId {
    /// Index of the stripe within the placement.
    pub stripe: usize,
    /// Distinct-block index within the stripe.
    pub block: usize,
}

/// The mapping of one stripe's code nodes onto cluster nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripePlacement {
    /// Stripe index.
    pub stripe: usize,
    /// `nodes[i]` is the cluster node hosting stripe-local node `i`.
    pub nodes: Vec<NodeId>,
}

/// How stripes are mapped onto cluster nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum PlacementPolicy {
    /// Each stripe picks uniformly-random distinct nodes (rack-aware when the
    /// cluster has enough racks for the code's rack groups). This is the
    /// HDFS-like default.
    #[default]
    Random,
    /// Stripe `s` uses nodes `s*L, s*L+1, ...` modulo the cluster size —
    /// deterministic and perfectly balanced; useful for tests and debugging.
    RoundRobin,
}

/// A full placement of `stripes` stripes of a code onto a cluster.
///
/// # Example
///
/// ```
/// use drc_cluster::{Cluster, ClusterSpec, PlacementMap, PlacementPolicy};
/// use drc_codes::CodeKind;
/// use rand::SeedableRng;
///
/// let code = CodeKind::Pentagon.build().unwrap();
/// let cluster = Cluster::new(ClusterSpec::simulation_25(4));
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let placement =
///     PlacementMap::place(code.as_ref(), &cluster, 5, PlacementPolicy::Random, &mut rng).unwrap();
/// assert_eq!(placement.stripe_count(), 5);
/// assert_eq!(placement.data_block_count(), 45); // 5 stripes x 9 data blocks
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementMap {
    code_name: String,
    data_blocks_per_stripe: usize,
    stripes: Vec<StripePlacement>,
    /// block -> cluster nodes holding a replica.
    locations: BTreeMap<GlobalBlockId, Vec<NodeId>>,
    /// cluster node -> blocks it stores.
    per_node: BTreeMap<NodeId, Vec<GlobalBlockId>>,
}

impl PlacementMap {
    /// Places `stripes` stripes of `code` onto the *up* nodes of `cluster`.
    ///
    /// With [`PlacementPolicy::Random`], each stripe's code nodes are mapped
    /// to distinct cluster nodes chosen uniformly at random; if the cluster
    /// has at least as many racks as the code has rack groups, each rack
    /// group is confined to its own rack (the rack-aware layout described for
    /// the heptagon-local code in §2.2).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InsufficientNodes`] if the code length exceeds
    /// the number of up nodes, or [`ClusterError::InvalidPlacement`] if
    /// `stripes` is zero.
    pub fn place<R: Rng + ?Sized>(
        code: &dyn ErasureCode,
        cluster: &Cluster,
        stripes: usize,
        policy: PlacementPolicy,
        rng: &mut R,
    ) -> Result<Self, ClusterError> {
        if stripes == 0 {
            return Err(ClusterError::InvalidPlacement {
                reason: "at least one stripe is required".to_string(),
            });
        }
        let up = cluster.up_nodes();
        if code.node_count() > up.len() {
            return Err(ClusterError::InsufficientNodes {
                needed: code.node_count(),
                available: up.len(),
            });
        }
        let mut placements = Vec::with_capacity(stripes);
        for stripe in 0..stripes {
            let nodes = match policy {
                PlacementPolicy::Random => Self::random_stripe_nodes(code, cluster, &up, rng),
                PlacementPolicy::RoundRobin => (0..code.node_count())
                    .map(|i| up[(stripe * code.node_count() + i) % up.len()])
                    .collect(),
            };
            placements.push(StripePlacement { stripe, nodes });
        }
        Ok(Self::from_stripes(code, placements))
    }

    /// Builds the lookup maps from explicit per-stripe node assignments.
    fn from_stripes(code: &dyn ErasureCode, stripes: Vec<StripePlacement>) -> Self {
        let mut locations: BTreeMap<GlobalBlockId, Vec<NodeId>> = BTreeMap::new();
        let mut per_node: BTreeMap<NodeId, Vec<GlobalBlockId>> = BTreeMap::new();
        for sp in &stripes {
            for block in 0..code.distinct_blocks() {
                let id = GlobalBlockId {
                    stripe: sp.stripe,
                    block,
                };
                let nodes: Vec<NodeId> = code
                    .block_locations(block)
                    .iter()
                    .map(|&local| sp.nodes[local])
                    .collect();
                for &n in &nodes {
                    per_node.entry(n).or_default().push(id);
                }
                locations.insert(id, nodes);
            }
        }
        PlacementMap {
            code_name: code.name().to_string(),
            data_blocks_per_stripe: code.data_blocks(),
            stripes,
            locations,
            per_node,
        }
    }

    fn random_stripe_nodes<R: Rng + ?Sized>(
        code: &dyn ErasureCode,
        cluster: &Cluster,
        up: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        let groups = code.rack_groups();
        // Rack-aware placement: give each rack group its own rack when there
        // are enough racks with enough up nodes.
        if groups.len() > 1 && cluster.rack_count() >= groups.len() {
            let mut racks: Vec<usize> = (0..cluster.rack_count()).collect();
            racks.shuffle(rng);
            let mut candidate_racks: Vec<usize> = Vec::new();
            for group in groups {
                // Pick the first not-yet-used rack with enough up nodes.
                let rack = racks.iter().copied().find(|&r| {
                    !candidate_racks.contains(&r)
                        && cluster
                            .nodes_in_rack(crate::topology::RackId(r))
                            .iter()
                            .filter(|n| cluster.is_up(**n))
                            .count()
                            >= group.len()
                });
                match rack {
                    Some(r) => candidate_racks.push(r),
                    None => return Self::flat_random(code, up, rng),
                }
            }
            let mut nodes = vec![NodeId(usize::MAX); code.node_count()];
            for (group, &rack) in groups.iter().zip(&candidate_racks) {
                let mut pool: Vec<NodeId> = cluster
                    .nodes_in_rack(crate::topology::RackId(rack))
                    .into_iter()
                    .filter(|n| cluster.is_up(*n))
                    .collect();
                pool.shuffle(rng);
                for (&local, &node) in group.iter().zip(pool.iter()) {
                    nodes[local] = node;
                }
            }
            if nodes.iter().all(|n| n.0 != usize::MAX) {
                return nodes;
            }
            return Self::flat_random(code, up, rng);
        }
        Self::flat_random(code, up, rng)
    }

    fn flat_random<R: Rng + ?Sized>(
        code: &dyn ErasureCode,
        up: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        let mut pool: Vec<NodeId> = up.to_vec();
        pool.shuffle(rng);
        pool.truncate(code.node_count());
        pool
    }

    /// Name of the code this placement was built for.
    pub fn code_name(&self) -> &str {
        &self.code_name
    }

    /// Number of stripes placed.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Number of data blocks per stripe of the underlying code.
    pub fn data_blocks_per_stripe(&self) -> usize {
        self.data_blocks_per_stripe
    }

    /// Total number of *data* blocks across all stripes.
    pub fn data_block_count(&self) -> usize {
        self.stripe_count() * self.data_blocks_per_stripe
    }

    /// The per-stripe node assignments.
    pub fn stripes(&self) -> &[StripePlacement] {
        &self.stripes
    }

    /// The cluster nodes holding a replica of the given block.
    ///
    /// Returns an empty slice for unknown blocks.
    pub fn block_locations(&self, block: GlobalBlockId) -> &[NodeId] {
        self.locations.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All blocks (data and parity) stored on the given cluster node.
    pub fn blocks_on_node(&self, node: NodeId) -> &[GlobalBlockId] {
        self.per_node.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over every data block together with its replica locations.
    pub fn iter_data_blocks(&self) -> impl Iterator<Item = (GlobalBlockId, &[NodeId])> {
        self.locations
            .iter()
            .filter(|(id, _)| id.block < self.data_blocks_per_stripe)
            .map(|(id, nodes)| (*id, nodes.as_slice()))
    }

    /// The set of data blocks, in deterministic order.
    pub fn data_blocks(&self) -> Vec<GlobalBlockId> {
        self.iter_data_blocks().map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;
    use drc_codes::CodeKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_zero_stripes_and_small_clusters() {
        let code = CodeKind::Pentagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(2));
        assert!(matches!(
            PlacementMap::place(
                code.as_ref(),
                &cluster,
                0,
                PlacementPolicy::Random,
                &mut rng(1)
            ),
            Err(ClusterError::InvalidPlacement { .. })
        ));
        // The paper's point about code length: a (10,9) RAID+m stripe spans 20
        // nodes and therefore does not fit a 9-node cluster.
        let raid_m = CodeKind::RAID_M_10_9.build().unwrap();
        let small = Cluster::new(ClusterSpec::setup2());
        assert!(matches!(
            PlacementMap::place(
                raid_m.as_ref(),
                &small,
                1,
                PlacementPolicy::Random,
                &mut rng(1)
            ),
            Err(ClusterError::InsufficientNodes {
                needed: 20,
                available: 9
            })
        ));
    }

    #[test]
    fn stripe_nodes_are_distinct_and_up() {
        let code = CodeKind::Heptagon.build().unwrap();
        let mut cluster = Cluster::new(ClusterSpec::simulation_25(2));
        cluster.set_down(NodeId(0));
        cluster.set_down(NodeId(13));
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            40,
            PlacementPolicy::Random,
            &mut rng(3),
        )
        .unwrap();
        for sp in placement.stripes() {
            let mut seen = std::collections::BTreeSet::new();
            for &n in &sp.nodes {
                assert!(cluster.is_up(n), "placed on a down node");
                assert!(seen.insert(n), "node reused within a stripe");
            }
            assert_eq!(sp.nodes.len(), 7);
        }
    }

    #[test]
    fn every_data_block_has_two_locations_for_double_replication_codes() {
        for kind in [CodeKind::Pentagon, CodeKind::Heptagon, CodeKind::TWO_REP] {
            let code = kind.build().unwrap();
            let cluster = Cluster::new(ClusterSpec::simulation_25(4));
            let placement = PlacementMap::place(
                code.as_ref(),
                &cluster,
                10,
                PlacementPolicy::Random,
                &mut rng(11),
            )
            .unwrap();
            for (id, nodes) in placement.iter_data_blocks() {
                assert_eq!(nodes.len(), 2, "{kind} block {id:?}");
                assert_ne!(nodes[0], nodes[1]);
            }
        }
    }

    #[test]
    fn blocks_of_same_stripe_node_colocate() {
        // Fig. 2's property: all blocks of one pentagon node map to one data node.
        let code = CodeKind::Pentagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            5,
            PlacementPolicy::RoundRobin,
            &mut rng(5),
        )
        .unwrap();
        for sp in placement.stripes() {
            for local in 0..code.node_count() {
                let host = sp.nodes[local];
                for &block in code.node_blocks(local) {
                    let id = GlobalBlockId {
                        stripe: sp.stripe,
                        block,
                    };
                    assert!(placement.block_locations(id).contains(&host));
                }
            }
        }
        // Each cluster node used by a stripe stores exactly 4 of its blocks.
        let sp = &placement.stripes()[0];
        for &node in &sp.nodes {
            let count = placement
                .blocks_on_node(node)
                .iter()
                .filter(|b| b.stripe == 0)
                .count();
            assert_eq!(count, 4);
        }
    }

    #[test]
    fn rack_aware_placement_separates_heptagon_local_groups() {
        let code = CodeKind::HeptagonLocal.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4)); // 3 racks
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            20,
            PlacementPolicy::Random,
            &mut rng(17),
        )
        .unwrap();
        for sp in placement.stripes() {
            let rack_of = |local: usize| cluster.rack_of(sp.nodes[local]).unwrap();
            // All of heptagon 0 in one rack, all of heptagon 1 in another,
            // the global node in a third.
            let r0 = rack_of(0);
            assert!((1..7).all(|l| rack_of(l) == r0));
            let r1 = rack_of(7);
            assert!((8..14).all(|l| rack_of(l) == r1));
            let rg = rack_of(14);
            assert_ne!(r0, r1);
            assert_ne!(r0, rg);
            assert_ne!(r1, rg);
        }
    }

    #[test]
    fn counts_and_lookup_accessors() {
        let code = CodeKind::TWO_REP.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::setup2());
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            12,
            PlacementPolicy::Random,
            &mut rng(23),
        )
        .unwrap();
        assert_eq!(placement.code_name(), "2-rep");
        assert_eq!(placement.stripe_count(), 12);
        assert_eq!(placement.data_blocks_per_stripe(), 1);
        assert_eq!(placement.data_block_count(), 12);
        assert_eq!(placement.data_blocks().len(), 12);
        // Unknown blocks have no locations.
        assert!(placement
            .block_locations(GlobalBlockId {
                stripe: 99,
                block: 0
            })
            .is_empty());
        assert!(placement.blocks_on_node(NodeId(999)).is_empty());
        // Total stored blocks across nodes = stripes * stored blocks per stripe.
        let stored: usize = cluster
            .nodes()
            .map(|n| placement.blocks_on_node(n).len())
            .sum();
        assert_eq!(stored, 12 * 2);
    }

    #[test]
    fn placement_is_deterministic_given_seed() {
        let code = CodeKind::Pentagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(2));
        let a = PlacementMap::place(
            code.as_ref(),
            &cluster,
            8,
            PlacementPolicy::Random,
            &mut rng(42),
        )
        .unwrap();
        let b = PlacementMap::place(
            code.as_ref(),
            &cluster,
            8,
            PlacementPolicy::Random,
            &mut rng(42),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
