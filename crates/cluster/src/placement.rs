//! Block placement: mapping the stripes of an erasure code onto the nodes of
//! a concrete cluster.
//!
//! The key property the placement must preserve is exactly the one the paper
//! draws in Fig. 2: *all blocks assigned to the same stripe-local node land on
//! the same cluster node*. The choice of code therefore fully determines how
//! many distinct cluster nodes can serve each data block (two for all the
//! double-replication codes), and how many blocks of the same stripe pile up
//! on a single node (four for the pentagon, six for the heptagon, one for
//! RAID+m and replication) — which is what drives map-task locality.
//!
//! Storage-wise a [`PlacementMap`] is a thin facade over a pluggable
//! [`BlockIndex`] backend (see [`crate::index`]); the default
//! [`IndexKind::Compact`] backend stores the whole placement as one flat
//! arena of `u32` node ids, a few bytes per block, which is what lets the
//! `metadata_scale` experiment run 10M-block placements.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use drc_codes::ErasureCode;

use crate::index::{ArenaBuilder, BlockIndex, CodeShape, IndexKind, NodeList, PlacementIndex};
use crate::topology::{Cluster, NodeId};
use crate::ClusterError;

pub use crate::index::GlobalBlockId;

/// How stripes are mapped onto cluster nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum PlacementPolicy {
    /// Each stripe picks uniformly-random distinct nodes (rack-aware when the
    /// cluster has enough racks for the code's rack groups). This is the
    /// HDFS-like default.
    #[default]
    Random,
    /// Stripe `s` uses nodes `s*L, s*L+1, ...` modulo the cluster size —
    /// deterministic and perfectly balanced; useful for tests, debugging and
    /// datacenter-scale placements (no per-stripe shuffle of the node pool).
    RoundRobin,
}

/// A full placement of `stripes` stripes of a code onto a cluster.
///
/// # Example
///
/// ```
/// use drc_cluster::{Cluster, ClusterSpec, PlacementMap, PlacementPolicy};
/// use drc_codes::CodeKind;
/// use rand::SeedableRng;
///
/// let code = CodeKind::Pentagon.build().unwrap();
/// let cluster = Cluster::new(ClusterSpec::simulation_25(4));
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let placement =
///     PlacementMap::place(code.as_ref(), &cluster, 5, PlacementPolicy::Random, &mut rng).unwrap();
/// assert_eq!(placement.stripe_count(), 5);
/// assert_eq!(placement.data_block_count(), 45); // 5 stripes x 9 data blocks
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementMap {
    index: PlacementIndex,
}

impl PlacementMap {
    /// Places `stripes` stripes of `code` onto the *up* nodes of `cluster`,
    /// indexed by the backend [`IndexKind::current`] selects.
    ///
    /// With [`PlacementPolicy::Random`], each stripe's code nodes are mapped
    /// to distinct cluster nodes chosen uniformly at random; if the cluster
    /// has at least as many racks as the code has rack groups, each rack
    /// group is confined to its own rack (the rack-aware layout described for
    /// the heptagon-local code in §2.2).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InsufficientNodes`] if the code length exceeds
    /// the number of up nodes, or [`ClusterError::InvalidPlacement`] if
    /// `stripes` is zero.
    pub fn place<R: Rng + ?Sized>(
        code: &dyn ErasureCode,
        cluster: &Cluster,
        stripes: usize,
        policy: PlacementPolicy,
        rng: &mut R,
    ) -> Result<Self, ClusterError> {
        Self::place_with_index(code, cluster, stripes, policy, IndexKind::current(), rng)
    }

    /// [`PlacementMap::place`] with an explicit index backend.
    ///
    /// The backend never affects placement decisions: the RNG is consumed
    /// identically and every query answers identically, so experiments are
    /// byte-for-byte reproducible under either backend.
    ///
    /// # Errors
    ///
    /// As for [`PlacementMap::place`].
    pub fn place_with_index<R: Rng + ?Sized>(
        code: &dyn ErasureCode,
        cluster: &Cluster,
        stripes: usize,
        policy: PlacementPolicy,
        kind: IndexKind,
        rng: &mut R,
    ) -> Result<Self, ClusterError> {
        if stripes == 0 {
            return Err(ClusterError::InvalidPlacement {
                reason: "at least one stripe is required".to_string(),
            });
        }
        let up = cluster.up_nodes();
        if code.node_count() > up.len() {
            return Err(ClusterError::InsufficientNodes {
                needed: code.node_count(),
                available: up.len(),
            });
        }
        let shape = CodeShape::of(code);
        let mut builder = ArenaBuilder::new(code.name().to_string(), shape, stripes, cluster.len());
        // One scratch row reused across stripes: placing 10M stripes must not
        // make 10M transient allocations.
        let mut scratch: Vec<NodeId> = Vec::with_capacity(code.node_count());
        for stripe in 0..stripes {
            match policy {
                PlacementPolicy::Random => {
                    scratch = Self::random_stripe_nodes(code, cluster, &up, rng);
                }
                PlacementPolicy::RoundRobin => {
                    scratch.clear();
                    scratch.extend(
                        (0..code.node_count())
                            .map(|i| up[(stripe * code.node_count() + i) % up.len()]),
                    );
                }
            }
            builder.push_stripe(&scratch);
        }
        Ok(PlacementMap {
            index: builder.finish(kind),
        })
    }

    fn random_stripe_nodes<R: Rng + ?Sized>(
        code: &dyn ErasureCode,
        cluster: &Cluster,
        up: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        let groups = code.rack_groups();
        // Rack-aware placement: give each rack group its own rack when there
        // are enough racks with enough up nodes.
        if groups.len() > 1 && cluster.rack_count() >= groups.len() {
            let mut racks: Vec<usize> = (0..cluster.rack_count()).collect();
            racks.shuffle(rng);
            let mut candidate_racks: Vec<usize> = Vec::new();
            for group in groups {
                // Pick the first not-yet-used rack with enough up nodes.
                let rack = racks.iter().copied().find(|&r| {
                    !candidate_racks.contains(&r)
                        && cluster
                            .nodes_in_rack(crate::topology::RackId(r))
                            .iter()
                            .filter(|n| cluster.is_up(**n))
                            .count()
                            >= group.len()
                });
                match rack {
                    Some(r) => candidate_racks.push(r),
                    None => return Self::flat_random(code, up, rng),
                }
            }
            let mut nodes = vec![NodeId(usize::MAX); code.node_count()];
            for (group, &rack) in groups.iter().zip(&candidate_racks) {
                let mut pool: Vec<NodeId> = cluster
                    .nodes_in_rack(crate::topology::RackId(rack))
                    .into_iter()
                    .filter(|n| cluster.is_up(*n))
                    .collect();
                pool.shuffle(rng);
                for (&local, &node) in group.iter().zip(pool.iter()) {
                    nodes[local] = node;
                }
            }
            if nodes.iter().all(|n| n.0 != usize::MAX) {
                return nodes;
            }
            return Self::flat_random(code, up, rng);
        }
        Self::flat_random(code, up, rng)
    }

    fn flat_random<R: Rng + ?Sized>(
        code: &dyn ErasureCode,
        up: &[NodeId],
        rng: &mut R,
    ) -> Vec<NodeId> {
        let mut pool: Vec<NodeId> = up.to_vec();
        pool.shuffle(rng);
        pool.truncate(code.node_count());
        pool
    }

    /// Which index backend this placement uses.
    pub fn index_kind(&self) -> IndexKind {
        self.index.kind()
    }

    /// The index backend as a trait object.
    pub fn index(&self) -> &dyn BlockIndex {
        self.index.as_dyn()
    }

    /// Name of the code this placement was built for.
    pub fn code_name(&self) -> &str {
        self.index.as_dyn().code_name()
    }

    /// Number of stripes placed.
    pub fn stripe_count(&self) -> usize {
        self.index.as_dyn().stripe_count()
    }

    /// Number of data blocks per stripe of the underlying code.
    pub fn data_blocks_per_stripe(&self) -> usize {
        self.index.as_dyn().shape().data_blocks()
    }

    /// Number of distinct blocks (data and parity) per stripe.
    pub fn distinct_blocks_per_stripe(&self) -> usize {
        self.index.as_dyn().shape().distinct_blocks()
    }

    /// The code's arity: cluster nodes spanned by one stripe.
    pub fn arity(&self) -> usize {
        self.index.as_dyn().shape().arity()
    }

    /// Total number of *data* blocks across all stripes.
    pub fn data_block_count(&self) -> usize {
        self.stripe_count() * self.data_blocks_per_stripe()
    }

    /// Number of cluster nodes the placement was built against; node ids
    /// `0..node_universe()` are valid query arguments.
    pub fn node_universe(&self) -> usize {
        self.index.as_dyn().node_universe()
    }

    /// The cluster nodes holding a replica of `block`, in the code's replica
    /// order.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownBlock`] for a stripe or block index out of
    /// range — unknown ids are an error, not an empty answer.
    pub fn locations(&self, block: GlobalBlockId) -> Result<NodeList, ClusterError> {
        self.index.as_dyn().locations(block)
    }

    /// The cluster nodes hosting stripe `stripe`'s local nodes, in local
    /// order.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownBlock`] if the stripe index is out of range.
    pub fn stripe_hosts(&self, stripe: usize) -> Result<NodeList, ClusterError> {
        self.index.as_dyn().stripe_hosts(stripe)
    }

    /// All blocks (data and parity) stored on `node`, in ascending
    /// `(stripe, block)` order.
    ///
    /// Allocates the answer; repair-style scans should prefer
    /// [`PlacementMap::for_each_block_on_node`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] if `node` is outside the placement's
    /// node universe. A valid node storing nothing yields an empty vector.
    pub fn blocks_on_node(&self, node: NodeId) -> Result<Vec<GlobalBlockId>, ClusterError> {
        let mut blocks = Vec::new();
        self.index
            .as_dyn()
            .for_each_block_on_node(node, &mut |id| blocks.push(id))?;
        Ok(blocks)
    }

    /// Calls `f` with every block (data and parity) stored on `node`, in
    /// ascending `(stripe, block)` order, without allocating.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] if `node` is outside the placement's
    /// node universe.
    pub fn for_each_block_on_node(
        &self,
        node: NodeId,
        mut f: impl FnMut(GlobalBlockId),
    ) -> Result<(), ClusterError> {
        self.index.as_dyn().for_each_block_on_node(node, &mut f)
    }

    /// Calls `f` with every `(stripe, local)` pair hosted by `node`, in
    /// ascending stripe order — the granularity repair works at.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] if `node` is outside the placement's
    /// node universe.
    pub fn for_each_stripe_on_node(
        &self,
        node: NodeId,
        mut f: impl FnMut(usize, usize),
    ) -> Result<(), ClusterError> {
        self.index.as_dyn().for_each_stripe_on_node(node, &mut f)
    }

    /// Number of blocks stored on `node`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] if `node` is outside the placement's
    /// node universe.
    pub fn node_block_count(&self, node: NodeId) -> Result<usize, ClusterError> {
        self.index.as_dyn().node_block_count(node)
    }

    /// Re-homes stripe `stripe`'s local node `local` onto cluster node `to`,
    /// updating both lookup directions. Returns the previous host.
    ///
    /// # Errors
    ///
    /// See [`BlockIndex::remap_stripe_host`].
    pub fn remap_stripe_host(
        &mut self,
        stripe: usize,
        local: usize,
        to: NodeId,
    ) -> Result<NodeId, ClusterError> {
        self.index.as_dyn_mut().remap_stripe_host(stripe, local, to)
    }

    /// Iterates over every data block together with its replica locations,
    /// in ascending `(stripe, block)` order.
    pub fn iter_data_blocks(&self) -> impl Iterator<Item = (GlobalBlockId, NodeList)> + '_ {
        let data = self.data_blocks_per_stripe();
        (0..self.stripe_count()).flat_map(move |stripe| {
            (0..data).map(move |block| {
                let id = GlobalBlockId::new(stripe, block);
                let nodes = self
                    .locations(id)
                    // drc-lint: allow(panic-hygiene): iterator adaptor cannot return Err;
                    // placed stripes enumerate in-range ids, the only locations() failure.
                    .expect("data blocks of placed stripes are valid ids");
                (id, nodes)
            })
        })
    }

    /// The set of data blocks, in deterministic `(stripe, block)` order.
    pub fn data_blocks(&self) -> Vec<GlobalBlockId> {
        let data = self.data_blocks_per_stripe();
        (0..self.stripe_count())
            .flat_map(|stripe| (0..data).map(move |block| GlobalBlockId::new(stripe, block)))
            .collect()
    }

    /// Estimated heap bytes resident in the index backend.
    pub fn heap_bytes(&self) -> usize {
        self.index.as_dyn().heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;
    use drc_codes::CodeKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_zero_stripes_and_small_clusters() {
        let code = CodeKind::Pentagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(2));
        assert!(matches!(
            PlacementMap::place(
                code.as_ref(),
                &cluster,
                0,
                PlacementPolicy::Random,
                &mut rng(1)
            ),
            Err(ClusterError::InvalidPlacement { .. })
        ));
        // The paper's point about code length: a (10,9) RAID+m stripe spans 20
        // nodes and therefore does not fit a 9-node cluster.
        let raid_m = CodeKind::RAID_M_10_9.build().unwrap();
        let small = Cluster::new(ClusterSpec::setup2());
        assert!(matches!(
            PlacementMap::place(
                raid_m.as_ref(),
                &small,
                1,
                PlacementPolicy::Random,
                &mut rng(1)
            ),
            Err(ClusterError::InsufficientNodes {
                needed: 20,
                available: 9
            })
        ));
    }

    #[test]
    fn stripe_nodes_are_distinct_and_up() {
        let code = CodeKind::Heptagon.build().unwrap();
        let mut cluster = Cluster::new(ClusterSpec::simulation_25(2));
        cluster.set_down(NodeId(0));
        cluster.set_down(NodeId(13));
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            40,
            PlacementPolicy::Random,
            &mut rng(3),
        )
        .unwrap();
        for stripe in 0..placement.stripe_count() {
            let hosts = placement.stripe_hosts(stripe).unwrap();
            let mut seen = std::collections::BTreeSet::new();
            for &n in &hosts {
                assert!(cluster.is_up(n), "placed on a down node");
                assert!(seen.insert(n), "node reused within a stripe");
            }
            assert_eq!(hosts.len(), 7);
        }
    }

    #[test]
    fn every_data_block_has_two_locations_for_double_replication_codes() {
        for kind in [CodeKind::Pentagon, CodeKind::Heptagon, CodeKind::TWO_REP] {
            let code = kind.build().unwrap();
            let cluster = Cluster::new(ClusterSpec::simulation_25(4));
            let placement = PlacementMap::place(
                code.as_ref(),
                &cluster,
                10,
                PlacementPolicy::Random,
                &mut rng(11),
            )
            .unwrap();
            for (id, nodes) in placement.iter_data_blocks() {
                assert_eq!(nodes.len(), 2, "{kind} block {id:?}");
                assert_ne!(nodes[0], nodes[1]);
            }
        }
    }

    #[test]
    fn blocks_of_same_stripe_node_colocate() {
        // Fig. 2's property: all blocks of one pentagon node map to one data node.
        let code = CodeKind::Pentagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            5,
            PlacementPolicy::RoundRobin,
            &mut rng(5),
        )
        .unwrap();
        for stripe in 0..placement.stripe_count() {
            let hosts = placement.stripe_hosts(stripe).unwrap();
            for local in 0..code.node_count() {
                let host = hosts[local];
                for &block in code.node_blocks(local) {
                    let id = GlobalBlockId::new(stripe, block);
                    assert!(placement.locations(id).unwrap().contains(&host));
                }
            }
        }
        // Each cluster node used by a stripe stores exactly 4 of its blocks.
        let hosts = placement.stripe_hosts(0).unwrap();
        for &node in &hosts {
            let count = placement
                .blocks_on_node(node)
                .unwrap()
                .iter()
                .filter(|b| b.stripe() == 0)
                .count();
            assert_eq!(count, 4);
        }
    }

    #[test]
    fn rack_aware_placement_separates_heptagon_local_groups() {
        let code = CodeKind::HeptagonLocal.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4)); // 3 racks
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            20,
            PlacementPolicy::Random,
            &mut rng(17),
        )
        .unwrap();
        for stripe in 0..placement.stripe_count() {
            let hosts = placement.stripe_hosts(stripe).unwrap();
            let rack_of = |local: usize| cluster.rack_of(hosts[local]).unwrap();
            // All of heptagon 0 in one rack, all of heptagon 1 in another,
            // the global node in a third.
            let r0 = rack_of(0);
            assert!((1..7).all(|l| rack_of(l) == r0));
            let r1 = rack_of(7);
            assert!((8..14).all(|l| rack_of(l) == r1));
            let rg = rack_of(14);
            assert_ne!(r0, r1);
            assert_ne!(r0, rg);
            assert_ne!(r1, rg);
        }
    }

    #[test]
    fn counts_and_lookup_accessors() {
        let code = CodeKind::TWO_REP.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::setup2());
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            12,
            PlacementPolicy::Random,
            &mut rng(23),
        )
        .unwrap();
        assert_eq!(placement.code_name(), "2-rep");
        assert_eq!(placement.stripe_count(), 12);
        assert_eq!(placement.data_blocks_per_stripe(), 1);
        assert_eq!(placement.data_block_count(), 12);
        assert_eq!(placement.data_blocks().len(), 12);
        assert_eq!(placement.node_universe(), 9);
        // Unknown ids are errors, not silently empty answers.
        assert_eq!(
            placement.locations(GlobalBlockId::new(99, 0)),
            Err(ClusterError::UnknownBlock {
                stripe: 99,
                block: 0
            })
        );
        assert_eq!(
            placement.locations(GlobalBlockId::new(0, 7)),
            Err(ClusterError::UnknownBlock {
                stripe: 0,
                block: 7
            })
        );
        assert_eq!(
            placement.blocks_on_node(NodeId(999)),
            Err(ClusterError::UnknownNode { node: 999 })
        );
        assert!(placement.stripe_hosts(12).is_err());
        // Total stored blocks across nodes = stripes * stored blocks per stripe.
        let stored: usize = cluster
            .nodes()
            .map(|n| placement.node_block_count(n).unwrap())
            .sum();
        assert_eq!(stored, 12 * 2);
    }

    #[test]
    fn remap_updates_both_directions() {
        for kind in [IndexKind::Map, IndexKind::Compact] {
            let code = CodeKind::Pentagon.build().unwrap();
            let cluster = Cluster::new(ClusterSpec::simulation_25(4));
            let mut placement = PlacementMap::place_with_index(
                code.as_ref(),
                &cluster,
                3,
                PlacementPolicy::RoundRobin,
                kind,
                &mut rng(7),
            )
            .unwrap();
            let hosts = placement.stripe_hosts(1).unwrap();
            let old = hosts[2];
            let target = cluster
                .nodes()
                .find(|n| !hosts.contains(n))
                .expect("a node outside the stripe exists");
            // Remapping onto a node already in the stripe is rejected.
            assert!(matches!(
                placement.remap_stripe_host(1, 2, hosts[0]),
                Err(ClusterError::InvalidPlacement { .. })
            ));
            assert_eq!(placement.remap_stripe_host(1, 2, target), Ok(old));
            // Idempotent: remapping onto the current host is a no-op.
            assert_eq!(placement.remap_stripe_host(1, 2, target), Ok(target));
            assert_eq!(placement.stripe_hosts(1).unwrap()[2], target);
            // Every block of local 2 moved; the old host no longer lists them.
            for &block in code.node_blocks(2) {
                let id = GlobalBlockId::new(1, block);
                let locs = placement.locations(id).unwrap();
                assert!(locs.contains(&target), "{kind:?}: {id:?} not on target");
                assert!(!locs.contains(&old), "{kind:?}: {id:?} still on old host");
            }
            let on_old = placement.blocks_on_node(old).unwrap();
            assert!(on_old
                .iter()
                .all(|b| b.stripe() != 1 || !code.node_blocks(2).contains(&b.block())));
            // The reverse scan stays sorted.
            let on_target = placement.blocks_on_node(target).unwrap();
            assert!(on_target.windows(2).all(|w| w[0] < w[1]));
            // Out-of-range arguments fail loudly.
            assert!(placement.remap_stripe_host(99, 0, target).is_err());
            assert!(placement.remap_stripe_host(0, 99, target).is_err());
            assert!(placement.remap_stripe_host(0, 0, NodeId(999)).is_err());
        }
    }

    #[test]
    fn placement_is_deterministic_given_seed() {
        let code = CodeKind::Pentagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(2));
        let a = PlacementMap::place(
            code.as_ref(),
            &cluster,
            8,
            PlacementPolicy::Random,
            &mut rng(42),
        )
        .unwrap();
        let b = PlacementMap::place(
            code.as_ref(),
            &cluster,
            8,
            PlacementPolicy::Random,
            &mut rng(42),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn backends_consume_the_rng_identically() {
        let code = CodeKind::Heptagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(2));
        let map = PlacementMap::place_with_index(
            code.as_ref(),
            &cluster,
            6,
            PlacementPolicy::Random,
            IndexKind::Map,
            &mut rng(42),
        )
        .unwrap();
        let compact = PlacementMap::place_with_index(
            code.as_ref(),
            &cluster,
            6,
            PlacementPolicy::Random,
            IndexKind::Compact,
            &mut rng(42),
        )
        .unwrap();
        assert_eq!(map.index_kind(), IndexKind::Map);
        assert_eq!(compact.index_kind(), IndexKind::Compact);
        for stripe in 0..6 {
            assert_eq!(
                map.stripe_hosts(stripe).unwrap(),
                compact.stripe_hosts(stripe).unwrap()
            );
        }
    }
}
