//! Cluster topology, block placement and failure injection.
//!
//! This crate models the physical substrate the paper's experiments run on:
//! a set of Hadoop data nodes with map/reduce slots, grouped into racks, with
//! known disk and network bandwidth. It provides:
//!
//! * [`ClusterSpec`] — hardware descriptions, including the paper's two
//!   experimental set-ups (§4) and the 25-node simulation cluster (§3),
//! * [`Cluster`] — runtime node state (rack membership, liveness),
//! * [`PlacementMap`] — mapping of erasure-code stripes onto cluster nodes,
//!   preserving the array-code property that all blocks of one stripe-local
//!   node land on the same cluster node (Fig. 2), backed by a pluggable
//!   [`BlockIndex`] (the default [`CompactIndex`] stores a placement as one
//!   flat arena of `u32` node ids — a few bytes per block, which is what
//!   allows 1000-node / 10M-block experiments),
//! * [`FailureScenario`] — static failure injection for degraded-mode
//!   experiments (every failure in force for the whole run),
//! * [`FailureTrace`] — timed failure injection: a sorted sequence of
//!   [`FailureEvent`]s (node down/up, rack bursts, slowdowns) the
//!   event-driven layers replay in virtual time.
//!
//! # Example
//!
//! ```
//! use drc_cluster::{Cluster, ClusterSpec, PlacementMap, PlacementPolicy};
//! use drc_codes::CodeKind;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), drc_cluster::ClusterError> {
//! let cluster = Cluster::new(ClusterSpec::setup1());
//! let pentagon = CodeKind::Pentagon.build().unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let placement = PlacementMap::place(
//!     pentagon.as_ref(),
//!     &cluster,
//!     10,
//!     PlacementPolicy::Random,
//!     &mut rng,
//! )?;
//! // Every pentagon data block ends up with exactly two replicas.
//! assert!(placement.iter_data_blocks().all(|(_, nodes)| nodes.len() == 2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod failure;
pub mod index;
mod placement;
mod spec;
mod topology;

pub use error::ClusterError;
pub use failure::{FailureEvent, FailureEventKind, FailureScenario, FailureTrace};
pub use index::{
    with_index_kind, BlockIndex, CodeShape, CompactIndex, GlobalBlockId, IndexKind, MapIndex,
    NodeList, PlacementIndex,
};
pub use placement::{PlacementMap, PlacementPolicy};
pub use spec::ClusterSpec;
pub use topology::{Cluster, NodeId, RackId};
