//! Runtime cluster state: node identities, rack membership and liveness.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::spec::ClusterSpec;
use crate::ClusterError;

/// Identifier of a data node within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a rack within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RackId(pub usize);

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// A cluster instance: a [`ClusterSpec`] plus per-node runtime state
/// (rack assignment and liveness).
///
/// # Example
///
/// ```
/// use drc_cluster::{Cluster, ClusterSpec, NodeId};
///
/// let mut cluster = Cluster::new(ClusterSpec::setup1());
/// assert_eq!(cluster.len(), 25);
/// cluster.set_down(NodeId(3));
/// assert!(!cluster.is_up(NodeId(3)));
/// assert_eq!(cluster.up_nodes().len(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    spec: ClusterSpec,
    racks: Vec<RackId>,
    down: BTreeSet<NodeId>,
}

impl Cluster {
    /// Creates a cluster with nodes assigned to racks round-robin.
    pub fn new(spec: ClusterSpec) -> Self {
        let racks = (0..spec.data_nodes)
            .map(|n| RackId(n % spec.racks.max(1)))
            .collect();
        Cluster {
            spec,
            racks,
            down: BTreeSet::new(),
        }
    }

    /// The cluster's hardware specification.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of data nodes.
    pub fn len(&self) -> usize {
        self.spec.data_nodes
    }

    /// Returns `true` if the cluster has no data nodes.
    pub fn is_empty(&self) -> bool {
        self.spec.data_nodes == 0
    }

    /// Iterates over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.spec.data_nodes).map(NodeId)
    }

    /// The rack a node belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] if the node does not exist.
    pub fn rack_of(&self, node: NodeId) -> Result<RackId, ClusterError> {
        self.racks
            .get(node.0)
            .copied()
            .ok_or(ClusterError::UnknownNode { node: node.0 })
    }

    /// All nodes in the given rack.
    pub fn nodes_in_rack(&self, rack: RackId) -> Vec<NodeId> {
        self.racks
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == rack)
            .map(|(n, _)| NodeId(n))
            .collect()
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.spec.racks.max(1)
    }

    /// Returns `true` if the node exists and is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        node.0 < self.spec.data_nodes && !self.down.contains(&node)
    }

    /// Marks a node as down (transient or permanent failure).
    pub fn set_down(&mut self, node: NodeId) {
        if node.0 < self.spec.data_nodes {
            self.down.insert(node);
        }
    }

    /// Marks a node as up again.
    pub fn set_up(&mut self, node: NodeId) {
        self.down.remove(&node);
    }

    /// The set of currently-down nodes.
    pub fn down_nodes(&self) -> &BTreeSet<NodeId> {
        &self.down
    }

    /// The currently-up nodes, in id order.
    pub fn up_nodes(&self) -> Vec<NodeId> {
        self.nodes().filter(|n| self.is_up(*n)).collect()
    }

    /// Total map slots currently available (up nodes only).
    pub fn available_map_slots(&self) -> usize {
        self.up_nodes().len() * self.spec.map_slots_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_rack_assignment() {
        let c = Cluster::new(ClusterSpec::simulation_25(4));
        assert_eq!(c.len(), 25);
        assert!(!c.is_empty());
        assert_eq!(c.rack_count(), 3);
        assert_eq!(c.rack_of(NodeId(0)).unwrap(), RackId(0));
        assert_eq!(c.rack_of(NodeId(4)).unwrap(), RackId(1));
        assert!(c.rack_of(NodeId(99)).is_err());
        let rack0 = c.nodes_in_rack(RackId(0));
        assert!(rack0.contains(&NodeId(0)));
        assert!(rack0.contains(&NodeId(3)));
        let total: usize = (0..3).map(|r| c.nodes_in_rack(RackId(r)).len()).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn liveness_tracking() {
        let mut c = Cluster::new(ClusterSpec::setup2());
        assert!(c.is_up(NodeId(5)));
        assert_eq!(c.available_map_slots(), 36);
        c.set_down(NodeId(5));
        c.set_down(NodeId(7));
        assert!(!c.is_up(NodeId(5)));
        assert_eq!(c.up_nodes().len(), 7);
        assert_eq!(c.down_nodes().len(), 2);
        assert_eq!(c.available_map_slots(), 28);
        c.set_up(NodeId(5));
        assert!(c.is_up(NodeId(5)));
        // Unknown nodes are never "up" and setting them down is a no-op.
        assert!(!c.is_up(NodeId(100)));
        c.set_down(NodeId(100));
        assert_eq!(c.down_nodes().len(), 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(RackId(1).to_string(), "rack1");
    }
}
