//! Failure injection: static scenarios and trace-driven timed failures.
//!
//! Two models live here:
//!
//! * [`FailureScenario`] — the original *static* model: a fixed set of nodes
//!   that are down for the whole duration of an experiment. Used by the
//!   degraded-MapReduce experiments (§5 future work: "MR performance in the
//!   presence of node failures") and by the Monte-Carlo reliability
//!   cross-checks.
//! * [`FailureTrace`] — the *timed* generalisation: a sorted sequence of
//!   [`FailureEvent`]s (node down/up, correlated rack bursts, slowdowns) at
//!   virtual instants. Layers that execute on the `drc_sim` substrate (the
//!   simulated HDFS's detection/auto-repair engine, the MapReduce engine's
//!   mid-job failure handling) consume the trace event by event, so
//!   detection lag, repair traffic and job execution interleave in virtual
//!   time instead of being fixed configuration. A static scenario is the
//!   trivial trace with every failure at t = 0 ([`FailureScenario::to_trace`]).
//!
//! # Interval semantics
//!
//! A node taken down by an event at instant `t` and restored at `t'` is
//! unavailable over the **half-open interval `[t, t')`** — the same
//! convention as `drc_sim::Timeline` phases: the node is already dark *at*
//! `t` and serving again *at* `t'`. Trace timestamps are integer nanoseconds
//! on the same epoch as `drc_sim::SimTime` (this crate sits below `drc_sim`
//! in the dependency order, so it speaks raw nanoseconds rather than the
//! typed instant).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::topology::{Cluster, NodeId, RackId};

/// A failure scenario: which nodes are down for the duration of an experiment.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FailureScenario {
    /// The nodes that are down.
    pub down: Vec<NodeId>,
}

impl FailureScenario {
    /// No failures.
    pub fn none() -> Self {
        FailureScenario::default()
    }

    /// Marks exactly the given nodes as down.
    pub fn nodes(down: Vec<NodeId>) -> Self {
        FailureScenario { down }
    }

    /// Samples distinct down nodes uniformly at random.
    ///
    /// The sample is **capped at the cluster size**: asking for more
    /// failures than there are nodes yields a scenario with every node down,
    /// not an error. The second return value is the count actually sampled
    /// (`count.min(cluster.len())`), so callers can detect truncation
    /// without re-deriving the cap.
    pub fn random<R: Rng + ?Sized>(cluster: &Cluster, count: usize, rng: &mut R) -> (Self, usize) {
        let mut nodes: Vec<NodeId> = cluster.nodes().collect();
        nodes.shuffle(rng);
        nodes.truncate(count.min(cluster.len()));
        nodes.sort_unstable();
        let sampled = nodes.len();
        (FailureScenario { down: nodes }, sampled)
    }

    /// Applies the scenario to a cluster (marks the nodes down).
    pub fn apply(&self, cluster: &mut Cluster) {
        for &n in &self.down {
            cluster.set_down(n);
        }
    }

    /// Reverts the scenario (marks the nodes up again).
    pub fn revert(&self, cluster: &mut Cluster) {
        for &n in &self.down {
            cluster.set_up(n);
        }
    }

    /// Number of failed nodes in the scenario.
    pub fn len(&self) -> usize {
        self.down.len()
    }

    /// Returns `true` if no node is down.
    pub fn is_empty(&self) -> bool {
        self.down.is_empty()
    }

    /// The equivalent timed trace: every node of the scenario fails at
    /// t = 0 and nothing recovers. With a zero detection timeout this trace
    /// reproduces the static model exactly (the differential tests lock
    /// that identity byte-for-byte).
    pub fn to_trace(&self) -> FailureTrace {
        FailureTrace::from_events(
            self.down
                .iter()
                .map(|&node| FailureEvent::at_ns(0, FailureEventKind::NodeDown { node }))
                .collect(),
        )
    }
}

/// What happens at one instant of a [`FailureTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureEventKind {
    /// The node fail-stops and its disk contents are lost (the paper's
    /// repair-relevant failure: the storage layer must re-create the node's
    /// replicas from surviving ones once the failure is detected).
    NodeDown {
        /// The failing node.
        node: NodeId,
    },
    /// The node is re-provisioned and rejoins the cluster (empty if nothing
    /// repaired it first — redundancy is only restored by repair traffic).
    NodeUp {
        /// The recovering node.
        node: NodeId,
    },
    /// Every node of the rack fail-stops at the same instant (a correlated
    /// burst: a switch or PDU failure).
    RackDown {
        /// The failing rack.
        rack: RackId,
    },
    /// The node stays up but its disk and NIC run at `1/factor` of nominal
    /// bandwidth from this instant on (a failing disk, a congested uplink);
    /// `factor == 1.0` restores nominal speed.
    Slowdown {
        /// The degraded node.
        node: NodeId,
        /// Bandwidth divisor (2.0 = half speed).
        factor: f64,
    },
}

/// One timed failure-model event.
///
/// `at_ns` is the virtual instant in nanoseconds since the simulation epoch
/// (the representation of `drc_sim::SimTime`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Virtual instant, in nanoseconds since the simulation epoch.
    pub at_ns: u64,
    /// What happens at that instant.
    pub kind: FailureEventKind,
}

impl FailureEvent {
    /// Pairs an instant (in nanoseconds) with an event kind.
    pub fn at_ns(at_ns: u64, kind: FailureEventKind) -> Self {
        FailureEvent { at_ns, kind }
    }

    /// Pairs an instant (in seconds since the epoch, rounded to the nearest
    /// nanosecond; negative or non-finite values clamp to the epoch) with an
    /// event kind.
    pub fn at_secs(at_s: f64, kind: FailureEventKind) -> Self {
        FailureEvent {
            at_ns: secs_to_ns(at_s),
            kind,
        }
    }
}

fn secs_to_ns(at_s: f64) -> u64 {
    if !at_s.is_finite() || at_s <= 0.0 {
        return 0;
    }
    (at_s * 1e9).round() as u64
}

/// A sorted sequence of timed [`FailureEvent`]s: the trace a failure engine
/// replays against the simulated cluster.
///
/// Events are kept sorted by instant; events sharing an instant keep their
/// insertion order (the same deterministic tie-break as the substrate's
/// event queue).
///
/// # Example
///
/// ```
/// use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace, NodeId};
///
/// let trace = FailureTrace::from_events(vec![
///     FailureEvent::at_secs(5.0, FailureEventKind::NodeUp { node: NodeId(3) }),
///     FailureEvent::at_secs(1.0, FailureEventKind::NodeDown { node: NodeId(3) }),
/// ]);
/// // Sorted on construction: the failure precedes the recovery.
/// assert_eq!(trace.events()[0].at_ns, 1_000_000_000);
/// assert_eq!(trace.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FailureTrace {
    events: Vec<FailureEvent>,
}

impl FailureTrace {
    /// An empty trace (nothing ever fails).
    pub fn new() -> Self {
        FailureTrace::default()
    }

    /// Builds a trace from events in any order (stable-sorted by instant).
    pub fn from_events(mut events: Vec<FailureEvent>) -> Self {
        events.sort_by_key(|e| e.at_ns);
        FailureTrace { events }
    }

    /// Adds one event, keeping the trace sorted (an event at an already-used
    /// instant goes after the existing ones — insertion order breaks ties).
    pub fn push(&mut self, event: FailureEvent) {
        let idx = self.events.partition_point(|e| e.at_ns <= event.at_ns);
        self.events.insert(idx, event);
    }

    /// The events in instant order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct nodes the trace ever takes down (directly or via a rack
    /// burst), in id order.
    pub fn nodes_taken_down(&self, cluster: &Cluster) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = Vec::new();
        for ev in &self.events {
            match ev.kind {
                FailureEventKind::NodeDown { node } => nodes.push(node),
                FailureEventKind::RackDown { rack } => nodes.extend(cluster.nodes_in_rack(rack)),
                _ => {}
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// A Poisson-arrival failure trace: node fail-stops arrive as a Poisson
    /// process with the given **per-node** failure rate (the reliability
    /// crate's `ReliabilityParams::failure_rate_per_hour` unit), i.e. an
    /// aggregate arrival rate of `rate × live nodes`. Victims are drawn
    /// uniformly from the nodes still up; arrivals stop at `horizon_s`
    /// virtual seconds or after `max_failures` events, whichever comes
    /// first.
    ///
    /// Real MTTFs (years) against second-scale simulations need an
    /// acceleration factor folded into `rate_per_hour` — the same trick the
    /// reliability crate's Monte-Carlo validator uses.
    pub fn poisson<R: Rng + ?Sized>(
        cluster: &Cluster,
        rate_per_hour: f64,
        horizon_s: f64,
        max_failures: usize,
        rng: &mut R,
    ) -> Self {
        let mut events = Vec::new();
        let valid = rate_per_hour.is_finite()
            && rate_per_hour > 0.0
            && horizon_s.is_finite()
            && horizon_s > 0.0;
        if !valid {
            return FailureTrace { events };
        }
        let rate_per_s = rate_per_hour / 3600.0;
        let mut alive: Vec<NodeId> = cluster.up_nodes();
        let mut t = 0.0f64;
        while events.len() < max_failures && !alive.is_empty() {
            let aggregate = rate_per_s * alive.len() as f64;
            // Exponential inter-arrival: -ln(1 - U) / rate, U ∈ [0, 1).
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / aggregate;
            if t >= horizon_s {
                break;
            }
            let victim = alive.swap_remove(rng.gen_range(0..alive.len()));
            events.push(FailureEvent::at_secs(
                t,
                FailureEventKind::NodeDown { node: victim },
            ));
        }
        FailureTrace::from_events(events)
    }

    /// A correlated rack burst: every node of `rack` fails at `at_s`
    /// seconds, and (when `recover_after_s` is `Some`) the whole rack is
    /// re-provisioned that many seconds later — the unavailability interval
    /// is `[at_s, at_s + recover_after_s)` per the half-open convention.
    pub fn rack_burst(
        rack: RackId,
        at_s: f64,
        recover_after_s: Option<f64>,
        cluster: &Cluster,
    ) -> Self {
        let mut events = vec![FailureEvent::at_secs(
            at_s,
            FailureEventKind::RackDown { rack },
        )];
        if let Some(after) = recover_after_s {
            for node in cluster.nodes_in_rack(rack) {
                events.push(FailureEvent::at_secs(
                    at_s + after,
                    FailureEventKind::NodeUp { node },
                ));
            }
        }
        FailureTrace::from_events(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;
    use rand::SeedableRng;

    #[test]
    fn apply_and_revert() {
        let mut cluster = Cluster::new(ClusterSpec::setup1());
        let scenario = FailureScenario::nodes(vec![NodeId(1), NodeId(5)]);
        assert_eq!(scenario.len(), 2);
        assert!(!scenario.is_empty());
        scenario.apply(&mut cluster);
        assert!(!cluster.is_up(NodeId(1)));
        assert!(!cluster.is_up(NodeId(5)));
        scenario.revert(&mut cluster);
        assert!(cluster.is_up(NodeId(1)));
        assert!(FailureScenario::none().is_empty());
    }

    #[test]
    fn random_scenarios_are_distinct_nodes_and_deterministic() {
        let cluster = Cluster::new(ClusterSpec::setup1());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let (s, sampled) = FailureScenario::random(&cluster, 5, &mut rng);
        assert_eq!(s.len(), 5);
        assert_eq!(sampled, 5);
        let unique: std::collections::BTreeSet<_> = s.down.iter().collect();
        assert_eq!(unique.len(), 5);
        // Requesting more failures than nodes caps at the cluster size, and
        // the returned count makes the truncation detectable.
        let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let (all, sampled) = FailureScenario::random(&cluster, 100, &mut rng2);
        assert_eq!(all.len(), 25);
        assert_eq!(sampled, 25);
    }

    #[test]
    fn scenario_to_trace_is_all_node_downs_at_t0() {
        let cluster = Cluster::new(ClusterSpec::setup1());
        let scenario = FailureScenario::nodes(vec![NodeId(2), NodeId(9)]);
        let trace = scenario.to_trace();
        assert_eq!(trace.len(), 2);
        assert!(trace.events().iter().all(|e| e.at_ns == 0));
        assert_eq!(trace.nodes_taken_down(&cluster), vec![NodeId(2), NodeId(9)]);
    }

    #[test]
    fn traces_sort_and_push_keeps_order() {
        let mut trace = FailureTrace::from_events(vec![
            FailureEvent::at_ns(50, FailureEventKind::NodeUp { node: NodeId(1) }),
            FailureEvent::at_ns(10, FailureEventKind::NodeDown { node: NodeId(1) }),
        ]);
        trace.push(FailureEvent::at_ns(
            30,
            FailureEventKind::Slowdown {
                node: NodeId(2),
                factor: 2.0,
            },
        ));
        let at: Vec<u64> = trace.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(at, vec![10, 30, 50]);
        assert!(!trace.is_empty());
        // Negative / non-finite second stamps clamp to the epoch.
        assert_eq!(
            FailureEvent::at_secs(-3.0, FailureEventKind::NodeUp { node: NodeId(0) }).at_ns,
            0
        );
        assert_eq!(
            FailureEvent::at_secs(f64::NAN, FailureEventKind::NodeUp { node: NodeId(0) }).at_ns,
            0
        );
    }

    #[test]
    fn poisson_traces_are_deterministic_bounded_and_distinct() {
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        // An aggressive accelerated rate so the horizon sees arrivals.
        let trace = FailureTrace::poisson(&cluster, 3600.0, 10.0, 3, &mut rng);
        assert!(trace.len() <= 3);
        assert!(
            !trace.is_empty(),
            "this seed and rate must produce arrivals"
        );
        let down = trace.nodes_taken_down(&cluster);
        assert_eq!(down.len(), trace.len(), "victims are distinct");
        // Sorted, within the horizon, and reproducible from the same seed.
        let mut last = 0;
        for ev in trace.events() {
            assert!(ev.at_ns >= last);
            assert!(ev.at_ns < 10_000_000_000);
            last = ev.at_ns;
            assert!(matches!(ev.kind, FailureEventKind::NodeDown { .. }));
        }
        let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        assert_eq!(
            trace,
            FailureTrace::poisson(&cluster, 3600.0, 10.0, 3, &mut rng2)
        );
        // Degenerate parameters yield an empty trace, never a hang.
        let mut rng3 = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        assert!(FailureTrace::poisson(&cluster, 0.0, 10.0, 3, &mut rng3).is_empty());
        assert!(FailureTrace::poisson(&cluster, 1.0, f64::NAN, 3, &mut rng3).is_empty());
    }

    #[test]
    fn rack_burst_fails_the_rack_and_recovers_it() {
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let rack = RackId(1);
        let members = cluster.nodes_in_rack(rack);
        let trace = FailureTrace::rack_burst(rack, 2.0, Some(3.0), &cluster);
        assert_eq!(trace.len(), 1 + members.len());
        assert_eq!(trace.events()[0].at_ns, 2_000_000_000);
        assert!(matches!(
            trace.events()[0].kind,
            FailureEventKind::RackDown { rack: r } if r == rack
        ));
        // Half-open outage: recoveries land exactly at at + after.
        for ev in &trace.events()[1..] {
            assert_eq!(ev.at_ns, 5_000_000_000);
            assert!(matches!(ev.kind, FailureEventKind::NodeUp { .. }));
        }
        assert_eq!(trace.nodes_taken_down(&cluster), members);
        // Without recovery only the burst itself is on the trace.
        assert_eq!(FailureTrace::rack_burst(rack, 2.0, None, &cluster).len(), 1);
    }
}
