//! Failure injection: sampling transient or permanent node failures.
//!
//! Used by the degraded-MapReduce experiments (§5 future work: "MR
//! performance in the presence of node failures") and by the Monte-Carlo
//! reliability cross-checks.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::topology::{Cluster, NodeId};

/// A failure scenario: which nodes are down for the duration of an experiment.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FailureScenario {
    /// The nodes that are down.
    pub down: Vec<NodeId>,
}

impl FailureScenario {
    /// No failures.
    pub fn none() -> Self {
        FailureScenario::default()
    }

    /// Marks exactly the given nodes as down.
    pub fn nodes(down: Vec<NodeId>) -> Self {
        FailureScenario { down }
    }

    /// Samples `count` distinct down nodes uniformly at random.
    pub fn random<R: Rng + ?Sized>(cluster: &Cluster, count: usize, rng: &mut R) -> Self {
        let mut nodes: Vec<NodeId> = cluster.nodes().collect();
        nodes.shuffle(rng);
        nodes.truncate(count.min(cluster.len()));
        nodes.sort_unstable();
        FailureScenario { down: nodes }
    }

    /// Applies the scenario to a cluster (marks the nodes down).
    pub fn apply(&self, cluster: &mut Cluster) {
        for &n in &self.down {
            cluster.set_down(n);
        }
    }

    /// Reverts the scenario (marks the nodes up again).
    pub fn revert(&self, cluster: &mut Cluster) {
        for &n in &self.down {
            cluster.set_up(n);
        }
    }

    /// Number of failed nodes in the scenario.
    pub fn len(&self) -> usize {
        self.down.len()
    }

    /// Returns `true` if no node is down.
    pub fn is_empty(&self) -> bool {
        self.down.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;
    use rand::SeedableRng;

    #[test]
    fn apply_and_revert() {
        let mut cluster = Cluster::new(ClusterSpec::setup1());
        let scenario = FailureScenario::nodes(vec![NodeId(1), NodeId(5)]);
        assert_eq!(scenario.len(), 2);
        assert!(!scenario.is_empty());
        scenario.apply(&mut cluster);
        assert!(!cluster.is_up(NodeId(1)));
        assert!(!cluster.is_up(NodeId(5)));
        scenario.revert(&mut cluster);
        assert!(cluster.is_up(NodeId(1)));
        assert!(FailureScenario::none().is_empty());
    }

    #[test]
    fn random_scenarios_are_distinct_nodes_and_deterministic() {
        let cluster = Cluster::new(ClusterSpec::setup1());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let s = FailureScenario::random(&cluster, 5, &mut rng);
        assert_eq!(s.len(), 5);
        let unique: std::collections::BTreeSet<_> = s.down.iter().collect();
        assert_eq!(unique.len(), 5);
        // Requesting more failures than nodes caps at the cluster size.
        let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let all = FailureScenario::random(&cluster, 100, &mut rng2);
        assert_eq!(all.len(), 25);
    }
}
