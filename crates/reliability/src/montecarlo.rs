//! Monte-Carlo estimation of the MTTDL of one redundancy group, used to
//! cross-validate the Markov-chain solver.
//!
//! The simulation is event-driven: up nodes fail after exponential times,
//! down nodes are repaired after exponential times (one at a time under
//! sequential repair), and a run ends when the set of simultaneously-down
//! nodes becomes unrecoverable for the code. With the realistic Table 1
//! parameters a single run would need billions of events, so Monte-Carlo is
//! only practical (and only used) with artificially small repair-to-failure
//! ratios — which is exactly what is needed to validate the solver.

use std::collections::BTreeSet;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use drc_codes::ErasureCode;

use crate::params::{ReliabilityParams, RepairStrategy, HOURS_PER_YEAR};

/// Result of a Monte-Carlo MTTDL estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloResult {
    /// Name of the code.
    pub code: String,
    /// Number of independent runs.
    pub runs: usize,
    /// Sample mean of the time to data loss, in hours.
    pub mean_hours: f64,
    /// Sample mean in years.
    pub mean_years: f64,
    /// Standard error of the mean, in hours.
    pub std_error_hours: f64,
}

/// Estimates the group MTTDL of `code` by simulating `runs` independent
/// failure/repair histories with the given `seed`.
///
/// # Panics
///
/// Panics if `runs` is zero.
pub fn monte_carlo_mttdl(
    code: &dyn ErasureCode,
    params: &ReliabilityParams,
    runs: usize,
    seed: u64,
) -> MonteCarloResult {
    assert!(runs > 0, "at least one run is required");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let samples: Vec<f64> = (0..runs)
        .map(|_| simulate_one_group(code, params, &mut rng))
        .collect();
    let mean = samples.iter().sum::<f64>() / runs as f64;
    let variance =
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (runs.max(2) - 1) as f64;
    let std_error = (variance / runs as f64).sqrt();
    MonteCarloResult {
        code: code.name().to_string(),
        runs,
        mean_hours: mean,
        mean_years: mean / HOURS_PER_YEAR,
        std_error_hours: std_error,
    }
}

/// Simulates one failure/repair history until data loss; returns the time in
/// hours.
fn simulate_one_group<R: Rng + ?Sized>(
    code: &dyn ErasureCode,
    params: &ReliabilityParams,
    rng: &mut R,
) -> f64 {
    let n = code.node_count();
    let lambda = params.failure_rate_per_hour();
    let mu = params.repair_rate_per_hour();
    let mut now = 0.0f64;
    let mut down: BTreeSet<usize> = BTreeSet::new();

    loop {
        let up_count = n - down.len();
        let failure_rate = up_count as f64 * lambda;
        let repair_rate = if down.is_empty() {
            0.0
        } else {
            match params.repair_strategy {
                RepairStrategy::Sequential => mu,
                RepairStrategy::Parallel => down.len() as f64 * mu,
            }
        };
        let total_rate = failure_rate + repair_rate;
        debug_assert!(total_rate > 0.0);
        now += exponential(total_rate, rng);
        // Decide which event happened.
        if rng.gen::<f64>() * total_rate < failure_rate {
            // A uniformly random up node fails.
            let victim_rank = rng.gen_range(0..up_count);
            let victim = (0..n)
                .filter(|node| !down.contains(node))
                .nth(victim_rank)
                // drc-lint: allow(panic-hygiene): victim_rank < up_count and the filter
                // yields exactly up_count nodes, both computed in this block.
                .expect("victim rank within up nodes");
            down.insert(victim);
            if !code.can_recover(&down) {
                return now;
            }
        } else {
            // One down node finishes repair (uniformly random choice).
            let fixed_rank = rng.gen_range(0..down.len());
            // drc-lint: allow(panic-hygiene): fixed_rank < down.len() by the
            // gen_range bound on the previous line.
            let fixed = *down.iter().nth(fixed_rank).expect("non-empty down set");
            down.remove(&fixed);
        }
    }
}

fn exponential<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::group_mttdl;
    use drc_codes::CodeKind;

    /// Artificially failure-prone parameters so runs terminate quickly.
    fn fast_params() -> ReliabilityParams {
        ReliabilityParams {
            node_mttf_hours: 100.0,
            node_repair_hours: 40.0,
            ..ReliabilityParams::default()
        }
    }

    #[test]
    fn monte_carlo_agrees_with_markov_for_replication() {
        let code = CodeKind::THREE_REP.build().unwrap();
        let params = fast_params();
        let markov = group_mttdl(code.as_ref(), &params).unwrap();
        let mc = monte_carlo_mttdl(code.as_ref(), &params, 4000, 42);
        let diff = (mc.mean_hours - markov.mttdl_hours).abs();
        assert!(
            diff < 5.0 * mc.std_error_hours + 0.05 * markov.mttdl_hours,
            "monte carlo {} vs markov {} (stderr {})",
            mc.mean_hours,
            markov.mttdl_hours,
            mc.std_error_hours
        );
    }

    #[test]
    fn monte_carlo_agrees_with_markov_for_pentagon() {
        let code = CodeKind::Pentagon.build().unwrap();
        let params = fast_params();
        let markov = group_mttdl(code.as_ref(), &params).unwrap();
        let mc = monte_carlo_mttdl(code.as_ref(), &params, 4000, 7);
        let diff = (mc.mean_hours - markov.mttdl_hours).abs();
        assert!(
            diff < 5.0 * mc.std_error_hours + 0.05 * markov.mttdl_hours,
            "monte carlo {} vs markov {}",
            mc.mean_hours,
            markov.mttdl_hours
        );
    }

    #[test]
    fn pattern_aware_markov_matches_monte_carlo_for_raid_m() {
        // The Monte-Carlo simulation is pattern-exact, so it should line up
        // with the pattern-aware Markov model (and exceed the worst-case one).
        use crate::params::FatalityModel;
        let code = CodeKind::RaidMirror { total: 4 }.build().unwrap();
        let params = fast_params();
        let aware = group_mttdl(
            code.as_ref(),
            &params.with_fatality_model(FatalityModel::PatternAware),
        )
        .unwrap();
        let worst = group_mttdl(code.as_ref(), &params).unwrap();
        let mc = monte_carlo_mttdl(code.as_ref(), &params, 3000, 11);
        assert!(mc.mean_hours > worst.mttdl_hours);
        let diff = (mc.mean_hours - aware.mttdl_hours).abs();
        assert!(
            diff < 6.0 * mc.std_error_hours + 0.1 * aware.mttdl_hours,
            "monte carlo {} vs pattern-aware markov {}",
            mc.mean_hours,
            aware.mttdl_hours
        );
    }

    #[test]
    fn result_fields_are_consistent() {
        let code = CodeKind::TWO_REP.build().unwrap();
        let mc = monte_carlo_mttdl(code.as_ref(), &fast_params(), 500, 3);
        assert_eq!(mc.code, "2-rep");
        assert_eq!(mc.runs, 500);
        assert!(mc.mean_hours > 0.0);
        assert!((mc.mean_years - mc.mean_hours / HOURS_PER_YEAR).abs() < 1e-9);
        assert!(mc.std_error_hours > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let code = CodeKind::TWO_REP.build().unwrap();
        let a = monte_carlo_mttdl(code.as_ref(), &fast_params(), 200, 5);
        let b = monte_carlo_mttdl(code.as_ref(), &fast_params(), 200, 5);
        assert_eq!(a, b);
    }
}
