//! Reliability analysis (MTTDL) for the double-replication Hadoop codes.
//!
//! Table 1 of the paper compares the mean time to data loss of 3-way
//! replication, the pentagon / heptagon / heptagon-local codes and two
//! RAID+mirroring configurations, "computed assuming a 25 node system, using
//! standard node failure and repair models available in the literature".
//! This crate implements that analysis:
//!
//! * [`group_mttdl`] — an exact continuous-time Markov-chain solution of the
//!   per-redundancy-group failure/repair model, with either worst-case or
//!   pattern-aware data-loss transitions,
//! * [`closed_form_mttdl_hours`] — the familiar high-repair-rate closed form,
//!   used as an analytic cross-check,
//! * [`monte_carlo_mttdl`] — an event-driven Monte-Carlo estimator used to
//!   validate the chain (with artificially failure-prone parameters).
//!
//! # Example
//!
//! ```
//! use drc_codes::CodeKind;
//! use drc_reliability::{group_mttdl, ReliabilityParams};
//!
//! # fn main() -> Result<(), drc_reliability::ReliabilityError> {
//! let params = ReliabilityParams::default();
//! let pentagon = CodeKind::Pentagon.build().unwrap();
//! let three_rep = CodeKind::THREE_REP.build().unwrap();
//! let p = group_mttdl(pentagon.as_ref(), &params)?;
//! let r = group_mttdl(three_rep.as_ref(), &params)?;
//! // Table 1: the pentagon trades roughly an order of magnitude of MTTDL for
//! // its storage savings relative to 3-way replication.
//! assert!(p.mttdl_years < r.mttdl_years);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod markov;
mod montecarlo;
mod params;
mod solver;

pub use error::ReliabilityError;
pub use markov::{closed_form_mttdl_hours, group_mttdl, MttdlResult};
pub use montecarlo::{monte_carlo_mttdl, MonteCarloResult};
pub use params::{FatalityModel, ReliabilityParams, RepairStrategy, HOURS_PER_YEAR};
pub use solver::solve_linear;
