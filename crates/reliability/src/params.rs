//! Failure and repair model parameters.

use serde::{Deserialize, Serialize};

/// Hours in a (365-day) year, used to convert MTTDL to the paper's unit.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// How repairs proceed when several nodes of a group are down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RepairStrategy {
    /// One repair at a time (a single repair "server" per group). This is the
    /// classic model of Xin et al. and what the Table 1 reproduction uses.
    #[default]
    Sequential,
    /// All failed nodes are repaired in parallel (repair rate grows linearly
    /// with the number of failures).
    Parallel,
}

/// How data-loss transitions are decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FatalityModel {
    /// Data is considered lost as soon as the number of simultaneous failures
    /// exceeds the code's worst-case tolerance `t`, regardless of the actual
    /// failure pattern. Conservative; matches the standard closed-form models
    /// in the literature and is the default for the Table 1 reproduction.
    #[default]
    WorstCase,
    /// Transitions weight data loss by the exact fraction of failure patterns
    /// of each size that are fatal for the specific code (computed by
    /// exhaustive enumeration). More accurate for codes such as RAID+m and
    /// heptagon-local where many above-tolerance patterns are survivable.
    PatternAware,
}

/// Parameters of the node failure / repair model used to compute MTTDL.
///
/// The defaults are the calibration used for the Table 1 reproduction:
/// a node mean-time-to-failure of five years and a mean repair time of
/// 1.2 hours, values in line with the "standard node failure and repair
/// models available in the literature" that the paper cites (Xin et al.,
/// IEEE MSST 2003). Scaling either parameter rescales every MTTDL by the
/// same factor; the *relative* ordering of codes is what the reproduction
/// checks.
///
/// # Example
///
/// ```
/// use drc_reliability::ReliabilityParams;
///
/// let params = ReliabilityParams::default();
/// assert!(params.failure_rate_per_hour() > 0.0);
/// assert!(params.repair_rate_per_hour() > params.failure_rate_per_hour());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityParams {
    /// Mean time to failure of a single node, in hours.
    pub node_mttf_hours: f64,
    /// Mean time to repair a failed node of the group, in hours, for a code
    /// whose repair moves one block per stored block (replication-like). The
    /// per-code repair time is scaled by the code's relative repair traffic.
    pub node_repair_hours: f64,
    /// Whether repairs are sequential or parallel within a group.
    pub repair_strategy: RepairStrategy,
    /// Whether data-loss transitions use worst-case tolerance or exact
    /// per-pattern fatality fractions.
    pub fatality_model: FatalityModel,
    /// If `true`, each code's repair rate is divided by its relative repair
    /// traffic (network blocks moved per stored block of the failed node);
    /// replication has factor 1, Reed–Solomon ~`k`. Defaults to `false`
    /// because the paper's Table 1 is insensitive to it for the codes listed
    /// (all of them have factor 1).
    pub scale_repair_with_traffic: bool,
}

impl Default for ReliabilityParams {
    fn default() -> Self {
        ReliabilityParams {
            node_mttf_hours: 5.0 * HOURS_PER_YEAR,
            node_repair_hours: 1.2,
            repair_strategy: RepairStrategy::Sequential,
            fatality_model: FatalityModel::WorstCase,
            scale_repair_with_traffic: false,
        }
    }
}

impl ReliabilityParams {
    /// The per-node failure rate λ (per hour).
    pub fn failure_rate_per_hour(&self) -> f64 {
        1.0 / self.node_mttf_hours
    }

    /// The base per-node repair rate μ (per hour).
    pub fn repair_rate_per_hour(&self) -> f64 {
        1.0 / self.node_repair_hours
    }

    /// Returns a copy with a different fatality model.
    pub fn with_fatality_model(mut self, model: FatalityModel) -> Self {
        self.fatality_model = model;
        self
    }

    /// Returns a copy with a different repair strategy.
    pub fn with_repair_strategy(mut self, strategy: RepairStrategy) -> Self {
        self.repair_strategy = strategy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_is_sane() {
        let p = ReliabilityParams::default();
        assert!((p.node_mttf_hours - 43800.0).abs() < 1e-9);
        assert!(p.node_repair_hours < 24.0);
        assert_eq!(p.repair_strategy, RepairStrategy::Sequential);
        assert_eq!(p.fatality_model, FatalityModel::WorstCase);
        assert!(!p.scale_repair_with_traffic);
    }

    #[test]
    fn rates_are_reciprocal_of_times() {
        let p = ReliabilityParams::default();
        assert!((p.failure_rate_per_hour() * p.node_mttf_hours - 1.0).abs() < 1e-12);
        assert!((p.repair_rate_per_hour() * p.node_repair_hours - 1.0).abs() < 1e-12);
    }

    #[test]
    fn builder_style_modifiers() {
        let p = ReliabilityParams::default()
            .with_fatality_model(FatalityModel::PatternAware)
            .with_repair_strategy(RepairStrategy::Parallel);
        assert_eq!(p.fatality_model, FatalityModel::PatternAware);
        assert_eq!(p.repair_strategy, RepairStrategy::Parallel);
    }
}
