//! A small dense linear solver over `f64`, used to compute expected
//! absorption times of the MTTDL Markov chains.

use crate::ReliabilityError;

/// Solves `a x = b` by Gaussian elimination with partial pivoting.
///
/// `a` is given in row-major order as `n` rows of `n` coefficients.
///
/// # Errors
///
/// Returns [`ReliabilityError::SingularSystem`] if the matrix is (numerically)
/// singular, and [`ReliabilityError::DimensionMismatch`] if the shapes are
/// inconsistent.
pub fn solve_linear(a: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, ReliabilityError> {
    let n = b.len();
    if a.len() != n || a.iter().any(|row| row.len() != n) {
        return Err(ReliabilityError::DimensionMismatch {
            rows: a.len(),
            cols: a.first().map(Vec::len).unwrap_or(0),
            rhs: n,
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    // Augmented working copy.
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivoting.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            // drc-lint: allow(panic-hygiene): max_by over `i..n` with i < n (loop
            // bound), so the range is never empty.
            .expect("non-empty range");
        if m[pivot][col].abs() < 1e-300 {
            return Err(ReliabilityError::SingularSystem);
        }
        m.swap(col, pivot);
        let diag = m[col][col];
        for entry in m[col][col..=n].iter_mut() {
            *entry /= diag;
        }
        let pivot_row: Vec<f64> = m[col][col..=n].to_vec();
        for (r, row) in m.iter_mut().enumerate().take(n) {
            if r != col && row[col] != 0.0 {
                let factor = row[col];
                for (entry, &pivot_val) in row[col..=n].iter_mut().zip(&pivot_row) {
                    *entry -= factor * pivot_val;
                }
            }
        }
    }
    Ok(m.into_iter().map(|row| row[n]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_system() {
        // x + y = 3, x - y = 1 => x = 2, y = 1.
        let a = vec![vec![1.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear(&a, &[3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solves_with_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![
            vec![0.0, 2.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![2.0, 0.0, 3.0],
        ];
        let b = [5.0, 6.0, 13.0];
        let x = solve_linear(&a, &b).unwrap();
        for (row, &rhs) in a.iter().zip(&b) {
            let lhs: f64 = row.iter().zip(&x).map(|(c, v)| c * v).sum();
            assert!((lhs - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn detects_singular_and_mismatched_systems() {
        let singular = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(
            solve_linear(&singular, &[1.0, 2.0]),
            Err(ReliabilityError::SingularSystem)
        );
        let a = vec![vec![1.0, 2.0]];
        assert!(matches!(
            solve_linear(&a, &[1.0, 2.0]),
            Err(ReliabilityError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_system_is_trivially_solved() {
        assert_eq!(solve_linear(&[], &[]).unwrap(), Vec::<f64>::new());
    }
}
