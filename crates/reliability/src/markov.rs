//! Continuous-time Markov-chain MTTDL computation for one redundancy group
//! (one stripe's worth of nodes) of an erasure code.
//!
//! The model follows the standard construction the paper refers to
//! ("standard node failure and repair models available in the literature",
//! Xin et al., MSST 2003): each of the group's `n` nodes fails independently
//! at rate `λ`, failed nodes are repaired at rate `μ` (sequentially or in
//! parallel), and the group reaches the absorbing *data loss* state when the
//! set of simultaneously-failed nodes becomes unrecoverable for the code.
//! The mean time to data loss (MTTDL) is the expected time to absorption
//! starting from the all-healthy state.

use serde::{Deserialize, Serialize};

use drc_codes::ErasureCode;

use crate::params::{FatalityModel, ReliabilityParams, RepairStrategy, HOURS_PER_YEAR};
use crate::solver::solve_linear;
use crate::ReliabilityError;

/// The result of an MTTDL computation for one code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MttdlResult {
    /// Name of the code.
    pub code: String,
    /// Number of nodes in the redundancy group (the code length).
    pub group_size: usize,
    /// Worst-case fault tolerance used (or underlying the pattern fractions).
    pub fault_tolerance: usize,
    /// Mean time to data loss in hours.
    pub mttdl_hours: f64,
    /// Mean time to data loss in years (the unit of Table 1).
    pub mttdl_years: f64,
    /// Expected time spent in each transient state (diagnostic).
    pub state_times_hours: Vec<f64>,
}

/// Computes the MTTDL of a single redundancy group of `code` under `params`.
///
/// # Errors
///
/// Returns [`ReliabilityError::DegenerateModel`] if the code cannot survive
/// even a single failure (the chain would be absorbed immediately, MTTDL is
/// just the first failure time), or a solver error if the linear system is
/// singular (which does not happen for well-formed chains).
///
/// # Example
///
/// ```
/// use drc_codes::CodeKind;
/// use drc_reliability::{group_mttdl, ReliabilityParams};
///
/// let three_rep = CodeKind::THREE_REP.build().unwrap();
/// let result = group_mttdl(three_rep.as_ref(), &ReliabilityParams::default()).unwrap();
/// assert!(result.mttdl_years > 1e8); // Table 1: 1.20e+09 years
/// ```
pub fn group_mttdl(
    code: &dyn ErasureCode,
    params: &ReliabilityParams,
) -> Result<MttdlResult, ReliabilityError> {
    let n = code.node_count();
    let lambda = params.failure_rate_per_hour();
    let mut mu = params.repair_rate_per_hour();
    if params.scale_repair_with_traffic {
        let blocks_per_node = code.stored_blocks() as f64 / n as f64;
        let traffic_factor = (code.single_node_repair_blocks() / blocks_per_node).max(1.0);
        mu /= traffic_factor;
    }

    // survivors[f] = number of non-fatal failure patterns of size f. Under the
    // worst-case model this is "all patterns" up to the tolerance and zero
    // beyond it; under the pattern-aware model it is counted exhaustively.
    let tolerance = code.fault_tolerance();
    if tolerance == 0 {
        return Err(ReliabilityError::DegenerateModel {
            code: code.name().to_string(),
            reason: "code cannot survive any node failure".to_string(),
        });
    }
    let max_states = match params.fatality_model {
        FatalityModel::WorstCase => tolerance,
        FatalityModel::PatternAware => n - 1,
    };
    // non_fatal[f] for f = 0..=max_states (+1 sentinel for transitions out).
    let mut non_fatal: Vec<f64> = Vec::with_capacity(max_states + 2);
    for f in 0..=(max_states + 1).min(n) {
        let count = match params.fatality_model {
            FatalityModel::WorstCase => {
                if f <= tolerance {
                    binomial(n, f)
                } else {
                    0.0
                }
            }
            FatalityModel::PatternAware => {
                let (fatal, total) = code.count_fatal_patterns(f);
                total as f64 - fatal as f64
            }
        };
        non_fatal.push(count);
    }
    // Transient states are those f with a non-zero count of non-fatal patterns.
    let num_states = non_fatal
        .iter()
        .take(max_states + 1)
        .take_while(|&&c| c > 0.0)
        .count();
    debug_assert!(num_states >= 1);

    // Build the linear system for expected absorption times T_f:
    //   (sum of outgoing rates) T_f - sum_g rate(f->g) T_g = 1
    // where g ranges over transient states; transitions to the absorbing
    // state contribute only to the diagonal.
    let mut a = vec![vec![0.0; num_states]; num_states];
    let mut b = vec![1.0; num_states];
    for f in 0..num_states {
        let failure_rate = (n - f) as f64 * lambda;
        let repair_rate = if f == 0 {
            0.0
        } else {
            match params.repair_strategy {
                RepairStrategy::Sequential => mu,
                RepairStrategy::Parallel => f as f64 * mu,
            }
        };
        // Probability that the (f+1)-th failure lands on a non-fatal pattern,
        // assuming the current pattern is uniformly distributed among
        // non-fatal patterns of size f.
        let p_survive = if non_fatal[f] > 0.0 && f + 1 < non_fatal.len() {
            ((non_fatal[f + 1] * (f as f64 + 1.0)) / (non_fatal[f] * (n - f) as f64)).min(1.0)
        } else {
            0.0
        };
        let out_rate = failure_rate + repair_rate;
        a[f][f] = out_rate;
        b[f] = 1.0;
        // Failure to the next (still transient) state.
        if f + 1 < num_states && p_survive > 0.0 {
            a[f][f + 1] -= failure_rate * p_survive;
        }
        // Repair back to the previous state.
        if f > 0 {
            a[f][f - 1] -= repair_rate;
        }
        let _ = out_rate;
    }
    let times = solve_linear(&a, &b)?;
    let mttdl_hours = times[0];
    Ok(MttdlResult {
        code: code.name().to_string(),
        group_size: n,
        fault_tolerance: tolerance,
        mttdl_hours,
        mttdl_years: mttdl_hours / HOURS_PER_YEAR,
        state_times_hours: times,
    })
}

/// The closed-form high-repair-rate approximation
/// `MTTDL ≈ μ^t / (n (n-1) ... (n-t) λ^(t+1))` for a code of length `n` and
/// tolerance `t` under sequential repair.
///
/// Useful as an analytic cross-check of the exact chain solution.
pub fn closed_form_mttdl_hours(n: usize, tolerance: usize, params: &ReliabilityParams) -> f64 {
    let lambda = params.failure_rate_per_hour();
    let mu = params.repair_rate_per_hour();
    let mut denom = 1.0;
    for i in 0..=tolerance {
        denom *= (n - i) as f64;
    }
    mu.powi(tolerance as i32) / (denom * lambda.powi(tolerance as i32 + 1))
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut result = 1.0;
    for i in 0..k {
        result *= (n - i) as f64 / (i + 1) as f64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use drc_codes::CodeKind;

    fn params() -> ReliabilityParams {
        ReliabilityParams::default()
    }

    #[test]
    fn exact_chain_close_to_closed_form_for_replication() {
        let code = CodeKind::THREE_REP.build().unwrap();
        let exact = group_mttdl(code.as_ref(), &params()).unwrap();
        let approx = closed_form_mttdl_hours(3, 2, &params()) / HOURS_PER_YEAR;
        let rel = (exact.mttdl_years - approx).abs() / approx;
        assert!(rel < 0.01, "exact {} vs approx {approx}", exact.mttdl_years);
    }

    #[test]
    fn table1_orderings_hold() {
        let p = params();
        let mttdl = |kind: CodeKind| {
            group_mttdl(kind.build().unwrap().as_ref(), &p)
                .unwrap()
                .mttdl_years
        };
        let three_rep = mttdl(CodeKind::THREE_REP);
        let pentagon = mttdl(CodeKind::Pentagon);
        let heptagon = mttdl(CodeKind::Heptagon);
        let heptagon_local = mttdl(CodeKind::HeptagonLocal);
        let raid_10_9 = mttdl(CodeKind::RAID_M_10_9);
        let raid_12_11 = mttdl(CodeKind::RAID_M_12_11);
        // Orderings of Table 1.
        assert!(heptagon_local > raid_10_9);
        assert!(raid_10_9 > three_rep);
        assert!(three_rep > raid_12_11);
        assert!(raid_12_11 > pentagon);
        assert!(pentagon > heptagon);
        // Rough magnitudes (the paper reports 1.20e9 for 3-rep, 1.05e8 for the
        // pentagon, 2.68e7 for the heptagon, 8.34e9 for heptagon-local).
        assert!(three_rep > 1e8 && three_rep < 1e10);
        assert!(pentagon > 1e7 && pentagon < 1e9);
        assert!(heptagon > 1e6 && heptagon < 1e8);
        assert!(heptagon_local > 1e9 && heptagon_local < 1e11);
    }

    #[test]
    fn pattern_aware_model_is_at_least_as_optimistic() {
        let p = params();
        let pa = p.with_fatality_model(FatalityModel::PatternAware);
        for kind in [
            CodeKind::THREE_REP,
            CodeKind::Pentagon,
            CodeKind::RAID_M_10_9,
            CodeKind::HeptagonLocal,
        ] {
            let code = kind.build().unwrap();
            let worst = group_mttdl(code.as_ref(), &p).unwrap().mttdl_years;
            let aware = group_mttdl(code.as_ref(), &pa).unwrap().mttdl_years;
            assert!(
                aware >= worst * 0.99,
                "{kind}: pattern-aware {aware} < worst-case {worst}"
            );
        }
    }

    #[test]
    fn parallel_repair_improves_mttdl() {
        let p = params();
        let par = p.with_repair_strategy(RepairStrategy::Parallel);
        let code = CodeKind::HeptagonLocal.build().unwrap();
        let seq = group_mttdl(code.as_ref(), &p).unwrap().mttdl_years;
        let parallel = group_mttdl(code.as_ref(), &par).unwrap().mttdl_years;
        assert!(parallel > seq);
    }

    #[test]
    fn faster_repair_and_more_reliable_nodes_increase_mttdl() {
        let code = CodeKind::Pentagon.build().unwrap();
        let base = group_mttdl(code.as_ref(), &params()).unwrap().mttdl_years;
        let mut faster = params();
        faster.node_repair_hours /= 2.0;
        assert!(group_mttdl(code.as_ref(), &faster).unwrap().mttdl_years > base);
        let mut tougher = params();
        tougher.node_mttf_hours *= 2.0;
        assert!(group_mttdl(code.as_ref(), &tougher).unwrap().mttdl_years > base);
    }

    #[test]
    fn repair_traffic_scaling_penalises_reed_solomon() {
        let rs = CodeKind::ReedSolomon {
            data: 10,
            parity: 4,
        }
        .build()
        .unwrap();
        let plain = group_mttdl(rs.as_ref(), &params()).unwrap().mttdl_years;
        let mut scaled_params = params();
        scaled_params.scale_repair_with_traffic = true;
        let scaled = group_mttdl(rs.as_ref(), &scaled_params)
            .unwrap()
            .mttdl_years;
        assert!(scaled < plain);
        // Replication is unaffected (repair factor 1).
        let rep = CodeKind::THREE_REP.build().unwrap();
        let a = group_mttdl(rep.as_ref(), &params()).unwrap().mttdl_years;
        let b = group_mttdl(rep.as_ref(), &scaled_params)
            .unwrap()
            .mttdl_years;
        assert!((a - b).abs() / a < 1e-9);
    }

    #[test]
    fn single_replica_code_is_degenerate() {
        let one_rep = CodeKind::Replication { replicas: 1 }.build().unwrap();
        assert!(matches!(
            group_mttdl(one_rep.as_ref(), &params()),
            Err(ReliabilityError::DegenerateModel { .. })
        ));
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(3, 5), 0.0);
    }
}
