use std::fmt;

/// Errors produced by the reliability models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReliabilityError {
    /// The linear system for the Markov chain is singular.
    SingularSystem,
    /// A linear system had inconsistent dimensions.
    DimensionMismatch {
        /// Number of rows in the coefficient matrix.
        rows: usize,
        /// Number of columns in the coefficient matrix.
        cols: usize,
        /// Length of the right-hand side.
        rhs: usize,
    },
    /// The code cannot form a meaningful reliability model (e.g. it tolerates
    /// no failures at all).
    DegenerateModel {
        /// Name of the offending code.
        code: String,
        /// Why the model is degenerate.
        reason: String,
    },
}

impl fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReliabilityError::SingularSystem => write!(f, "singular linear system"),
            ReliabilityError::DimensionMismatch { rows, cols, rhs } => write!(
                f,
                "dimension mismatch: {rows}x{cols} matrix with rhs of length {rhs}"
            ),
            ReliabilityError::DegenerateModel { code, reason } => {
                write!(f, "degenerate reliability model for {code}: {reason}")
            }
        }
    }
}

impl std::error::Error for ReliabilityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            ReliabilityError::SingularSystem,
            ReliabilityError::DimensionMismatch {
                rows: 1,
                cols: 2,
                rhs: 3,
            },
            ReliabilityError::DegenerateModel {
                code: "1-rep".into(),
                reason: "no tolerance".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
