//! A small registry that names the coding schemes evaluated in the paper and
//! builds them on demand.
//!
//! Experiments across the workspace (reliability tables, locality
//! simulations, MapReduce runs) are parameterised by a [`CodeKind`]; the
//! registry keeps the mapping between the paper's code names and concrete
//! [`ErasureCode`] implementations in one place.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::codes::{PolygonCode, PolygonLocalCode, RaidMirrorCode, ReplicationCode, RsCode};
use crate::{CodeError, ErasureCode};

/// An identifier for a coding scheme, convertible into a concrete code.
///
/// # Example
///
/// ```
/// use drc_codes::CodeKind;
///
/// let pentagon = CodeKind::Pentagon.build().unwrap();
/// assert_eq!(pentagon.data_blocks(), 9);
/// assert_eq!(CodeKind::Pentagon.to_string(), "pentagon");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CodeKind {
    /// Plain `r`-way replication.
    Replication {
        /// Number of replicas of every block.
        replicas: usize,
    },
    /// The pentagon repair-by-transfer code (9 data blocks on 5 nodes).
    Pentagon,
    /// The heptagon repair-by-transfer code (20 data blocks on 7 nodes).
    Heptagon,
    /// The heptagon-local code (two heptagons plus a global-parity node).
    HeptagonLocal,
    /// A general `K_n` polygon code.
    Polygon {
        /// Number of graph vertices / storage nodes.
        nodes: usize,
    },
    /// The `(total, total-1)` RAID+mirroring scheme.
    RaidMirror {
        /// Number of distinct coded blocks (data + one parity).
        total: usize,
    },
    /// A single-copy systematic Reed–Solomon code.
    ReedSolomon {
        /// Data blocks per stripe.
        data: usize,
        /// Parity blocks per stripe.
        parity: usize,
    },
}

impl CodeKind {
    /// 3-way replication (the Hadoop default).
    pub const THREE_REP: CodeKind = CodeKind::Replication { replicas: 3 };
    /// 2-way replication.
    pub const TWO_REP: CodeKind = CodeKind::Replication { replicas: 2 };
    /// The paper's `(10,9)` RAID+m comparison code.
    pub const RAID_M_10_9: CodeKind = CodeKind::RaidMirror { total: 10 };
    /// The paper's `(12,11)` RAID+m comparison code.
    pub const RAID_M_12_11: CodeKind = CodeKind::RaidMirror { total: 12 };

    /// The six codes of Table 1, in the paper's row order.
    pub fn table1_set() -> Vec<CodeKind> {
        vec![
            CodeKind::THREE_REP,
            CodeKind::Pentagon,
            CodeKind::Heptagon,
            CodeKind::HeptagonLocal,
            CodeKind::RAID_M_10_9,
            CodeKind::RAID_M_12_11,
        ]
    }

    /// The codes whose map-task locality is simulated in Fig. 3.
    pub fn fig3_set() -> Vec<CodeKind> {
        vec![CodeKind::TWO_REP, CodeKind::Pentagon, CodeKind::Heptagon]
    }

    /// The codes measured in the cluster experiments of Fig. 4.
    pub fn fig4_set() -> Vec<CodeKind> {
        vec![
            CodeKind::THREE_REP,
            CodeKind::TWO_REP,
            CodeKind::Pentagon,
            CodeKind::Heptagon,
        ]
    }

    /// The codes measured in the cluster experiments of Fig. 5.
    pub fn fig5_set() -> Vec<CodeKind> {
        vec![CodeKind::THREE_REP, CodeKind::TWO_REP, CodeKind::Pentagon]
    }

    /// Builds the concrete code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if the parameters embedded in
    /// the kind are invalid (e.g. zero replicas).
    pub fn build(&self) -> Result<Arc<dyn ErasureCode>, CodeError> {
        Ok(match *self {
            CodeKind::Replication { replicas } => Arc::new(ReplicationCode::new(replicas)?),
            CodeKind::Pentagon => Arc::new(PolygonCode::pentagon()),
            CodeKind::Heptagon => Arc::new(PolygonCode::heptagon()),
            CodeKind::HeptagonLocal => Arc::new(PolygonLocalCode::heptagon_local()),
            CodeKind::Polygon { nodes } => Arc::new(PolygonCode::new(nodes)?),
            CodeKind::RaidMirror { total } => Arc::new(RaidMirrorCode::new(total)?),
            CodeKind::ReedSolomon { data, parity } => Arc::new(RsCode::new(data, parity)?),
        })
    }

    /// Returns `true` if the scheme stores at least two replicas of every
    /// data block (the "inherent double replication" property).
    pub fn has_inherent_double_replication(&self) -> bool {
        match *self {
            CodeKind::Replication { replicas } => replicas >= 2,
            CodeKind::Pentagon
            | CodeKind::Heptagon
            | CodeKind::HeptagonLocal
            | CodeKind::Polygon { .. }
            | CodeKind::RaidMirror { .. } => true,
            CodeKind::ReedSolomon { .. } => false,
        }
    }
}

impl fmt::Display for CodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodeKind::Replication { replicas } => write!(f, "{replicas}-rep"),
            CodeKind::Pentagon => write!(f, "pentagon"),
            CodeKind::Heptagon => write!(f, "heptagon"),
            CodeKind::HeptagonLocal => write!(f, "heptagon-local"),
            CodeKind::Polygon { nodes } => write!(f, "{nodes}-gon"),
            CodeKind::RaidMirror { total } => write!(f, "({total},{}) RAID+m", total - 1),
            CodeKind::ReedSolomon { data, parity } => write!(f, "RS({data},{parity})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_built_code_names() {
        for kind in [
            CodeKind::THREE_REP,
            CodeKind::TWO_REP,
            CodeKind::Pentagon,
            CodeKind::Heptagon,
            CodeKind::HeptagonLocal,
            CodeKind::RAID_M_10_9,
            CodeKind::RAID_M_12_11,
            CodeKind::ReedSolomon {
                data: 10,
                parity: 4,
            },
            CodeKind::Polygon { nodes: 6 },
        ] {
            let code = kind.build().unwrap();
            assert_eq!(kind.to_string(), code.name(), "kind {kind:?}");
        }
    }

    #[test]
    fn table1_set_matches_paper_rows() {
        let names: Vec<String> = CodeKind::table1_set()
            .iter()
            .map(CodeKind::to_string)
            .collect();
        assert_eq!(
            names,
            vec![
                "3-rep",
                "pentagon",
                "heptagon",
                "heptagon-local",
                "(10,9) RAID+m",
                "(12,11) RAID+m"
            ]
        );
    }

    #[test]
    fn storage_overheads_match_table1() {
        // Table 1, column "Storage Overhead".
        let expected = [
            (CodeKind::THREE_REP, 3.0),
            (CodeKind::Pentagon, 20.0 / 9.0),      // 2.22x
            (CodeKind::Heptagon, 2.1),             // 2.1x
            (CodeKind::HeptagonLocal, 2.15),       // 2.15x
            (CodeKind::RAID_M_10_9, 20.0 / 9.0),   // 2.22x
            (CodeKind::RAID_M_12_11, 24.0 / 11.0), // 2.18x
        ];
        for (kind, overhead) in expected {
            let code = kind.build().unwrap();
            assert!(
                (code.storage_overhead() - overhead).abs() < 1e-9,
                "{kind}: got {}, want {overhead}",
                code.storage_overhead()
            );
        }
    }

    #[test]
    fn code_lengths_match_table1() {
        // Table 1, column "Code Length".
        let expected = [
            (CodeKind::THREE_REP, 3),
            (CodeKind::Pentagon, 5),
            (CodeKind::Heptagon, 7),
            (CodeKind::HeptagonLocal, 15),
            (CodeKind::RAID_M_10_9, 20),
            (CodeKind::RAID_M_12_11, 24),
        ];
        for (kind, length) in expected {
            assert_eq!(kind.build().unwrap().node_count(), length, "{kind}");
        }
    }

    #[test]
    fn double_replication_property() {
        assert!(CodeKind::Pentagon.has_inherent_double_replication());
        assert!(CodeKind::HeptagonLocal.has_inherent_double_replication());
        assert!(CodeKind::RAID_M_10_9.has_inherent_double_replication());
        assert!(CodeKind::TWO_REP.has_inherent_double_replication());
        assert!(!CodeKind::Replication { replicas: 1 }.has_inherent_double_replication());
        assert!(!CodeKind::ReedSolomon {
            data: 10,
            parity: 4
        }
        .has_inherent_double_replication());
    }

    #[test]
    fn invalid_kinds_fail_to_build() {
        assert!(CodeKind::Replication { replicas: 0 }.build().is_err());
        assert!(CodeKind::Polygon { nodes: 2 }.build().is_err());
        assert!(CodeKind::RaidMirror { total: 1 }.build().is_err());
        assert!(CodeKind::ReedSolomon { data: 0, parity: 1 }
            .build()
            .is_err());
    }

    #[test]
    fn figure_sets_build() {
        for kind in CodeKind::fig3_set()
            .into_iter()
            .chain(CodeKind::fig4_set())
            .chain(CodeKind::fig5_set())
        {
            assert!(kind.build().is_ok());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let kind = CodeKind::RAID_M_10_9;
        let json = serde_json::to_string(&kind).unwrap();
        let back: CodeKind = serde_json::from_str(&json).unwrap();
        assert_eq!(kind, back);
    }
}
