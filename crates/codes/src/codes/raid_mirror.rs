//! The `(n, n-1)` RAID+mirroring comparison scheme (§2.1 of the paper).
//!
//! Given `n - 1` data blocks, compute one XOR parity (as in RAID-4/5) and
//! then mirror each of the `n` coded blocks, storing the `2n` copies on `2n`
//! *different* nodes. Unlike the pentagon/heptagon codes, a node stores a
//! single block of the stripe, so RAID+m behaves like plain replication for
//! MapReduce locality — but it needs `2n` nodes per stripe (the *code length*
//! disadvantage highlighted in §3.1).

use std::collections::BTreeSet;

use drc_gf::Matrix;

use crate::layout::{CodeStructure, NodeLayout};
use crate::{CodeError, ErasureCode};

/// The `(n, n-1)` RAID+mirroring code: one XOR parity, every coded block
/// mirrored, one block per node.
///
/// # Example
///
/// ```
/// use drc_codes::{ErasureCode, RaidMirrorCode};
///
/// let raid_m = RaidMirrorCode::new(10).unwrap(); // the paper's (10,9) RAID+m
/// assert_eq!(raid_m.data_blocks(), 9);
/// assert_eq!(raid_m.node_count(), 20);
/// assert!((raid_m.storage_overhead() - 20.0 / 9.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RaidMirrorCode {
    total: usize,
    structure: CodeStructure,
}

impl RaidMirrorCode {
    /// Creates the `(total, total-1)` RAID+m code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `total < 2` or
    /// `total > 128` (which would exceed 256 stored blocks).
    pub fn new(total: usize) -> Result<Self, CodeError> {
        if !(2..=128).contains(&total) {
            return Err(CodeError::InvalidParameters {
                code: format!("({total},{}) RAID+m", total.saturating_sub(1)),
                reason: "RAID+m requires 2 <= total coded blocks <= 128".to_string(),
            });
        }
        let k = total - 1;
        // Distinct block i (0..total) is stored on nodes 2i and 2i+1.
        let per_node: Vec<Vec<usize>> = (0..2 * total).map(|node| vec![node / 2]).collect();
        let layout = NodeLayout::new(per_node)?;
        let parity_row = Matrix::from_rows(&[vec![1u8; k]]).map_err(CodeError::from)?;
        let generator = Matrix::identity(k)
            .stack(&parity_row)
            .map_err(CodeError::from)?;
        let structure = CodeStructure {
            name: format!("({total},{k}) RAID+m"),
            data_blocks: k,
            generator,
            layout,
            rack_groups: vec![(0..2 * total).collect()],
        };
        structure.validate()?;
        Ok(RaidMirrorCode { total, structure })
    }

    /// The paper's `(10,9)` RAID+m code (compared against the pentagon code).
    pub fn raid_10_9() -> Self {
        // drc-lint: allow(panic-hygiene): compile-time-constant parameters,
        // exercised by unit tests; a panic here cannot depend on runtime input.
        RaidMirrorCode::new(10).expect("(10,9) RAID+m parameters are valid")
    }

    /// The paper's `(12,11)` RAID+m code (Table 1).
    pub fn raid_12_11() -> Self {
        // drc-lint: allow(panic-hygiene): compile-time-constant parameters,
        // exercised by unit tests; a panic here cannot depend on runtime input.
        RaidMirrorCode::new(12).expect("(12,11) RAID+m parameters are valid")
    }

    /// Number of distinct coded blocks (data + the single parity).
    pub fn total_coded_blocks(&self) -> usize {
        self.total
    }

    /// Number of distinct blocks whose *both* mirrors live on failed nodes.
    fn fully_lost_count(&self, failed_nodes: &BTreeSet<usize>) -> usize {
        (0..self.total)
            .filter(|&b| failed_nodes.contains(&(2 * b)) && failed_nodes.contains(&(2 * b + 1)))
            .count()
    }
}

impl ErasureCode for RaidMirrorCode {
    fn structure(&self) -> &CodeStructure {
        &self.structure
    }

    fn can_recover(&self, failed_nodes: &BTreeSet<usize>) -> bool {
        // The single XOR parity equation can rebuild at most one block whose
        // both mirrors are gone.
        self.fully_lost_count(failed_nodes) <= 1
    }

    fn fault_tolerance(&self) -> usize {
        // Any 3 node failures destroy at most one mirrored pair; 4 failures
        // can destroy two pairs.
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::TransferPayload;
    use std::collections::BTreeMap;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| (i * 17 + j * 29 + 1) as u8).collect())
            .collect()
    }

    #[test]
    fn constructor_validation() {
        assert!(RaidMirrorCode::new(1).is_err());
        assert!(RaidMirrorCode::new(129).is_err());
        assert!(RaidMirrorCode::new(2).is_ok());
    }

    #[test]
    fn paper_parameters() {
        let c = RaidMirrorCode::raid_10_9();
        assert_eq!(c.name(), "(10,9) RAID+m");
        assert_eq!(c.data_blocks(), 9);
        assert_eq!(c.distinct_blocks(), 10);
        assert_eq!(c.total_coded_blocks(), 10);
        assert_eq!(c.stored_blocks(), 20);
        assert_eq!(c.node_count(), 20);
        assert!((c.storage_overhead() - 2.2222).abs() < 1e-3);

        let c = RaidMirrorCode::raid_12_11();
        assert_eq!(c.name(), "(12,11) RAID+m");
        assert_eq!(c.data_blocks(), 11);
        assert_eq!(c.node_count(), 24);
        assert!((c.storage_overhead() - 24.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn every_node_stores_one_block_and_every_block_has_two_mirrors() {
        let c = RaidMirrorCode::raid_10_9();
        for node in 0..20 {
            assert_eq!(c.node_blocks(node).len(), 1);
        }
        for block in 0..10 {
            assert_eq!(c.block_locations(block), &[2 * block, 2 * block + 1]);
        }
    }

    #[test]
    fn encode_into_matches_encode() {
        let c = RaidMirrorCode::new(10).unwrap();
        let data = sample_data(9, 56);
        let coded = c.encode(&data).unwrap();
        let mut parities = vec![vec![0u8; 56]];
        c.encode_into(&data, &mut parities).unwrap();
        assert_eq!(parities[0], coded[9]);
    }

    #[test]
    fn encode_and_decode_roundtrip() {
        let c = RaidMirrorCode::new(6).unwrap();
        let data = sample_data(5, 40);
        let coded = c.encode(&data).unwrap();
        assert_eq!(coded.len(), 6);
        assert_eq!(coded[5], drc_gf::slice::xor_all(&data));
        // Lose both mirrors of data block 2 plus one mirror of block 4.
        let failed: BTreeSet<usize> = [4, 5, 8].into_iter().collect();
        assert!(c.can_recover(&failed));
        let mut available = BTreeMap::new();
        for node in 0..c.node_count() {
            if failed.contains(&node) {
                continue;
            }
            for &b in c.node_blocks(node) {
                available.insert(b, coded[b].clone());
            }
        }
        assert_eq!(c.decode(&available, 40).unwrap(), data);
    }

    #[test]
    fn tolerance_is_three() {
        let c = RaidMirrorCode::raid_10_9();
        assert_eq!(c.fault_tolerance(), 3);
        // Losing both mirrors of two different blocks is fatal.
        let fatal: BTreeSet<usize> = [0, 1, 2, 3].into_iter().collect();
        assert!(!c.can_recover(&fatal));
        // Losing four mirrors of four different blocks is fine.
        let ok: BTreeSet<usize> = [0, 2, 4, 6].into_iter().collect();
        assert!(c.can_recover(&ok));
    }

    #[test]
    fn single_node_repair_is_one_copy_from_mirror() {
        let c = RaidMirrorCode::raid_10_9();
        let plan = c.repair_plan(&[7].into_iter().collect()).unwrap();
        assert_eq!(plan.network_blocks(), 1);
        assert!(matches!(
            plan.transfers[0].payload,
            TransferPayload::Replica { block: 3 }
        ));
        assert_eq!(c.single_node_repair_blocks(), 1.0);
    }

    #[test]
    fn degraded_read_of_doubly_lost_block_needs_k_blocks() {
        // Paper §3.1: the (10,9) RAID+m code needs 9 blocks of repair
        // bandwidth for an on-the-fly repair, versus 3 for the pentagon.
        let c = RaidMirrorCode::raid_10_9();
        let down: BTreeSet<usize> = [2, 3].into_iter().collect(); // both mirrors of data block 1
        let plan = c.degraded_read_plan(1, &down).unwrap();
        assert_eq!(plan.network_blocks, 9);
        assert!(!plan.is_replica_read());
        // With one mirror alive it is a single remote read.
        let plan = c.degraded_read_plan(1, &[2].into_iter().collect()).unwrap();
        assert_eq!(plan.network_blocks, 1);
    }

    #[test]
    fn mirror_pair_repair_uses_decode() {
        let c = RaidMirrorCode::raid_10_9();
        let failed: BTreeSet<usize> = [2, 3].into_iter().collect();
        let plan = c.repair_plan(&failed).unwrap();
        // 9 fetches to rebuild the lost block + forwarding to the second mirror.
        assert_eq!(plan.fully_lost_blocks, vec![1]);
        assert_eq!(plan.network_blocks(), 10);
    }

    #[test]
    fn fatal_pattern_counts() {
        let c = RaidMirrorCode::new(3).unwrap(); // 6 nodes, blocks {0,1,2}
                                                 // 2 failures: fatal only if they are a mirror pair -> never fatal
                                                 // (one pair lost is still recoverable via parity).
        assert_eq!(c.count_fatal_patterns(2), (0, 15));
        // 4 failures: fatal iff at least two mirror pairs are fully lost.
        // Choosing 2 of the 3 pairs = 3 fatal patterns out of C(6,4)=15.
        assert_eq!(c.count_fatal_patterns(4), (3, 15));
    }
}
