//! Plain block replication (the HDFS default).

use std::collections::BTreeSet;

use drc_gf::Matrix;

use crate::layout::{CodeStructure, NodeLayout};
use crate::{CodeError, ErasureCode};

/// `r`-way replication: each data block is its own stripe, stored verbatim on
/// `r` distinct nodes.
///
/// Hadoop's default is 3-way replication; the paper compares against both
/// 2-way and 3-way replication.
///
/// # Example
///
/// ```
/// use drc_codes::{ErasureCode, ReplicationCode};
///
/// let three_rep = ReplicationCode::new(3).unwrap();
/// assert_eq!(three_rep.data_blocks(), 1);
/// assert_eq!(three_rep.node_count(), 3);
/// assert_eq!(three_rep.storage_overhead(), 3.0);
/// assert_eq!(three_rep.fault_tolerance(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationCode {
    replicas: usize,
    structure: CodeStructure,
}

impl ReplicationCode {
    /// Creates an `r`-way replication code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `replicas` is zero.
    pub fn new(replicas: usize) -> Result<Self, CodeError> {
        if replicas == 0 {
            return Err(CodeError::InvalidParameters {
                code: "replication".to_string(),
                reason: "at least one replica is required".to_string(),
            });
        }
        let structure = CodeStructure {
            name: format!("{replicas}-rep"),
            data_blocks: 1,
            generator: Matrix::identity(1),
            layout: NodeLayout::new(vec![vec![0]; replicas])?,
            rack_groups: vec![(0..replicas).collect()],
        };
        structure.validate()?;
        Ok(ReplicationCode {
            replicas,
            structure,
        })
    }

    /// Number of replicas of each block.
    pub fn replicas(&self) -> usize {
        self.replicas
    }
}

impl ErasureCode for ReplicationCode {
    fn structure(&self) -> &CodeStructure {
        &self.structure
    }

    fn can_recover(&self, failed_nodes: &BTreeSet<usize>) -> bool {
        failed_nodes.iter().filter(|&&n| n < self.replicas).count() < self.replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::TransferPayload;

    #[test]
    fn rejects_zero_replicas() {
        assert!(ReplicationCode::new(0).is_err());
    }

    #[test]
    fn overhead_and_lengths() {
        for r in 1..=4 {
            let code = ReplicationCode::new(r).unwrap();
            assert_eq!(code.replicas(), r);
            assert_eq!(code.data_blocks(), 1);
            assert_eq!(code.distinct_blocks(), 1);
            assert_eq!(code.node_count(), r);
            assert_eq!(code.stored_blocks(), r);
            assert_eq!(code.storage_overhead(), r as f64);
            assert_eq!(code.name(), format!("{r}-rep"));
        }
    }

    #[test]
    fn fault_tolerance_is_replicas_minus_one() {
        assert_eq!(ReplicationCode::new(1).unwrap().fault_tolerance(), 0);
        assert_eq!(ReplicationCode::new(2).unwrap().fault_tolerance(), 1);
        assert_eq!(ReplicationCode::new(3).unwrap().fault_tolerance(), 2);
    }

    #[test]
    fn encode_copies_block() {
        let code = ReplicationCode::new(3).unwrap();
        let data = vec![vec![1u8, 2, 3]];
        let coded = code.encode(&data).unwrap();
        assert_eq!(coded, vec![vec![1u8, 2, 3]]);
        assert!(code.encode(&[vec![1u8], vec![2u8]]).is_err());
    }

    #[test]
    fn single_node_repair_is_one_copy() {
        let code = ReplicationCode::new(3).unwrap();
        let plan = code.repair_plan(&[1].into_iter().collect()).unwrap();
        assert_eq!(plan.network_blocks(), 1);
        assert!(matches!(
            plan.transfers[0].payload,
            TransferPayload::Replica { block: 0 }
        ));
        assert_eq!(code.single_node_repair_blocks(), 1.0);
    }

    #[test]
    fn two_node_repair_of_three_rep() {
        let code = ReplicationCode::new(3).unwrap();
        let plan = code.repair_plan(&[0, 2].into_iter().collect()).unwrap();
        assert_eq!(plan.network_blocks(), 2);
        assert!(plan.fully_lost_blocks.is_empty());
    }

    #[test]
    fn losing_all_replicas_is_fatal() {
        let code = ReplicationCode::new(2).unwrap();
        let all: BTreeSet<usize> = [0, 1].into_iter().collect();
        assert!(!code.can_recover(&all));
        assert!(code.repair_plan(&all).is_err());
        assert!(code.degraded_read_plan(0, &all).is_err());
    }

    #[test]
    fn degraded_read_uses_surviving_replica() {
        let code = ReplicationCode::new(3).unwrap();
        let plan = code
            .degraded_read_plan(0, &[0].into_iter().collect())
            .unwrap();
        assert_eq!(plan.network_blocks, 1);
        assert!(plan.is_replica_read());
    }

    #[test]
    fn fatal_pattern_counts() {
        let code = ReplicationCode::new(3).unwrap();
        assert_eq!(code.count_fatal_patterns(1), (0, 3));
        assert_eq!(code.count_fatal_patterns(2), (0, 3));
        assert_eq!(code.count_fatal_patterns(3), (1, 1));
        assert_eq!(code.count_fatal_patterns(4), (0, 0));
    }
}
