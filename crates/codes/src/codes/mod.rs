//! Concrete coding schemes evaluated by the paper.
//!
//! * [`ReplicationCode`] — plain 2-way / 3-way replication (the Hadoop
//!   default and the paper's baselines),
//! * [`PolygonCode`] — the pentagon (`n = 5`) and heptagon (`n = 7`)
//!   repair-by-transfer MBR codes with inherent double replication,
//! * [`PolygonLocalCode`] — the heptagon-local locally-regenerating code
//!   (two heptagons plus a global-parity node),
//! * [`RaidMirrorCode`] — the `(n, n-1)` RAID+mirroring comparison scheme,
//! * [`RsCode`] — a single-copy systematic Reed–Solomon baseline.

mod local;
mod polygon;
mod raid_mirror;
mod reed_solomon;
mod replication;

pub use local::PolygonLocalCode;
pub use polygon::PolygonCode;
pub use raid_mirror::RaidMirrorCode;
pub use reed_solomon::RsCode;
pub use replication::ReplicationCode;
