//! The pentagon / heptagon family: repair-by-transfer MBR codes with
//! inherent double replication (§2.1 of the paper).
//!
//! For `n` nodes, take the complete graph `K_n` with its `B = n(n-1)/2`
//! edges. The stripe holds `B` distinct blocks — `B - 1` data blocks plus one
//! XOR parity of all the data blocks — one per edge, and every node stores
//! the blocks of the edges incident to it. Each distinct block therefore has
//! exactly two replicas (the two endpoints of its edge), and each node stores
//! `n - 1` blocks of the same stripe (the *array-code* property that causes
//! the locality loss studied in §3.2).
//!
//! The pentagon code is `n = 5` (9 data blocks → 20 stored blocks), the
//! heptagon code is `n = 7` (20 data blocks → 42 stored blocks).

use std::collections::BTreeSet;

use drc_gf::Matrix;

use crate::layout::{CodeStructure, NodeLayout};
use crate::repair::{ReadPlan, ReadSource, RepairPlan, Transfer, TransferPayload};
use crate::traits::{generic_degraded_read_plan, generic_repair_plan};
use crate::{CodeError, ErasureCode};

/// A repair-by-transfer MBR code on the complete graph `K_n`.
///
/// # Example
///
/// ```
/// use drc_codes::{ErasureCode, PolygonCode};
///
/// let pentagon = PolygonCode::pentagon();
/// assert_eq!(pentagon.data_blocks(), 9);
/// assert_eq!(pentagon.stored_blocks(), 20);
/// assert_eq!(pentagon.node_count(), 5);
/// assert_eq!(pentagon.fault_tolerance(), 2);
/// // Two-node repair costs 10 block transfers thanks to partial parities.
/// let plan = pentagon.repair_plan(&[0, 1].into_iter().collect()).unwrap();
/// assert_eq!(plan.network_blocks(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolygonCode {
    n: usize,
    /// `edges[b] = (u, v)` with `u < v`: the edge hosting distinct block `b`.
    edges: Vec<(usize, usize)>,
    structure: CodeStructure,
}

impl PolygonCode {
    /// Creates the `K_n` code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `n < 3` (the construction
    /// needs at least a triangle) or `n` is too large for the block indices
    /// to stay within GF(2^8)-sized matrices used elsewhere (`n > 23`,
    /// i.e. more than 253 distinct blocks).
    pub fn new(n: usize) -> Result<Self, CodeError> {
        if !(3..=23).contains(&n) {
            return Err(CodeError::InvalidParameters {
                code: format!("{n}-gon"),
                reason: "polygon codes require 3 <= n <= 23 nodes".to_string(),
            });
        }
        // Enumerate edges with the parity edge LAST so that distinct blocks
        // 0..k-1 are the data blocks and block k is the XOR parity
        // (keeps the code systematic).
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        // `edges` is lexicographic; the last edge is (n-2, n-1) and hosts the parity.
        let total_blocks = edges.len();
        let k = total_blocks - 1;

        // Layout: node v stores the blocks of edges incident to v.
        let mut per_node = vec![Vec::new(); n];
        for (block, &(u, v)) in edges.iter().enumerate() {
            per_node[u].push(block);
            per_node[v].push(block);
        }
        let layout = NodeLayout::new(per_node)?;

        // Generator: identity for data blocks, all-ones row for the parity.
        let parity_row = Matrix::from_rows(&[vec![1u8; k]]).map_err(CodeError::from)?;
        let generator = Matrix::identity(k)
            .stack(&parity_row)
            .map_err(CodeError::from)?;

        let name = match n {
            5 => "pentagon".to_string(),
            7 => "heptagon".to_string(),
            _ => format!("{n}-gon"),
        };
        let structure = CodeStructure {
            name,
            data_blocks: k,
            generator,
            layout,
            rack_groups: vec![(0..n).collect()],
        };
        structure.validate()?;
        Ok(PolygonCode {
            n,
            edges,
            structure,
        })
    }

    /// The pentagon code: 9 data blocks over 5 nodes (§2.1).
    pub fn pentagon() -> Self {
        // drc-lint: allow(panic-hygiene): compile-time-constant parameters,
        // exercised by unit tests; a panic here cannot depend on runtime input.
        PolygonCode::new(5).expect("pentagon parameters are valid")
    }

    /// The heptagon code: 20 data blocks over 7 nodes (§2.2).
    pub fn heptagon() -> Self {
        // drc-lint: allow(panic-hygiene): compile-time-constant parameters,
        // exercised by unit tests; a panic here cannot depend on runtime input.
        PolygonCode::new(7).expect("heptagon parameters are valid")
    }

    /// The number of graph vertices (= nodes) `n`.
    pub fn vertices(&self) -> usize {
        self.n
    }

    /// The edge `(u, v)` (with `u < v`) hosting distinct block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn edge_of(&self, block: usize) -> (usize, usize) {
        self.edges[block]
    }

    /// The distinct-block index of the XOR parity block.
    pub fn parity_block(&self) -> usize {
        self.edges.len() - 1
    }

    /// Builds the partial-parity transfers that reconstruct the doubly-lost
    /// block on `target_edge = (u, v)` at node `staging`, assuming every node
    /// other than `u` and `v` is alive.
    ///
    /// Every surviving node XORs the subset of its local blocks assigned to
    /// it (each block of the stripe other than the target is assigned to
    /// exactly one surviving holder), so the XOR of all partial parities
    /// equals the lost block — `n - 2` one-block transfers in total.
    fn partial_parity_transfers(
        &self,
        target_edge: (usize, usize),
        target_block: usize,
        staging: usize,
    ) -> Vec<Transfer> {
        let (u, v) = target_edge;
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for (block, &(a, b)) in self.edges.iter().enumerate() {
            if block == target_block {
                continue;
            }
            // Assign the block to one surviving endpoint (prefer the smaller).
            let holder = if a != u && a != v { a } else { b };
            debug_assert!(holder != u && holder != v);
            assigned[holder].push(block);
        }
        assigned
            .iter()
            .enumerate()
            .filter(|(node, blocks)| *node != u && *node != v && !blocks.is_empty())
            .map(|(node, blocks)| Transfer {
                from_node: node,
                to_node: staging,
                payload: TransferPayload::PartialParity {
                    combines: blocks.clone(),
                    target: target_block,
                },
            })
            .collect()
    }
}

impl ErasureCode for PolygonCode {
    fn structure(&self) -> &CodeStructure {
        &self.structure
    }

    fn can_recover(&self, failed_nodes: &BTreeSet<usize>) -> bool {
        // Losing f nodes destroys both replicas of the C(f, 2) edges between
        // them; the single XOR parity equation can reconstruct at most one.
        failed_nodes.iter().filter(|&&x| x < self.n).count() <= 2
    }

    fn fault_tolerance(&self) -> usize {
        2
    }

    fn repair_plan(&self, failed_nodes: &BTreeSet<usize>) -> Result<RepairPlan, CodeError> {
        if failed_nodes.iter().any(|&x| x >= self.n) {
            return Err(CodeError::IndexOutOfRange {
                what: "node",
                index: *failed_nodes
                    .iter()
                    .find(|&&x| x >= self.n)
                    // drc-lint: allow(panic-hygiene): this error arm is only entered when
                    // a failed node >= n exists, so the find cannot come up empty.
                    .expect("checked"),
                limit: self.n,
            });
        }
        match failed_nodes.len() {
            0 => Ok(RepairPlan::default()),
            // Single failure: repair-by-transfer — copy each of the n-1 blocks
            // from the surviving endpoint of its edge.
            1 => generic_repair_plan(self, failed_nodes),
            2 => {
                let mut it = failed_nodes.iter();
                // drc-lint: allow(panic-hygiene): this match arm fires only
                // when failed_nodes.len() == 2.
                let u = *it.next().expect("two failed nodes");
                // drc-lint: allow(panic-hygiene): same len() == 2 match arm.
                let v = *it.next().expect("two failed nodes");
                let layout = &self.structure.layout;
                let mut transfers = Vec::new();
                let mut blocks_to_restore = BTreeSet::new();

                // Blocks with a surviving replica: copy from the live endpoint.
                for &node in failed_nodes {
                    for &block in layout.node_blocks(node) {
                        blocks_to_restore.insert(block);
                        let (a, b) = self.edges[block];
                        let other = if a == node { b } else { a };
                        if failed_nodes.contains(&other) {
                            continue; // the doubly-lost edge (u, v)
                        }
                        transfers.push(Transfer {
                            from_node: other,
                            to_node: node,
                            payload: TransferPayload::Replica { block },
                        });
                    }
                }
                // The doubly-lost block on edge (u, v): rebuild at u from
                // partial parities, then forward the rebuilt block to v.
                let target_block = self
                    .edges
                    .iter()
                    .position(|&e| e == (u.min(v), u.max(v)))
                    // drc-lint: allow(panic-hygiene): the layout enumerates
                    // every edge of K_n, and u, v < n are validated above.
                    .expect("edge (u, v) exists in K_n");
                transfers.extend(self.partial_parity_transfers((u, v), target_block, u));
                transfers.push(Transfer {
                    from_node: u,
                    to_node: v,
                    payload: TransferPayload::Reconstructed {
                        block: target_block,
                    },
                });

                Ok(RepairPlan {
                    failed_nodes: vec![u, v],
                    blocks_to_restore: blocks_to_restore.into_iter().collect(),
                    fully_lost_blocks: vec![target_block],
                    transfers,
                })
            }
            _ => Err(CodeError::Unrecoverable {
                detail: format!(
                    "{} simultaneous node failures exceed the {}-gon's tolerance of 2",
                    failed_nodes.len(),
                    self.n
                ),
            }),
        }
    }

    fn degraded_read_plan(
        &self,
        data_block: usize,
        down_nodes: &BTreeSet<usize>,
    ) -> Result<ReadPlan, CodeError> {
        if data_block >= self.data_blocks() {
            return Err(CodeError::IndexOutOfRange {
                what: "data block",
                index: data_block,
                limit: self.data_blocks(),
            });
        }
        let (u, v) = self.edges[data_block];
        let u_down = down_nodes.contains(&u);
        let v_down = down_nodes.contains(&v);
        if !u_down || !v_down {
            // A replica is still reachable — one remote block.
            let node = if !u_down { u } else { v };
            return Ok(ReadPlan {
                block: data_block,
                source: ReadSource::Remote { node },
                network_blocks: 1,
            });
        }
        // Both replicas down. If every other node of the stripe is alive we
        // can use the partial-parity fast path: n - 2 helper blocks.
        let others_alive = (0..self.n)
            .filter(|x| *x != u && *x != v)
            .all(|x| !down_nodes.contains(&x));
        if others_alive {
            let helpers: Vec<usize> = (0..self.n).filter(|x| *x != u && *x != v).collect();
            return Ok(ReadPlan {
                block: data_block,
                source: ReadSource::PartialParities {
                    helpers: helpers.clone(),
                },
                network_blocks: helpers.len(),
            });
        }
        // More than two nodes down: fall back to the generic path (which will
        // report unrecoverability, since the code only tolerates 2 failures).
        generic_degraded_read_plan(self, data_block, down_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| (i * 41 + j * 13 + 3) as u8).collect())
            .collect()
    }

    #[test]
    fn constructor_validation() {
        assert!(PolygonCode::new(2).is_err());
        assert!(PolygonCode::new(24).is_err());
        assert!(PolygonCode::new(3).is_ok());
        assert!(PolygonCode::new(23).is_ok());
    }

    #[test]
    fn pentagon_parameters_match_paper() {
        let p = PolygonCode::pentagon();
        assert_eq!(p.name(), "pentagon");
        assert_eq!(p.data_blocks(), 9);
        assert_eq!(p.distinct_blocks(), 10);
        assert_eq!(p.stored_blocks(), 20);
        assert_eq!(p.node_count(), 5);
        assert!((p.storage_overhead() - 20.0 / 9.0).abs() < 1e-12);
        // 4 blocks per node, each block replicated exactly twice.
        for node in 0..5 {
            assert_eq!(p.node_blocks(node).len(), 4);
        }
        for block in 0..10 {
            assert_eq!(p.block_locations(block).len(), 2);
        }
    }

    #[test]
    fn heptagon_parameters_match_paper() {
        let h = PolygonCode::heptagon();
        assert_eq!(h.name(), "heptagon");
        assert_eq!(h.data_blocks(), 20);
        assert_eq!(h.distinct_blocks(), 21);
        assert_eq!(h.stored_blocks(), 42);
        assert_eq!(h.node_count(), 7);
        assert!((h.storage_overhead() - 2.1).abs() < 1e-12);
        for node in 0..7 {
            assert_eq!(h.node_blocks(node).len(), 6);
        }
    }

    #[test]
    fn encode_parity_is_xor_of_data() {
        let p = PolygonCode::pentagon();
        let data = sample_data(9, 64);
        let coded = p.encode(&data).unwrap();
        assert_eq!(coded.len(), 10);
        assert_eq!(&coded[..9], data.as_slice());
        assert_eq!(coded[9], drc_gf::slice::xor_all(&data));
    }

    #[test]
    fn encode_into_matches_encode() {
        for poly in [PolygonCode::pentagon(), PolygonCode::heptagon()] {
            let k = poly.data_blocks();
            let data = sample_data(k, 48);
            let coded = poly.encode(&data).unwrap();
            let mut parities = vec![vec![0u8; 48]];
            poly.encode_into(&data, &mut parities).unwrap();
            assert_eq!(parities[0], coded[k], "XOR parity via the fused path");
        }
    }

    #[test]
    fn any_three_nodes_recover_pentagon_data() {
        // The paper: "the contents of any 3 nodes suffice to recover all 9
        // data blocks".
        let p = PolygonCode::pentagon();
        let data = sample_data(9, 32);
        let coded = p.encode(&data).unwrap();
        for a in 0..5usize {
            for b in (a + 1)..5 {
                let failed: BTreeSet<usize> = [a, b].into_iter().collect();
                assert!(p.can_recover(&failed));
                let mut available = BTreeMap::new();
                for node in 0..5 {
                    if failed.contains(&node) {
                        continue;
                    }
                    for &block in p.node_blocks(node) {
                        available.insert(block, coded[block].clone());
                    }
                }
                let decoded = p.decode(&available, 32).unwrap();
                assert_eq!(decoded, data, "failed for erasure {{{a},{b}}}");
            }
        }
    }

    #[test]
    fn three_node_loss_is_fatal() {
        let p = PolygonCode::pentagon();
        let failed: BTreeSet<usize> = [0, 1, 2].into_iter().collect();
        assert!(!p.can_recover(&failed));
        assert!(p.repair_plan(&failed).is_err());
        assert_eq!(p.fault_tolerance(), 2);
        assert_eq!(PolygonCode::heptagon().fault_tolerance(), 2);
    }

    #[test]
    fn single_node_repair_is_repair_by_transfer() {
        let p = PolygonCode::pentagon();
        for node in 0..5 {
            let plan = p.repair_plan(&[node].into_iter().collect()).unwrap();
            // n - 1 = 4 plain copies, no reconstruction needed.
            assert_eq!(plan.network_blocks(), 4);
            assert_eq!(plan.partial_parity_transfers(), 0);
            assert!(plan.fully_lost_blocks.is_empty());
            assert!(plan
                .transfers
                .iter()
                .all(|t| matches!(t.payload, TransferPayload::Replica { .. })));
        }
        assert_eq!(p.single_node_repair_blocks(), 4.0);
        assert_eq!(PolygonCode::heptagon().single_node_repair_blocks(), 6.0);
    }

    #[test]
    fn two_node_repair_bandwidth_matches_paper() {
        // Paper §2.1: repairing two pentagon nodes costs 10 block transfers.
        let p = PolygonCode::pentagon();
        for a in 0..5usize {
            for b in (a + 1)..5 {
                let plan = p.repair_plan(&[a, b].into_iter().collect()).unwrap();
                assert_eq!(plan.network_blocks(), 10, "pair ({a},{b})");
                assert_eq!(plan.partial_parity_transfers(), 3);
                assert_eq!(plan.fully_lost_blocks.len(), 1);
            }
        }
        // Heptagon: 3n - 5 = 16.
        let h = PolygonCode::heptagon();
        let plan = h.repair_plan(&[2, 5].into_iter().collect()).unwrap();
        assert_eq!(plan.network_blocks(), 16);
        assert_eq!(plan.partial_parity_transfers(), 5);
    }

    #[test]
    fn partial_parities_reconstruct_the_lost_block() {
        // Execute the partial-parity plan against real payloads and check the
        // XOR of the helpers' contributions equals the doubly-lost block.
        let p = PolygonCode::pentagon();
        let data = sample_data(9, 16);
        let coded = p.encode(&data).unwrap();
        let plan = p.repair_plan(&[0, 1].into_iter().collect()).unwrap();
        let target = plan.fully_lost_blocks[0];
        let mut acc = vec![0u8; 16];
        for t in &plan.transfers {
            if let TransferPayload::PartialParity {
                combines,
                target: tgt,
            } = &t.payload
            {
                assert_eq!(*tgt, target);
                // The sender must actually host every block it combines.
                for b in combines {
                    assert!(p.node_blocks(t.from_node).contains(b));
                }
                let partial = drc_gf::slice::xor_all(
                    &combines
                        .iter()
                        .map(|&b| coded[b].clone())
                        .collect::<Vec<_>>(),
                );
                drc_gf::slice::xor_assign(&mut acc, &partial);
            }
        }
        assert_eq!(acc, coded[target]);
    }

    #[test]
    fn degraded_read_costs_match_paper() {
        let p = PolygonCode::pentagon();
        // Both replicas of data block 0 (edge (0,1)) down: 3 partial parities.
        let plan = p
            .degraded_read_plan(0, &[0, 1].into_iter().collect())
            .unwrap();
        assert_eq!(plan.network_blocks, 3);
        assert!(
            matches!(plan.source, ReadSource::PartialParities { ref helpers } if helpers.len() == 3)
        );
        // One replica alive: a single remote read.
        let plan = p.degraded_read_plan(0, &[0].into_iter().collect()).unwrap();
        assert_eq!(plan.network_blocks, 1);
        // Heptagon: 5 partial parities.
        let h = PolygonCode::heptagon();
        let plan = h
            .degraded_read_plan(0, &[0, 1].into_iter().collect())
            .unwrap();
        assert_eq!(plan.network_blocks, 5);
    }

    #[test]
    fn degraded_read_with_three_down_nodes_fails() {
        let p = PolygonCode::pentagon();
        assert!(p
            .degraded_read_plan(0, &[0, 1, 2].into_iter().collect())
            .is_err());
    }

    #[test]
    fn invalid_indices_rejected() {
        let p = PolygonCode::pentagon();
        assert!(p.repair_plan(&[7].into_iter().collect()).is_err());
        assert!(p.degraded_read_plan(42, &BTreeSet::new()).is_err());
    }

    #[test]
    fn edge_mapping_consistent_with_layout() {
        let h = PolygonCode::heptagon();
        for block in 0..h.distinct_blocks() {
            let (u, v) = h.edge_of(block);
            assert_eq!(h.block_locations(block), &[u, v]);
        }
        assert_eq!(h.parity_block(), 20);
        assert_eq!(h.edge_of(h.parity_block()), (5, 6));
        assert_eq!(h.vertices(), 7);
    }

    #[test]
    fn fatal_pattern_counts_pentagon() {
        let p = PolygonCode::pentagon();
        assert_eq!(p.count_fatal_patterns(2), (0, 10));
        assert_eq!(p.count_fatal_patterns(3), (10, 10));
    }

    #[test]
    fn empty_failure_set_is_noop_repair() {
        let p = PolygonCode::pentagon();
        let plan = p.repair_plan(&BTreeSet::new()).unwrap();
        assert_eq!(plan.network_blocks(), 0);
    }
}
