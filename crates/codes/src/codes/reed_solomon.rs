//! A single-copy systematic Reed–Solomon code, as used by HDFS-RAID for cold
//! data (the paper's introduction) and as a general reference point.

use drc_gf::ReedSolomon;

use crate::layout::{CodeStructure, NodeLayout};
use crate::{CodeError, ErasureCode};

/// A `(k + m, k)` systematic Reed–Solomon code storing one block per node
/// with no replication.
///
/// This is the kind of code Facebook's HDFS-RAID applies to cold data: it has
/// the lowest storage overhead of all schemes considered, but no block has a
/// second replica, so every map task on a node other than the block holder is
/// remote and every degraded read is a `k`-block reconstruction.
///
/// # Example
///
/// ```
/// use drc_codes::{ErasureCode, RsCode};
///
/// let rs = RsCode::new(10, 4).unwrap(); // the RS(10,4) used in HDFS-RAID
/// assert_eq!(rs.node_count(), 14);
/// assert_eq!(rs.fault_tolerance(), 4);
/// assert!((rs.storage_overhead() - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RsCode {
    codec: ReedSolomon,
    structure: CodeStructure,
}

impl RsCode {
    /// Creates a Reed–Solomon code with `data` data blocks and `parity`
    /// parity blocks per stripe.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if the parameters are not
    /// accepted by the underlying codec (zero counts or more than 256 total
    /// shards).
    pub fn new(data: usize, parity: usize) -> Result<Self, CodeError> {
        let codec = ReedSolomon::new(data, parity).map_err(|e| CodeError::InvalidParameters {
            code: format!("RS({data},{parity})"),
            reason: e.to_string(),
        })?;
        let total = data + parity;
        let layout = NodeLayout::new((0..total).map(|b| vec![b]).collect())?;
        let structure = CodeStructure {
            name: format!("RS({data},{parity})"),
            data_blocks: data,
            generator: codec.generator().clone(),
            layout,
            rack_groups: vec![(0..total).collect()],
        };
        structure.validate()?;
        Ok(RsCode { codec, structure })
    }

    /// Access to the underlying Reed–Solomon codec.
    pub fn codec(&self) -> &ReedSolomon {
        &self.codec
    }
}

impl ErasureCode for RsCode {
    fn structure(&self) -> &CodeStructure {
        &self.structure
    }

    fn encode_into(&self, data: &[Vec<u8>], parities: &mut [Vec<u8>]) -> Result<(), CodeError> {
        // Delegate straight to the codec's fused zero-allocation path (the
        // RS layout stores exactly one distinct block per node, so the
        // codes-level parities are the codec's parity shards verbatim).
        self.codec
            .encode_into(data, parities)
            .map_err(CodeError::from)
    }

    fn can_recover(&self, failed_nodes: &std::collections::BTreeSet<usize>) -> bool {
        failed_nodes
            .iter()
            .filter(|&&n| n < self.node_count())
            .count()
            <= self.codec.parity_shards()
    }

    fn fault_tolerance(&self) -> usize {
        self.codec.parity_shards()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn constructor_validation() {
        assert!(RsCode::new(0, 4).is_err());
        assert!(RsCode::new(4, 0).is_err());
        assert!(RsCode::new(10, 4).is_ok());
    }

    #[test]
    fn structure_matches_codec() {
        let rs = RsCode::new(10, 4).unwrap();
        assert_eq!(rs.name(), "RS(10,4)");
        assert_eq!(rs.data_blocks(), 10);
        assert_eq!(rs.distinct_blocks(), 14);
        assert_eq!(rs.stored_blocks(), 14);
        assert_eq!(rs.node_count(), 14);
        assert_eq!(rs.codec().parity_shards(), 4);
        for b in 0..14 {
            assert_eq!(rs.block_locations(b), &[b]);
        }
    }

    #[test]
    fn encode_decode_roundtrip_with_losses() {
        let rs = RsCode::new(6, 3).unwrap();
        let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8 + 1; 20]).collect();
        let coded = rs.encode(&data).unwrap();
        assert_eq!(coded.len(), 9);
        let failed: BTreeSet<usize> = [0, 4, 8].into_iter().collect();
        assert!(rs.can_recover(&failed));
        let available: BTreeMap<usize, Vec<u8>> = (0..9)
            .filter(|b| !failed.contains(b))
            .map(|b| (b, coded[b].clone()))
            .collect();
        assert_eq!(rs.decode(&available, 20).unwrap(), data);
        let too_many: BTreeSet<usize> = [0, 1, 2, 3].into_iter().collect();
        assert!(!rs.can_recover(&too_many));
    }

    #[test]
    fn encode_into_matches_encode() {
        let rs = RsCode::new(6, 3).unwrap();
        let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8 * 3 + 1; 33]).collect();
        let full = rs.encode(&data).unwrap();
        let mut parities = vec![vec![0u8; 33]; 3];
        rs.encode_into(&data, &mut parities).unwrap();
        assert_eq!(parities.as_slice(), &full[6..]);
        // Wrong parity buffer count is rejected.
        let mut short = vec![vec![0u8; 33]; 2];
        assert!(rs.encode_into(&data, &mut short).is_err());
    }

    #[test]
    fn degraded_read_needs_k_blocks_when_holder_down() {
        let rs = RsCode::new(10, 4).unwrap();
        let plan = rs
            .degraded_read_plan(3, &[3].into_iter().collect())
            .unwrap();
        assert_eq!(plan.network_blocks, 10);
        let plan = rs.degraded_read_plan(3, &BTreeSet::new()).unwrap();
        assert_eq!(plan.network_blocks, 1);
    }

    #[test]
    fn single_node_repair_costs_k_blocks() {
        // The well-known repair-bandwidth penalty of Reed-Solomon codes.
        let rs = RsCode::new(10, 4).unwrap();
        let plan = rs.repair_plan(&[2].into_iter().collect()).unwrap();
        assert_eq!(plan.network_blocks(), 10);
        assert_eq!(rs.single_node_repair_blocks(), 10.0);
    }

    #[test]
    fn tolerance_matches_parity_count() {
        assert_eq!(RsCode::new(10, 4).unwrap().fault_tolerance(), 4);
        assert_eq!(RsCode::new(9, 1).unwrap().fault_tolerance(), 1);
    }
}
