//! The heptagon-local code: a locally regenerating code built from two
//! disjoint heptagon codes plus a global-parity node (§2.2 of the paper).
//!
//! Forty data blocks are split into two sets of twenty, each encoded by its
//! own heptagon ("local") code on seven nodes. Two additional *global parity*
//! blocks — Galois-field linear combinations of all forty data blocks, as in
//! RAID-6 — are stored on a fifteenth node. One or two failures inside a
//! heptagon are repaired locally; any pattern of three node failures is
//! survivable using the global parities. In a rack-aware deployment the two
//! heptagons and the global-parity node live in three different racks.

use std::collections::BTreeSet;

use drc_gf::{Gf256, Matrix};

use crate::codes::PolygonCode;
use crate::layout::{CodeStructure, NodeLayout};
use crate::repair::{ReadPlan, ReadSource, RepairPlan, Transfer, TransferPayload};
use crate::traits::{generic_degraded_read_plan, generic_repair_plan};
use crate::{CodeError, ErasureCode};

/// A locally regenerating code: two `K_n` local codes plus a global-parity
/// node.
///
/// `PolygonLocalCode::heptagon_local()` is the paper's heptagon-local code;
/// the construction is generic over the local polygon size and the number of
/// global parities, so smaller instances can be used in tests and
/// experiments.
///
/// # Example
///
/// ```
/// use drc_codes::{ErasureCode, PolygonLocalCode};
///
/// let hl = PolygonLocalCode::heptagon_local();
/// assert_eq!(hl.data_blocks(), 40);
/// assert_eq!(hl.stored_blocks(), 86);
/// assert_eq!(hl.node_count(), 15);
/// assert_eq!(hl.fault_tolerance(), 3);
/// assert!((hl.storage_overhead() - 2.15).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolygonLocalCode {
    local: PolygonCode,
    num_globals: usize,
    structure: CodeStructure,
}

impl PolygonLocalCode {
    /// Creates a local code from two `K_local_n` polygons and `global_parities`
    /// global parity blocks on one extra node.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if the polygon size is invalid,
    /// `global_parities` is zero, or the total data block count exceeds 255
    /// (the global-parity coefficient construction runs out of distinct
    /// non-zero field elements).
    pub fn new(local_n: usize, global_parities: usize) -> Result<Self, CodeError> {
        let local = PolygonCode::new(local_n)?;
        let k_local = local.data_blocks();
        let k = 2 * k_local;
        if global_parities == 0 {
            return Err(CodeError::InvalidParameters {
                code: format!("{local_n}-gon-local"),
                reason: "at least one global parity is required".to_string(),
            });
        }
        if k > 255 {
            return Err(CodeError::InvalidParameters {
                code: format!("{local_n}-gon-local"),
                reason: "too many data blocks for GF(2^8) global parities".to_string(),
            });
        }

        // Distinct-block numbering:
        //   0 .. k_local-1          data of local 0
        //   k_local .. 2k_local-1   data of local 1
        //   2k_local                local XOR parity of local 0
        //   2k_local + 1            local XOR parity of local 1
        //   2k_local + 2 ..         global parities
        let local_parity_base = k;
        let global_base = k + 2;

        // Node layout: local-0 nodes, local-1 nodes, then the global node.
        let n_local_nodes = local.node_count();
        let mut per_node: Vec<Vec<usize>> = Vec::with_capacity(2 * n_local_nodes + 1);
        for instance in 0..2usize {
            for node in 0..n_local_nodes {
                let blocks = local
                    .node_blocks(node)
                    .iter()
                    .map(|&b| Self::map_local_block(b, instance, k_local, local_parity_base))
                    .collect();
                per_node.push(blocks);
            }
        }
        per_node.push((0..global_parities).map(|g| global_base + g).collect());
        let layout = NodeLayout::new(per_node)?;

        // Generator matrix.
        let mut rows: Vec<Vec<u8>> = Vec::with_capacity(k + 2 + global_parities);
        for i in 0..k {
            let mut row = vec![0u8; k];
            row[i] = 1;
            rows.push(row);
        }
        for instance in 0..2usize {
            let mut row = vec![0u8; k];
            for j in 0..k_local {
                row[instance * k_local + j] = 1;
            }
            rows.push(row);
        }
        // Global parity g has coefficient gamma_j^(g+1) on data block j, with
        // gamma_j = j + 1 distinct and non-zero. Together with the all-ones
        // local parity rows this is the classic Vandermonde-style RAID-6
        // construction, which guarantees that any three erased blocks within
        // one local group can be solved for.
        for g in 0..global_parities {
            let row: Vec<u8> = (0..k)
                .map(|j| Gf256::new((j + 1) as u8).pow(g as u32 + 1).value())
                .collect();
            rows.push(row);
        }
        let generator = Matrix::from_rows(&rows).map_err(CodeError::from)?;

        let name = match (local_n, global_parities) {
            (7, 2) => "heptagon-local".to_string(),
            (5, 2) => "pentagon-local".to_string(),
            _ => format!("{local_n}-gon-local({global_parities})"),
        };
        let rack_groups = vec![
            (0..n_local_nodes).collect(),
            (n_local_nodes..2 * n_local_nodes).collect(),
            vec![2 * n_local_nodes],
        ];
        let structure = CodeStructure {
            name,
            data_blocks: k,
            generator,
            layout,
            rack_groups,
        };
        structure.validate()?;
        Ok(PolygonLocalCode {
            local,
            num_globals: global_parities,
            structure,
        })
    }

    /// The paper's heptagon-local code: two heptagons plus two global
    /// parities on a fifteenth node.
    pub fn heptagon_local() -> Self {
        // drc-lint: allow(panic-hygiene): compile-time-constant parameters,
        // exercised by unit tests; a panic here cannot depend on runtime input.
        PolygonLocalCode::new(7, 2).expect("heptagon-local parameters are valid")
    }

    /// The underlying local (polygon) code.
    pub fn local_code(&self) -> &PolygonCode {
        &self.local
    }

    /// Number of global parity blocks.
    pub fn global_parities(&self) -> usize {
        self.num_globals
    }

    /// The stripe-local index of the global-parity node.
    pub fn global_node(&self) -> usize {
        2 * self.local.node_count()
    }

    /// The stripe-local node range `[start, end)` of local instance `0` or `1`.
    ///
    /// # Panics
    ///
    /// Panics if `instance > 1`.
    pub fn local_nodes(&self, instance: usize) -> std::ops::Range<usize> {
        assert!(instance < 2, "local instance must be 0 or 1");
        let n = self.local.node_count();
        instance * n..(instance + 1) * n
    }

    fn map_local_block(
        local_block: usize,
        instance: usize,
        k_local: usize,
        local_parity_base: usize,
    ) -> usize {
        if local_block < k_local {
            instance * k_local + local_block
        } else {
            local_parity_base + instance
        }
    }

    /// Maps a global distinct-block index back to `(instance, local block)`,
    /// or `None` for global parity blocks.
    fn unmap_block(&self, block: usize) -> Option<(usize, usize)> {
        let k_local = self.local.data_blocks();
        let k = 2 * k_local;
        if block < k {
            Some((block / k_local, block % k_local))
        } else if block < k + 2 {
            Some((block - k, self.local.parity_block()))
        } else {
            None
        }
    }

    /// Failure counts per region: `(local 0, local 1, global node)`.
    fn failure_split(&self, failed_nodes: &BTreeSet<usize>) -> (usize, usize, usize) {
        let n = self.local.node_count();
        let mut f = (0usize, 0usize, 0usize);
        for &node in failed_nodes {
            if node < n {
                f.0 += 1;
            } else if node < 2 * n {
                f.1 += 1;
            } else if node == 2 * n {
                f.2 += 1;
            }
        }
        f
    }

    /// Translates a repair plan produced by the local polygon code for
    /// `instance` into stripe-global node and block indices.
    fn lift_local_plan(&self, plan: RepairPlan, instance: usize) -> RepairPlan {
        let k_local = self.local.data_blocks();
        let base = instance * self.local.node_count();
        let parity_base = 2 * k_local;
        let map_block = |b: usize| Self::map_local_block(b, instance, k_local, parity_base);
        RepairPlan {
            failed_nodes: plan.failed_nodes.iter().map(|&n| n + base).collect(),
            blocks_to_restore: plan
                .blocks_to_restore
                .iter()
                .map(|&b| map_block(b))
                .collect(),
            fully_lost_blocks: plan
                .fully_lost_blocks
                .iter()
                .map(|&b| map_block(b))
                .collect(),
            transfers: plan
                .transfers
                .into_iter()
                .map(|t| Transfer {
                    from_node: t.from_node + base,
                    to_node: t.to_node + base,
                    payload: match t.payload {
                        TransferPayload::Replica { block } => TransferPayload::Replica {
                            block: map_block(block),
                        },
                        TransferPayload::Reconstructed { block } => {
                            TransferPayload::Reconstructed {
                                block: map_block(block),
                            }
                        }
                        TransferPayload::PartialParity { combines, target } => {
                            TransferPayload::PartialParity {
                                combines: combines.into_iter().map(map_block).collect(),
                                target: map_block(target),
                            }
                        }
                    },
                })
                .collect(),
        }
    }

    /// Transfers that recompute the global parity blocks on a replacement
    /// global node using per-node partial weighted sums ("combine functions").
    fn global_parity_rebuild_transfers(&self, failed_nodes: &BTreeSet<usize>) -> Vec<Transfer> {
        let k = self.data_blocks();
        let k_local = self.local.data_blocks();
        let global_node = self.global_node();
        let layout = &self.structure.layout;
        // Assign every data block to one host (prefer a live one; a fully
        // lost block is assigned to its first failed host, which will have
        // been repaired by the local plan before this step runs).
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); self.node_count()];
        for block in 0..k {
            let hosts = layout.block_locations(block);
            let host = hosts
                .iter()
                .find(|n| !failed_nodes.contains(n))
                .or_else(|| hosts.first())
                .copied()
                // drc-lint: allow(panic-hygiene): `or_else(hosts.first())` makes the chain
                // total for any block stored at all, which NodeLayout::new guarantees.
                .expect("every data block has a host");
            assigned[host].push(block);
        }
        let mut transfers = Vec::new();
        for g in 0..self.num_globals {
            let target = 2 * k_local + 2 + g;
            for (node, blocks) in assigned.iter().enumerate() {
                if blocks.is_empty() || node == global_node {
                    continue;
                }
                transfers.push(Transfer {
                    from_node: node,
                    to_node: global_node,
                    payload: TransferPayload::PartialParity {
                        combines: blocks.clone(),
                        target,
                    },
                });
            }
        }
        transfers
    }
}

impl ErasureCode for PolygonLocalCode {
    fn structure(&self) -> &CodeStructure {
        &self.structure
    }

    fn can_recover(&self, failed_nodes: &BTreeSet<usize>) -> bool {
        if failed_nodes.iter().any(|&n| n >= self.node_count()) {
            // Out-of-range nodes cannot hold stripe data; ignore them.
            let filtered: BTreeSet<usize> = failed_nodes
                .iter()
                .copied()
                .filter(|&n| n < self.node_count())
                .collect();
            return self.can_recover(&filtered);
        }
        let (f1, f2, f3) = self.failure_split(failed_nodes);
        if f1 <= 2 && f2 <= 2 {
            // Each local group repairs itself; global parities can always be
            // recomputed from the data.
            return true;
        }
        // Exactly three failures inside one local group need the global
        // parities (global node alive) and the other local group decodable.
        ((f1 == 3 && f2 <= 2) || (f2 == 3 && f1 <= 2)) && f3 == 0
    }

    fn fault_tolerance(&self) -> usize {
        3
    }

    fn repair_plan(&self, failed_nodes: &BTreeSet<usize>) -> Result<RepairPlan, CodeError> {
        if let Some(&bad) = failed_nodes.iter().find(|&&n| n >= self.node_count()) {
            return Err(CodeError::IndexOutOfRange {
                what: "node",
                index: bad,
                limit: self.node_count(),
            });
        }
        if !self.can_recover(failed_nodes) {
            return Err(CodeError::Unrecoverable {
                detail: format!("failure pattern {failed_nodes:?} exceeds the code's tolerance"),
            });
        }
        let (f1, f2, f3) = self.failure_split(failed_nodes);
        // Three failures inside one local group: fall back to a full decode
        // (the generic plan); the common cases are handled locally below.
        if f1 > 2 || f2 > 2 {
            return generic_repair_plan(self, failed_nodes);
        }

        let n_local = self.local.node_count();
        let mut plan = RepairPlan {
            failed_nodes: failed_nodes.iter().copied().collect(),
            ..RepairPlan::default()
        };
        for instance in 0..2usize {
            let local_failed: BTreeSet<usize> = failed_nodes
                .iter()
                .filter(|&&n| self.local_nodes(instance).contains(&n))
                .map(|&n| n - instance * n_local)
                .collect();
            if local_failed.is_empty() {
                continue;
            }
            let local_plan = self.local.repair_plan(&local_failed)?;
            let lifted = self.lift_local_plan(local_plan, instance);
            plan.blocks_to_restore.extend(lifted.blocks_to_restore);
            plan.fully_lost_blocks.extend(lifted.fully_lost_blocks);
            plan.transfers.extend(lifted.transfers);
        }
        if f3 == 1 {
            let k_local = self.local.data_blocks();
            plan.blocks_to_restore
                .extend((0..self.num_globals).map(|g| 2 * k_local + 2 + g));
            plan.fully_lost_blocks
                .extend((0..self.num_globals).map(|g| 2 * k_local + 2 + g));
            plan.transfers
                .extend(self.global_parity_rebuild_transfers(failed_nodes));
        }
        plan.blocks_to_restore.sort_unstable();
        plan.blocks_to_restore.dedup();
        plan.fully_lost_blocks.sort_unstable();
        plan.fully_lost_blocks.dedup();
        Ok(plan)
    }

    fn degraded_read_plan(
        &self,
        data_block: usize,
        down_nodes: &BTreeSet<usize>,
    ) -> Result<ReadPlan, CodeError> {
        if data_block >= self.data_blocks() {
            return Err(CodeError::IndexOutOfRange {
                what: "data block",
                index: data_block,
                limit: self.data_blocks(),
            });
        }
        let (instance, local_block) = self.unmap_block(data_block).ok_or(
            // Unreachable after the bounds check above, but typed: a broken
            // block mapping surfaces as the same out-of-range error.
            CodeError::IndexOutOfRange {
                what: "data block",
                index: data_block,
                limit: self.data_blocks(),
            },
        )?;
        let base = instance * self.local.node_count();
        let hosts = self.structure.layout.block_locations(data_block);
        if let Some(&alive) = hosts.iter().find(|n| !down_nodes.contains(n)) {
            return Ok(ReadPlan {
                block: data_block,
                source: ReadSource::Remote { node: alive },
                network_blocks: 1,
            });
        }
        // Both replicas down. If the rest of this local group is alive, use
        // the local partial-parity path (exactly as the plain heptagon would).
        let local_down: BTreeSet<usize> = down_nodes
            .iter()
            .filter(|&&n| self.local_nodes(instance).contains(&n))
            .map(|&n| n - base)
            .collect();
        if local_down.len() == 2 {
            if let Ok(local_plan) = self.local.degraded_read_plan(local_block, &local_down) {
                if let ReadSource::PartialParities { helpers } = local_plan.source {
                    let helpers: Vec<usize> = helpers.into_iter().map(|h| h + base).collect();
                    return Ok(ReadPlan {
                        block: data_block,
                        source: ReadSource::PartialParities {
                            helpers: helpers.clone(),
                        },
                        network_blocks: helpers.len(),
                    });
                }
            }
        }
        // Otherwise (three failures in the group, etc.) fall back to a full
        // decode using whatever survives, including the global parities.
        generic_degraded_read_plan(self, data_block, down_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| (i * 23 + j * 7 + 11) as u8).collect())
            .collect()
    }

    #[test]
    fn constructor_validation() {
        assert!(PolygonLocalCode::new(7, 0).is_err());
        assert!(PolygonLocalCode::new(2, 2).is_err());
        assert!(PolygonLocalCode::new(5, 2).is_ok());
        // 23-gon local would have 2*252 = 504 data blocks > 255.
        assert!(PolygonLocalCode::new(23, 2).is_err());
    }

    #[test]
    fn heptagon_local_parameters_match_paper() {
        let hl = PolygonLocalCode::heptagon_local();
        assert_eq!(hl.name(), "heptagon-local");
        assert_eq!(hl.data_blocks(), 40);
        assert_eq!(hl.distinct_blocks(), 44);
        assert_eq!(hl.stored_blocks(), 86);
        assert_eq!(hl.node_count(), 15);
        assert!((hl.storage_overhead() - 2.15).abs() < 1e-12);
        assert_eq!(hl.global_parities(), 2);
        assert_eq!(hl.global_node(), 14);
        assert_eq!(hl.local_nodes(0), 0..7);
        assert_eq!(hl.local_nodes(1), 7..14);
        // Three rack groups: the two heptagons and the global node.
        assert_eq!(hl.rack_groups().len(), 3);
        // Each heptagon node stores 6 blocks; the global node stores 2.
        for node in 0..14 {
            assert_eq!(hl.node_blocks(node).len(), 6);
        }
        assert_eq!(hl.node_blocks(14).len(), 2);
    }

    #[test]
    fn encode_structure() {
        let hl = PolygonLocalCode::heptagon_local();
        let data = sample_data(40, 8);
        let coded = hl.encode(&data).unwrap();
        assert_eq!(coded.len(), 44);
        // Local parities are XORs of their half of the data.
        assert_eq!(coded[40], drc_gf::slice::xor_all(&data[..20]));
        assert_eq!(coded[41], drc_gf::slice::xor_all(&data[20..]));
        // Global parities differ from each other and from the local parities.
        assert_ne!(coded[42], coded[43]);
    }

    #[test]
    fn any_three_node_failures_recoverable() {
        // The defining property from §2.2: "The heptagon-local code can
        // recover from any pattern of 3 node erasures."
        let hl = PolygonLocalCode::heptagon_local();
        let n = hl.node_count();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let failed: BTreeSet<usize> = [a, b, c].into_iter().collect();
                    assert!(
                        hl.can_recover(&failed),
                        "pattern {{{a},{b},{c}}} must be recoverable"
                    );
                    // Cross-check the combinatorial shortcut against the
                    // generic rank computation.
                    let surviving = hl.structure().layout.surviving_blocks(&failed);
                    assert!(
                        hl.structure().recoverable_from_blocks(&surviving),
                        "rank check disagrees for {{{a},{b},{c}}}"
                    );
                }
            }
        }
        assert_eq!(hl.fault_tolerance(), 3);
    }

    #[test]
    fn can_recover_matches_rank_for_four_failures() {
        let hl = PolygonLocalCode::heptagon_local();
        let n = hl.node_count();
        // Sample a deterministic subset of 4-node patterns and compare the
        // combinatorial rule with the rank-based ground truth.
        let mut checked = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    for d in (c + 1)..n {
                        if (a + 2 * b + 3 * c + 5 * d) % 7 != 0 {
                            continue;
                        }
                        let failed: BTreeSet<usize> = [a, b, c, d].into_iter().collect();
                        let surviving = hl.structure().layout.surviving_blocks(&failed);
                        assert_eq!(
                            hl.can_recover(&failed),
                            hl.structure().recoverable_from_blocks(&surviving),
                            "mismatch for {{{a},{b},{c},{d}}}"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 100, "expected to check a meaningful sample");
    }

    #[test]
    fn four_failures_in_one_heptagon_are_fatal() {
        let hl = PolygonLocalCode::heptagon_local();
        let failed: BTreeSet<usize> = [0, 1, 2, 3].into_iter().collect();
        assert!(!hl.can_recover(&failed));
        assert!(hl.repair_plan(&failed).is_err());
        // Three in one heptagon plus the global node is also fatal.
        let failed: BTreeSet<usize> = [0, 1, 2, 14].into_iter().collect();
        assert!(!hl.can_recover(&failed));
    }

    #[test]
    fn decode_with_three_failures_in_one_heptagon() {
        let hl = PolygonLocalCode::heptagon_local();
        let data = sample_data(40, 16);
        let coded = hl.encode(&data).unwrap();
        for failed_set in [[0usize, 1, 2], [4, 5, 6], [7, 8, 13]] {
            let failed: BTreeSet<usize> = failed_set.into_iter().collect();
            let mut available = BTreeMap::new();
            for node in 0..hl.node_count() {
                if failed.contains(&node) {
                    continue;
                }
                for &b in hl.node_blocks(node) {
                    available.insert(b, coded[b].clone());
                }
            }
            let decoded = hl.decode(&available, 16).unwrap();
            assert_eq!(decoded, data, "decode failed for {failed_set:?}");
        }
    }

    #[test]
    fn local_failures_repair_locally() {
        let hl = PolygonLocalCode::heptagon_local();
        // One failure in heptagon 0: repair-by-transfer of 6 blocks, all from
        // within the same heptagon.
        let plan = hl.repair_plan(&[3].into_iter().collect()).unwrap();
        assert_eq!(plan.network_blocks(), 6);
        assert!(plan.transfers.iter().all(|t| (0..7).contains(&t.from_node)));
        // Two failures in heptagon 1: same cost as the plain heptagon (16).
        let plan = hl.repair_plan(&[8, 12].into_iter().collect()).unwrap();
        assert_eq!(plan.network_blocks(), 16);
        assert!(plan
            .transfers
            .iter()
            .all(|t| (7..14).contains(&t.from_node) || (7..14).contains(&t.to_node)));
        // Failures in both heptagons are handled independently.
        let plan = hl.repair_plan(&[0, 9].into_iter().collect()).unwrap();
        assert_eq!(plan.network_blocks(), 12);
    }

    #[test]
    fn global_node_repair_uses_partial_sums() {
        let hl = PolygonLocalCode::heptagon_local();
        let plan = hl.repair_plan(&[14].into_iter().collect()).unwrap();
        // Every transfer is a partial weighted sum destined for the global node.
        assert!(
            plan.transfers
                .iter()
                .all(|t| t.to_node == 14
                    && matches!(t.payload, TransferPayload::PartialParity { .. }))
        );
        // Each contributing node sends one partial weighted sum per global
        // parity; the total stays well below the 40 blocks a naive re-encode
        // would move.
        assert!(plan.network_blocks() < 40);
        assert_eq!(plan.network_blocks() % 2, 0);
        assert_eq!(plan.fully_lost_blocks, vec![42, 43]);
    }

    #[test]
    fn encode_into_matches_encode() {
        let hl = PolygonLocalCode::heptagon_local();
        let data = sample_data(40, 64);
        let coded = hl.encode(&data).unwrap();
        let m = hl.distinct_blocks() - hl.data_blocks();
        let mut parities = vec![vec![0u8; 64]; m];
        hl.encode_into(&data, &mut parities).unwrap();
        assert_eq!(parities.as_slice(), &coded[40..]);
    }

    #[test]
    fn global_parity_partial_sums_combine_to_the_parity_block() {
        // Execute the §2.2 combine functions: each helper node of a
        // global-node repair sends a GF-weighted partial sum; XOR-ing all of
        // them must reproduce the global parity block exactly.
        let hl = PolygonLocalCode::heptagon_local();
        let data = sample_data(40, 32);
        let coded = hl.encode(&data).unwrap();
        let plan = hl
            .repair_plan(&[hl.global_node()].into_iter().collect())
            .unwrap();
        for g in 0..hl.global_parities() {
            let target = 42 + g;
            let row = hl.structure().generator.row(target);
            let mut rebuilt = vec![0u8; 32];
            let mut partial = vec![0u8; 32];
            for t in &plan.transfers {
                let crate::repair::TransferPayload::PartialParity {
                    combines,
                    target: t_block,
                } = &t.payload
                else {
                    panic!("global-node repair sends only partial parities");
                };
                if *t_block != target {
                    continue;
                }
                let payloads: Vec<&[u8]> = combines.iter().map(|&b| coded[b].as_slice()).collect();
                crate::repair::combine_partial_parity_into(row, combines, &payloads, &mut partial);
                drc_gf::slice::xor_assign(&mut rebuilt, &partial);
            }
            assert_eq!(
                rebuilt, coded[target],
                "global parity {g} rebuilt from partial sums"
            );
        }
    }

    #[test]
    fn three_failures_in_one_heptagon_repairable_via_global_parities() {
        let hl = PolygonLocalCode::heptagon_local();
        let failed: BTreeSet<usize> = [0, 1, 2].into_iter().collect();
        let plan = hl.repair_plan(&failed).unwrap();
        // The plan must restore every block stored on the failed nodes.
        let mut needed: BTreeSet<usize> = BTreeSet::new();
        for &node in &failed {
            needed.extend(hl.node_blocks(node).iter().copied());
        }
        let restored: BTreeSet<usize> = plan.blocks_to_restore.iter().copied().collect();
        assert!(needed.is_subset(&restored));
        assert!(plan.network_blocks() > 0);
    }

    #[test]
    fn degraded_read_plans() {
        let hl = PolygonLocalCode::heptagon_local();
        // Data block 25 lives in heptagon 1; find its two hosts.
        let hosts: Vec<usize> = hl.block_locations(25).to_vec();
        assert_eq!(hosts.len(), 2);
        assert!(hosts.iter().all(|&h| (7..14).contains(&h)));
        // One host down: remote replica read.
        let plan = hl
            .degraded_read_plan(25, &[hosts[0]].into_iter().collect())
            .unwrap();
        assert_eq!(plan.network_blocks, 1);
        // Both hosts down: 5 partial parities from the rest of the heptagon.
        let plan = hl
            .degraded_read_plan(25, &hosts.iter().copied().collect())
            .unwrap();
        assert_eq!(plan.network_blocks, 5);
        assert!(matches!(plan.source, ReadSource::PartialParities { .. }));
        // Three nodes of the heptagon down (including both hosts): full decode.
        let mut down: BTreeSet<usize> = hosts.iter().copied().collect();
        let extra = (7..14).find(|n| !down.contains(n)).unwrap();
        down.insert(extra);
        let plan = hl.degraded_read_plan(25, &down).unwrap();
        assert!(matches!(plan.source, ReadSource::Decode { .. }));
        assert!(plan.network_blocks >= 20);
    }

    #[test]
    fn out_of_range_inputs_rejected() {
        let hl = PolygonLocalCode::heptagon_local();
        assert!(hl.repair_plan(&[15].into_iter().collect()).is_err());
        assert!(hl.degraded_read_plan(40, &BTreeSet::new()).is_err());
    }

    #[test]
    fn smaller_instance_pentagon_local() {
        let pl = PolygonLocalCode::new(5, 2).unwrap();
        assert_eq!(pl.name(), "pentagon-local");
        assert_eq!(pl.data_blocks(), 18);
        assert_eq!(pl.node_count(), 11);
        assert_eq!(pl.fault_tolerance(), 3);
        let data = sample_data(18, 8);
        let coded = pl.encode(&data).unwrap();
        let failed: BTreeSet<usize> = [0, 1, 2].into_iter().collect();
        let mut available = BTreeMap::new();
        for node in 0..pl.node_count() {
            if failed.contains(&node) {
                continue;
            }
            for &b in pl.node_blocks(node) {
                available.insert(b, coded[b].clone());
            }
        }
        assert_eq!(pl.decode(&available, 8).unwrap(), data);
    }
}
