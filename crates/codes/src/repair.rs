//! Repair and degraded-read planning.
//!
//! The plans produced here are *descriptions* of the network activity needed
//! to recover lost blocks — which node sends what, whether a node first
//! combines several of its local blocks into a *partial parity* (the key
//! bandwidth-saving trick of the pentagon/heptagon array codes, §2.1 of the
//! paper) — plus the resulting total repair bandwidth in block units. The
//! simulated HDFS layer executes these plans against real block payloads, and
//! the reliability model uses their bandwidth to derive repair times.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use drc_gf::{slice, Gf256};

/// One network transfer performed during repair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Stripe-local index of the node sending data.
    pub from_node: usize,
    /// Stripe-local index of the node (or replacement node) receiving data.
    pub to_node: usize,
    /// What is being sent.
    pub payload: TransferPayload,
}

/// The payload of a repair [`Transfer`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferPayload {
    /// A verbatim copy of a surviving replica of the given distinct block.
    Replica {
        /// Distinct block being copied.
        block: usize,
    },
    /// A partial parity: the XOR (or GF-linear combination) of several blocks
    /// held locally by the sending node, occupying one block of bandwidth.
    PartialParity {
        /// The distinct blocks combined by the sender.
        combines: Vec<usize>,
        /// The fully-lost block this partial parity helps reconstruct.
        target: usize,
    },
    /// A block that was first reconstructed on `to_node`'s peer replacement
    /// and is now forwarded to this replacement (e.g. the doubly-lost block of
    /// a two-node pentagon repair is rebuilt once and then copied).
    Reconstructed {
        /// Distinct block being forwarded.
        block: usize,
    },
}

/// A full plan for repairing a set of failed nodes of one stripe.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RepairPlan {
    /// The stripe-local nodes being repaired.
    pub failed_nodes: Vec<usize>,
    /// Distinct blocks that lost *some* replica (i.e. must be rewritten).
    pub blocks_to_restore: Vec<usize>,
    /// Distinct blocks that lost *every* replica and need reconstruction.
    pub fully_lost_blocks: Vec<usize>,
    /// The network transfers, in execution order.
    pub transfers: Vec<Transfer>,
}

impl RepairPlan {
    /// Total network repair bandwidth, in blocks (the paper's metric).
    pub fn network_blocks(&self) -> usize {
        self.transfers.len()
    }

    /// Number of transfers that are partial parities rather than plain copies.
    pub fn partial_parity_transfers(&self) -> usize {
        self.transfers
            .iter()
            .filter(|t| matches!(t.payload, TransferPayload::PartialParity { .. }))
            .count()
    }

    /// The set of surviving nodes that participate as senders.
    pub fn helper_nodes(&self) -> BTreeSet<usize> {
        self.transfers
            .iter()
            .filter(|t| !self.failed_nodes.contains(&t.from_node))
            .map(|t| t.from_node)
            .collect()
    }
}

/// Computes the payload of a [`TransferPayload::PartialParity`] transfer
/// into a caller-owned buffer.
///
/// A helper node rebuilding distinct block `t` sends the GF-weighted partial
/// sum of the data blocks it holds: `out = sum_j target_row[combines[j]] *
/// payloads[j]`, where `target_row` is row `t` of the code's generator
/// matrix. For the pentagon/heptagon XOR parities every weight is 1 and this
/// degenerates to the plain XOR of §2.1; for the heptagon-local global
/// parities the weights are the RAID-6-style coefficients of §2.2.
///
/// The combination bottoms out in [`slice::linear_combination_into`], so
/// block-sized payloads are split across the workspace worker pool with
/// results byte-identical to a single-threaded run; the coefficient lookup
/// stays on the stack for every realistic stripe width, keeping the serial
/// path free of heap allocation.
///
/// # Panics
///
/// Panics if `combines` and `payloads` have different lengths, any combined
/// index has no column in `target_row`, or payload lengths differ from
/// `out.len()`.
pub fn combine_partial_parity_into(
    target_row: &[Gf256],
    combines: &[usize],
    payloads: &[&[u8]],
    out: &mut [u8],
) {
    assert_eq!(
        combines.len(),
        payloads.len(),
        "one payload per combined block is required"
    );
    // Widest real stripe: heptagon-local with 44 distinct blocks.
    const STACK_COEFFS: usize = 64;
    if combines.len() <= STACK_COEFFS {
        let mut coeffs = [Gf256::ZERO; STACK_COEFFS];
        for (c, &block) in coeffs.iter_mut().zip(combines) {
            *c = target_row[block];
        }
        slice::linear_combination_into(&coeffs[..combines.len()], payloads, out);
    } else {
        let coeffs: Vec<Gf256> = combines.iter().map(|&b| target_row[b]).collect();
        slice::linear_combination_into(&coeffs, payloads, out);
    }
}

/// A plan for reading one data block when some nodes are unavailable
/// (a *degraded read*, executed on the fly during a MapReduce job).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadPlan {
    /// The data block (distinct-block index `< k`) being read.
    pub block: usize,
    /// How the block is obtained.
    pub source: ReadSource,
    /// Number of blocks that must cross the network to serve the read.
    /// Zero when a replica is available on the reading node itself.
    pub network_blocks: usize,
}

/// How a (possibly degraded) read obtains its block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadSource {
    /// A live replica exists on the reading node; no network traffic.
    Local {
        /// The node that already holds the block.
        node: usize,
    },
    /// A live replica is fetched from another node.
    Remote {
        /// The node the replica is fetched from.
        node: usize,
    },
    /// No live replica exists; the block is rebuilt from partial parities
    /// contributed by the listed helper nodes (array-code fast path).
    PartialParities {
        /// The nodes contributing one partial-parity block each.
        helpers: Vec<usize>,
    },
    /// No live replica exists; the block is rebuilt by a full decode that
    /// fetches the listed distinct blocks from the listed nodes.
    Decode {
        /// `(node, distinct block)` pairs fetched for the decode.
        fetches: Vec<(usize, usize)>,
    },
}

impl ReadPlan {
    /// Returns `true` if the read required no reconstruction (a replica was
    /// available somewhere).
    pub fn is_replica_read(&self) -> bool {
        matches!(
            self.source,
            ReadSource::Local { .. } | ReadSource::Remote { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_plan_accounting() {
        let plan = RepairPlan {
            failed_nodes: vec![0, 1],
            blocks_to_restore: vec![0, 1, 2],
            fully_lost_blocks: vec![2],
            transfers: vec![
                Transfer {
                    from_node: 2,
                    to_node: 0,
                    payload: TransferPayload::Replica { block: 0 },
                },
                Transfer {
                    from_node: 3,
                    to_node: 0,
                    payload: TransferPayload::PartialParity {
                        combines: vec![1, 3],
                        target: 2,
                    },
                },
                Transfer {
                    from_node: 0,
                    to_node: 1,
                    payload: TransferPayload::Reconstructed { block: 2 },
                },
            ],
        };
        assert_eq!(plan.network_blocks(), 3);
        assert_eq!(plan.partial_parity_transfers(), 1);
        assert_eq!(plan.helper_nodes(), [2, 3].into_iter().collect());
    }

    #[test]
    fn default_plan_is_empty() {
        let plan = RepairPlan::default();
        assert_eq!(plan.network_blocks(), 0);
        assert!(plan.helper_nodes().is_empty());
    }

    #[test]
    fn read_plan_classification() {
        let local = ReadPlan {
            block: 0,
            source: ReadSource::Local { node: 1 },
            network_blocks: 0,
        };
        assert!(local.is_replica_read());
        let degraded = ReadPlan {
            block: 0,
            source: ReadSource::PartialParities {
                helpers: vec![2, 3, 4],
            },
            network_blocks: 3,
        };
        assert!(!degraded.is_replica_read());
    }
}
