//! The [`ErasureCode`] trait: the uniform interface every evaluated coding
//! scheme implements.
//!
//! All codes in the paper are *linear, systematic array codes*: a stripe of
//! `k` data blocks is expanded into a set of distinct coded blocks (described
//! by a generator matrix over GF(2^8)), and those blocks — some of them
//! replicated — are laid out over `n` nodes. The trait exposes that structure
//! plus code-specific repair planning, and supplies generic default
//! implementations (matrix-based encode/decode, exhaustive fault-tolerance
//! analysis, copy-or-decode repair plans) that concrete codes refine where
//! they have better structure to exploit — most importantly the
//! partial-parity repairs of the pentagon and heptagon codes.

use std::collections::{BTreeMap, BTreeSet};

use drc_gf::slice;

use crate::layout::CodeStructure;
use crate::repair::{ReadPlan, ReadSource, RepairPlan, Transfer, TransferPayload};
use crate::CodeError;

/// A systematic linear erasure code with an explicit node layout.
///
/// Implementors provide [`ErasureCode::structure`]; everything else has a
/// sensible generic default. Codes with special repair structure (the
/// pentagon/heptagon family) override [`ErasureCode::repair_plan`] and
/// [`ErasureCode::degraded_read_plan`] to use partial parities, and codes with
/// simple combinatorial recoverability override [`ErasureCode::can_recover`]
/// for speed.
pub trait ErasureCode: std::fmt::Debug + Send + Sync {
    /// The static structure of one stripe: generator matrix, node layout and
    /// rack grouping.
    fn structure(&self) -> &CodeStructure;

    /// Human-readable code name, e.g. `"pentagon"`.
    fn name(&self) -> &str {
        &self.structure().name
    }

    /// Number of data blocks `k` per stripe.
    fn data_blocks(&self) -> usize {
        self.structure().data_blocks
    }

    /// Number of distinct coded blocks per stripe.
    fn distinct_blocks(&self) -> usize {
        self.structure().layout.distinct_blocks()
    }

    /// Number of nodes a stripe spans — the paper's *code length*.
    fn node_count(&self) -> usize {
        self.structure().layout.node_count()
    }

    /// Total number of stored blocks per stripe, counting replicas.
    fn stored_blocks(&self) -> usize {
        self.structure().layout.stored_blocks()
    }

    /// Storage overhead: stored blocks per data block (Table 1, column 2).
    fn storage_overhead(&self) -> f64 {
        self.structure().storage_overhead()
    }

    /// The distinct blocks stored on stripe-local `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.node_count()`.
    fn node_blocks(&self, node: usize) -> &[usize] {
        self.structure().layout.node_blocks(node)
    }

    /// The stripe-local nodes holding a replica of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.distinct_blocks()`.
    fn block_locations(&self, block: usize) -> &[usize] {
        self.structure().layout.block_locations(block)
    }

    /// Groups of stripe-local nodes that rack-aware placement should put in
    /// distinct racks.
    fn rack_groups(&self) -> &[Vec<usize>] {
        &self.structure().rack_groups
    }

    /// Encodes `k` data blocks into all distinct coded blocks of the stripe.
    ///
    /// The first `k` outputs are verbatim copies of the inputs (systematic).
    ///
    /// # Errors
    ///
    /// Returns an error if the number of blocks is not `k` or the blocks have
    /// unequal lengths.
    fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError> {
        let len = validate_data_blocks(self, data)?;
        let mut out = Vec::with_capacity(self.distinct_blocks());
        out.extend(data.iter().cloned());
        out.resize(self.distinct_blocks(), vec![0u8; len]);
        let (data, parities) = out.split_at_mut(self.data_blocks());
        self.encode_into(&*data, parities)?;
        Ok(out)
    }

    /// Computes the stripe's non-data distinct blocks (local and global
    /// parities — blocks `k..distinct_blocks()`) into caller-owned buffers.
    ///
    /// This is the zero-allocation encode path: `parities` must hold exactly
    /// `distinct_blocks() - k` buffers of the common block length; they are
    /// fully overwritten. The default implementation applies the whole parity
    /// sub-matrix through the fused, cache-blocked
    /// [`slice::matrix_mul_into`], so a caller that reuses its buffers (see
    /// [`crate::StripeEncoder`]) encodes stripe after stripe without touching
    /// the heap.
    ///
    /// # Errors
    ///
    /// Returns an error if the data block count, the parity buffer count, or
    /// any block length is wrong.
    fn encode_into(&self, data: &[Vec<u8>], parities: &mut [Vec<u8>]) -> Result<(), CodeError> {
        encode_parities_into(self, data, parities)
    }

    /// Decodes the `k` data blocks from whatever distinct blocks are
    /// available.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::Unrecoverable`] if the available blocks do not
    /// determine the data, and other variants for malformed input.
    fn decode(
        &self,
        available: &BTreeMap<usize, Vec<u8>>,
        block_len: usize,
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        self.structure().decode(available, block_len)
    }

    /// Returns `true` if the data survives the loss of `failed_nodes`
    /// (stripe-local indices).
    fn can_recover(&self, failed_nodes: &BTreeSet<usize>) -> bool {
        let surviving = self.structure().layout.surviving_blocks(failed_nodes);
        self.structure().recoverable_from_blocks(&surviving)
    }

    /// The maximum `t` such that *any* `t` simultaneous node failures are
    /// survivable (Table 1's resiliency level).
    fn fault_tolerance(&self) -> usize {
        let n = self.node_count();
        for t in 1..=n {
            if !all_subsets_recoverable(self, n, t) {
                return t - 1;
            }
        }
        n
    }

    /// Counts `(fatal, total)` failure patterns of exactly `failures` nodes.
    ///
    /// Used by the reliability model to weight Markov-chain transitions for
    /// codes where only *some* patterns of a given size are fatal (e.g. the
    /// RAID+m and heptagon-local codes).
    fn count_fatal_patterns(&self, failures: usize) -> (u64, u64) {
        let n = self.node_count();
        if failures > n {
            return (0, 0);
        }
        let mut fatal = 0u64;
        let mut total = 0u64;
        let mut subset: Vec<usize> = (0..failures).collect();
        loop {
            total += 1;
            let set: BTreeSet<usize> = subset.iter().copied().collect();
            if !self.can_recover(&set) {
                fatal += 1;
            }
            // Advance to the next combination in lexicographic order.
            let mut i = failures;
            loop {
                if i == 0 {
                    return (fatal, total);
                }
                i -= 1;
                if subset[i] != i + n - failures {
                    subset[i] += 1;
                    for j in i + 1..failures {
                        subset[j] = subset[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// Plans the repair of the given failed stripe-local nodes onto
    /// like-numbered replacement nodes.
    ///
    /// The generic plan copies every block that still has a live replica and
    /// reconstructs fully-lost blocks by fetching enough independent blocks
    /// for a full decode (this is what a Reed–Solomon or RAID+m repair does).
    /// Array codes override this to exploit partial parities.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::Unrecoverable`] if the failure pattern is fatal,
    /// or [`CodeError::IndexOutOfRange`] for invalid node indices.
    fn repair_plan(&self, failed_nodes: &BTreeSet<usize>) -> Result<RepairPlan, CodeError> {
        generic_repair_plan(self, failed_nodes)
    }

    /// Plans an on-the-fly read of data block `data_block` while the given
    /// nodes are unavailable (transient failures during a MapReduce job).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::IndexOutOfRange`] if `data_block >= k`, or
    /// [`CodeError::Unrecoverable`] if the block cannot be served at all.
    fn degraded_read_plan(
        &self,
        data_block: usize,
        down_nodes: &BTreeSet<usize>,
    ) -> Result<ReadPlan, CodeError> {
        generic_degraded_read_plan(self, data_block, down_nodes)
    }

    /// Average network blocks transferred to repair a single failed node,
    /// over all nodes of the stripe. Feeds the reliability model's repair
    /// times.
    fn single_node_repair_blocks(&self) -> f64 {
        let n = self.node_count();
        let total: usize = (0..n)
            .map(|node| {
                let failed: BTreeSet<usize> = [node].into_iter().collect();
                self.repair_plan(&failed)
                    .map(|p| p.network_blocks())
                    .unwrap_or(0)
            })
            .sum();
        total as f64 / n as f64
    }
}

/// The generic-payload parity encode behind [`ErasureCode::encode_into`] and
/// `StripeEncoder::encode`: computes the stripe's non-data distinct blocks
/// into `parities` from any borrowable data blocks (`Vec<u8>`, `Bytes`,
/// plain `&[u8]` views), so callers holding decoded blocks in non-`Vec`
/// containers encode without first copying every block into a fresh
/// `Vec<u8>`.
///
/// # Errors
///
/// As [`ErasureCode::encode_into`]: wrong data block count, wrong parity
/// buffer count, or unequal block lengths.
pub fn encode_parities_into<C, S>(
    code: &C,
    data: &[S],
    parities: &mut [Vec<u8>],
) -> Result<(), CodeError>
where
    C: ErasureCode + ?Sized,
    S: AsRef<[u8]>,
{
    let len = validate_data_blocks(code, data)?;
    let s = code.structure();
    let parity_count = code.distinct_blocks() - s.data_blocks;
    if parities.len() != parity_count {
        return Err(CodeError::WrongParityBlockCount {
            expected: parity_count,
            found: parities.len(),
        });
    }
    if parities.iter().any(|b| b.len() != len) {
        return Err(CodeError::UnequalBlockLengths);
    }
    let coeffs = s.generator.rows_flat(s.data_blocks, code.distinct_blocks());
    slice::matrix_mul_into(coeffs, s.data_blocks, data, parities);
    Ok(())
}

/// Validates an encode input, returning the common block length.
fn validate_data_blocks<C: ErasureCode + ?Sized, S: AsRef<[u8]>>(
    code: &C,
    data: &[S],
) -> Result<usize, CodeError> {
    let k = code.structure().data_blocks;
    if data.len() != k {
        return Err(CodeError::WrongDataBlockCount {
            expected: k,
            found: data.len(),
        });
    }
    let len = data[0].as_ref().len();
    if data.iter().any(|b| b.as_ref().len() != len) {
        return Err(CodeError::UnequalBlockLengths);
    }
    Ok(len)
}

/// Checks that every subset of `t` of the `n` stripe nodes is survivable.
fn all_subsets_recoverable<C: ErasureCode + ?Sized>(code: &C, n: usize, t: usize) -> bool {
    if t > n {
        return false;
    }
    let mut subset: Vec<usize> = (0..t).collect();
    loop {
        let set: BTreeSet<usize> = subset.iter().copied().collect();
        if !code.can_recover(&set) {
            return false;
        }
        let mut i = t;
        loop {
            if i == 0 {
                return true;
            }
            i -= 1;
            if subset[i] != i + n - t {
                subset[i] += 1;
                for j in i + 1..t {
                    subset[j] = subset[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// The generic copy-or-decode repair plan shared by replication, RAID+m and
/// Reed–Solomon codes (and used as a fallback by the array codes for patterns
/// their specialised logic does not cover).
pub(crate) fn generic_repair_plan<C: ErasureCode + ?Sized>(
    code: &C,
    failed_nodes: &BTreeSet<usize>,
) -> Result<RepairPlan, CodeError> {
    validate_nodes(code, failed_nodes)?;
    if !code.can_recover(failed_nodes) {
        return Err(CodeError::Unrecoverable {
            detail: format!("failed nodes {failed_nodes:?} exceed the code's tolerance"),
        });
    }
    let layout = &code.structure().layout;
    let fully_lost = layout.fully_lost_blocks(failed_nodes);
    let mut transfers = Vec::new();
    let mut blocks_to_restore = BTreeSet::new();

    // 1. Blocks that still have a live replica: plain copy to each failed
    //    node that stored them.
    for &node in failed_nodes {
        for &block in layout.node_blocks(node) {
            blocks_to_restore.insert(block);
            if fully_lost.contains(&block) {
                continue;
            }
            let source = *layout
                .block_locations(block)
                .iter()
                .find(|n| !failed_nodes.contains(n))
                .ok_or_else(|| CodeError::Unrecoverable {
                    detail: format!("block {block} is not fully lost yet has no live replica"),
                })?;
            transfers.push(Transfer {
                from_node: source,
                to_node: node,
                payload: TransferPayload::Replica { block },
            });
        }
    }

    // 2. Fully-lost blocks: fetch enough independent surviving blocks to the
    //    first replacement node, decode there, then forward reconstructed
    //    blocks to any other replacement that needs them.
    if !fully_lost.is_empty() {
        let staging = *failed_nodes
            .iter()
            .next()
            .ok_or_else(|| CodeError::Unrecoverable {
                detail: "fully-lost blocks reported without any failed node".to_string(),
            })?;
        let s = code.structure();
        let surviving = layout.surviving_blocks(failed_nodes);
        // Greedily pick independent generator rows among survivors.
        let mut chosen: Vec<usize> = Vec::new();
        for &b in &surviving {
            if chosen.len() == s.data_blocks {
                break;
            }
            chosen.push(b);
            if s.generator.select_rows(&chosen).rank() != chosen.len() {
                chosen.pop();
            }
        }
        debug_assert_eq!(chosen.len(), s.data_blocks, "can_recover guaranteed rank k");
        for &block in &chosen {
            let source = *layout
                .block_locations(block)
                .iter()
                .find(|n| !failed_nodes.contains(n))
                .ok_or_else(|| CodeError::Unrecoverable {
                    detail: format!("surviving block {block} has no live replica"),
                })?;
            transfers.push(Transfer {
                from_node: source,
                to_node: staging,
                payload: TransferPayload::Replica { block },
            });
        }
        // Forward each fully-lost block to the *other* replacements that store it.
        for &block in &fully_lost {
            for &node in layout.block_locations(block) {
                if node != staging && failed_nodes.contains(&node) {
                    transfers.push(Transfer {
                        from_node: staging,
                        to_node: node,
                        payload: TransferPayload::Reconstructed { block },
                    });
                }
            }
        }
    }

    Ok(RepairPlan {
        failed_nodes: failed_nodes.iter().copied().collect(),
        blocks_to_restore: blocks_to_restore.into_iter().collect(),
        fully_lost_blocks: fully_lost.into_iter().collect(),
        transfers,
    })
}

/// The generic degraded-read plan: read a live replica if one exists,
/// otherwise fetch enough independent blocks for a full decode.
pub(crate) fn generic_degraded_read_plan<C: ErasureCode + ?Sized>(
    code: &C,
    data_block: usize,
    down_nodes: &BTreeSet<usize>,
) -> Result<ReadPlan, CodeError> {
    validate_nodes(code, down_nodes)?;
    if data_block >= code.data_blocks() {
        return Err(CodeError::IndexOutOfRange {
            what: "data block",
            index: data_block,
            limit: code.data_blocks(),
        });
    }
    let layout = &code.structure().layout;
    // A live replica somewhere: a plain (possibly remote) read of one block.
    if let Some(&node) = layout
        .block_locations(data_block)
        .iter()
        .find(|n| !down_nodes.contains(n))
    {
        return Ok(ReadPlan {
            block: data_block,
            source: ReadSource::Remote { node },
            network_blocks: 1,
        });
    }
    // Otherwise decode from surviving blocks.
    let s = code.structure();
    let surviving = layout.surviving_blocks(down_nodes);
    if !s.recoverable_from_blocks(&surviving) {
        return Err(CodeError::Unrecoverable {
            detail: format!(
                "data block {data_block} cannot be rebuilt with nodes {down_nodes:?} down"
            ),
        });
    }
    let mut chosen: Vec<usize> = Vec::new();
    for &b in &surviving {
        if chosen.len() == s.data_blocks {
            break;
        }
        chosen.push(b);
        if s.generator.select_rows(&chosen).rank() != chosen.len() {
            chosen.pop();
        }
    }
    let mut fetches: Vec<(usize, usize)> = Vec::with_capacity(chosen.len());
    for &b in &chosen {
        let node = *layout
            .block_locations(b)
            .iter()
            .find(|n| !down_nodes.contains(n))
            .ok_or_else(|| CodeError::Unrecoverable {
                detail: format!("surviving block {b} has no live replica"),
            })?;
        fetches.push((node, b));
    }
    let network_blocks = fetches.len();
    Ok(ReadPlan {
        block: data_block,
        source: ReadSource::Decode { fetches },
        network_blocks,
    })
}

fn validate_nodes<C: ErasureCode + ?Sized>(
    code: &C,
    nodes: &BTreeSet<usize>,
) -> Result<(), CodeError> {
    let n = code.node_count();
    if let Some(&bad) = nodes.iter().find(|&&x| x >= n) {
        return Err(CodeError::IndexOutOfRange {
            what: "node",
            index: bad,
            limit: n,
        });
    }
    Ok(())
}
