use std::fmt;

use drc_gf::GfError;

/// Errors produced by erasure-code construction, encoding, decoding and
/// repair planning.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// The code was constructed with parameters outside its valid range.
    InvalidParameters {
        /// Name of the code being constructed.
        code: String,
        /// Explanation of what was wrong.
        reason: String,
    },
    /// Encode was called with the wrong number of data blocks.
    WrongDataBlockCount {
        /// Number of data blocks the code expects per stripe.
        expected: usize,
        /// Number of data blocks supplied.
        found: usize,
    },
    /// `encode_into` was given the wrong number of parity output buffers.
    WrongParityBlockCount {
        /// Number of non-data distinct blocks the code produces per stripe.
        expected: usize,
        /// Number of parity buffers supplied.
        found: usize,
    },
    /// Blocks passed to a single call did not all have the same length.
    UnequalBlockLengths,
    /// A block or node index was outside the valid range for the code.
    IndexOutOfRange {
        /// Description of what kind of index was out of range.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive upper bound on valid indices.
        limit: usize,
    },
    /// The surviving blocks are insufficient to recover the lost data.
    Unrecoverable {
        /// Human-readable description of the failure pattern.
        detail: String,
    },
    /// An underlying Galois-field operation failed.
    Gf(GfError),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParameters { code, reason } => {
                write!(f, "invalid parameters for {code}: {reason}")
            }
            CodeError::WrongDataBlockCount { expected, found } => {
                write!(f, "expected {expected} data blocks, found {found}")
            }
            CodeError::WrongParityBlockCount { expected, found } => {
                write!(
                    f,
                    "expected {expected} parity output buffers, found {found}"
                )
            }
            CodeError::UnequalBlockLengths => write!(f, "blocks have unequal lengths"),
            CodeError::IndexOutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
            CodeError::Unrecoverable { detail } => {
                write!(f, "failure pattern is unrecoverable: {detail}")
            }
            CodeError::Gf(e) => write!(f, "galois-field error: {e}"),
        }
    }
}

impl std::error::Error for CodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodeError::Gf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GfError> for CodeError {
    fn from(e: GfError) -> Self {
        CodeError::Gf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_lowercase() {
        let errs = vec![
            CodeError::InvalidParameters {
                code: "pentagon".into(),
                reason: "n too small".into(),
            },
            CodeError::WrongDataBlockCount {
                expected: 9,
                found: 8,
            },
            CodeError::UnequalBlockLengths,
            CodeError::IndexOutOfRange {
                what: "node",
                index: 7,
                limit: 5,
            },
            CodeError::Unrecoverable {
                detail: "3 nodes lost".into(),
            },
            CodeError::Gf(GfError::SingularMatrix),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn gf_error_converts_and_sources() {
        use std::error::Error;
        let e: CodeError = GfError::DivisionByZero.into();
        assert!(e.source().is_some());
        assert!(CodeError::UnequalBlockLengths.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodeError>();
    }
}
