//! Targeted stripe reconstruction: rebuild exactly the missing blocks
//! (data *or* parity) as linear combinations of whichever distinct blocks
//! survive, without materialising the whole decoded stripe.
//!
//! [`CodeStructure::decode`] answers "give me every data block", which the
//! repair path then re-encodes to regenerate lost parities — O(stripe) of
//! compute and buffers even when a single block is missing.
//! [`StripeReconstructor`] instead solves, once per failure pattern, for a
//! small coefficient matrix `C` with `target_rows = C · source_rows` over
//! the code's generator, and then applies `C` to the surviving payloads —
//! streamable over any byte sub-range of the blocks, which is what the
//! HDFS chunked repair pipeline feeds to the worker pool in cross-stripe
//! batches ([`drc_gf::slice::matrix_mul_batch`]).
//!
//! The source selection mirrors `decode`'s greedy chooser (ascending,
//! data rows first) so the blocks it reads are the blocks a decode would
//! have read; the outputs are byte-identical because exact GF(2^8) linear
//! algebra has a unique answer for every recoverable pattern.

use std::collections::BTreeSet;

use drc_gf::Gf256;

use crate::error::CodeError;
use crate::layout::CodeStructure;

/// A solved reconstruction: which surviving blocks to read and the
/// coefficient row rebuilding each requested block from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeReconstructor {
    sources: Vec<usize>,
    targets: Vec<usize>,
    /// Row-major `targets.len() × sources.len()`.
    coeffs: Vec<Gf256>,
}

impl StripeReconstructor {
    /// Solves for the requested `targets` (distinct-block indices, data or
    /// parity) in terms of the `available` distinct blocks.
    ///
    /// # Errors
    ///
    /// [`CodeError::IndexOutOfRange`] for an out-of-range block index and
    /// [`CodeError::Unrecoverable`] when the available blocks do not span
    /// some target.
    pub fn plan(
        structure: &CodeStructure,
        available: &BTreeSet<usize>,
        targets: &[usize],
    ) -> Result<Self, CodeError> {
        let k = structure.data_blocks;
        let distinct = structure.layout.distinct_blocks();
        for &b in available.iter().chain(targets) {
            if b >= distinct {
                return Err(CodeError::IndexOutOfRange {
                    what: "distinct block",
                    index: b,
                    limit: distinct,
                });
            }
        }
        // Greedy independent source selection, in decode's order: ascending
        // with data (identity) rows first keeps the solved system small and
        // the read set identical to what a full decode would fetch.
        let mut candidates: Vec<usize> = available.iter().copied().collect();
        candidates.sort_by_key(|&b| (b >= k, b));
        let mut sources: Vec<usize> = Vec::with_capacity(k);
        for &b in &candidates {
            if sources.len() == k {
                break;
            }
            sources.push(b);
            if structure.generator.select_rows(&sources).rank() != sources.len() {
                sources.pop();
            }
        }
        // Solve C · G[sources] = G[targets] by Gauss–Jordan on the
        // transposed augmented system: columns are the k generator
        // coordinates, unknowns are one coefficient row per target.
        let r = sources.len();
        let t = targets.len();
        // aug[row][col]: row < k are generator coordinates; cols 0..r hold
        // G[sources]ᵀ, cols r.. hold G[targets]ᵀ.
        let mut aug: Vec<Vec<Gf256>> = (0..k)
            .map(|coord| {
                let mut row: Vec<Gf256> = Vec::with_capacity(r + t);
                row.extend(sources.iter().map(|&s| structure.generator.row(s)[coord]));
                row.extend(targets.iter().map(|&g| structure.generator.row(g)[coord]));
                row
            })
            .collect();
        let mut pivot_of: Vec<usize> = Vec::with_capacity(r);
        let mut row = 0;
        for col in 0..r {
            let Some(p) = (row..k).find(|&i| aug[i][col] != Gf256::ZERO) else {
                // Cannot happen: the source rows were chosen independent.
                continue;
            };
            aug.swap(row, p);
            let inv = aug[row][col].checked_inv()?;
            for x in aug[row].iter_mut() {
                *x *= inv;
            }
            // Eliminate the pivot column from every other row; the pivot row
            // is taken out so the borrow of its coefficients is disjoint.
            let pivot = std::mem::take(&mut aug[row]);
            for (i, other) in aug.iter_mut().enumerate() {
                if i != row && other[col] != Gf256::ZERO {
                    let f = other[col];
                    for (x, &p) in other.iter_mut().zip(&pivot) {
                        *x += f * p;
                    }
                }
            }
            aug[row] = pivot;
            pivot_of.push(col);
            row += 1;
        }
        // Rows beyond the pivot rank must be consistent (all-zero in the
        // augmented columns too), or the target is outside the span.
        let mut coeffs = vec![Gf256::ZERO; t * r];
        for (ti, &target) in targets.iter().enumerate() {
            if aug[row..k].iter().any(|a| a[r + ti] != Gf256::ZERO) {
                return Err(CodeError::Unrecoverable {
                    detail: format!(
                        "block {target} is outside the span of the {r} available \
                         independent blocks"
                    ),
                });
            }
            for (ri, &col) in pivot_of.iter().enumerate() {
                coeffs[ti * r + col] = aug[ri][r + ti];
            }
        }
        Ok(StripeReconstructor {
            sources,
            targets: targets.to_vec(),
            coeffs,
        })
    }

    /// The distinct-block indices to read, in the order
    /// [`StripeReconstructor::reconstruct_range`] expects its payloads.
    pub fn sources(&self) -> &[usize] {
        &self.sources
    }

    /// The distinct-block indices being rebuilt, in output order.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// The row-major `targets × sources` coefficient matrix.
    pub fn coefficients(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Rebuilds the byte range `offset..limit` of every target:
    /// `outs[t][offset..limit] = Σ coeffs[t][s] · sources[s][offset..limit]`.
    ///
    /// `sources` and `outs` are whole-block buffers in
    /// [`StripeReconstructor::sources`] / [`StripeReconstructor::targets`]
    /// order; only the requested window is touched, so a caller can stream
    /// a stripe chunk by chunk while the rest of each block is still in
    /// flight.
    ///
    /// # Panics
    ///
    /// Panics on a count/length mismatch or a range beyond the block length.
    pub fn reconstruct_range<S, B>(
        &self,
        sources: &[S],
        outs: &mut [B],
        offset: usize,
        limit: usize,
    ) where
        S: AsRef<[u8]>,
        B: AsMut<[u8]>,
    {
        assert_eq!(sources.len(), self.sources.len(), "one payload per source");
        assert_eq!(outs.len(), self.targets.len(), "one buffer per target");
        let views: Vec<&[u8]> = sources.iter().map(|s| &s.as_ref()[offset..limit]).collect();
        let mut windows: Vec<&mut [u8]> = outs
            .iter_mut()
            .map(|o| &mut o.as_mut()[offset..limit])
            .collect();
        drc_gf::slice::matrix_mul_into(&self.coeffs, self.sources.len(), &views, &mut windows);
    }

    /// Rebuilds every target in full (the whole-block convenience over
    /// [`StripeReconstructor::reconstruct_range`]).
    ///
    /// # Panics
    ///
    /// As [`StripeReconstructor::reconstruct_range`].
    pub fn reconstruct_into<S, B>(&self, sources: &[S], outs: &mut [B])
    where
        S: AsRef<[u8]>,
        B: AsMut<[u8]>,
    {
        let len = sources
            .first()
            .map(|s| s.as_ref().len())
            .or_else(|| outs.first_mut().map(|o| o.as_mut().len()))
            .unwrap_or(0);
        self.reconstruct_range(sources, outs, 0, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CodeKind;
    use std::collections::BTreeMap;

    fn sample_block(len: usize, salt: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 + salt * 7 + 1) as u8).collect()
    }

    /// Every code, every failure pattern within tolerance: the solver's
    /// rebuild of each missing block (data *and* parity) matches what
    /// encode produced.
    #[test]
    fn rebuilds_match_encode_for_every_code_and_single_and_double_failures() {
        let len = 512;
        for kind in [
            CodeKind::TWO_REP,
            CodeKind::THREE_REP,
            CodeKind::Pentagon,
            CodeKind::Heptagon,
            CodeKind::HeptagonLocal,
        ] {
            let code = kind.build().unwrap();
            let s = code.structure();
            let k = code.data_blocks();
            let data: Vec<Vec<u8>> = (0..k).map(|b| sample_block(len, b)).collect();
            // `encode` returns every distinct block (data prefix + parities).
            let coded = code.encode(&data).unwrap();
            let block = |b: usize| -> &[u8] { &coded[b] };
            let tol = code.fault_tolerance();
            let n = code.node_count();
            for f1 in 0..n {
                for f2 in f1..n {
                    let failed: BTreeSet<usize> = if f1 == f2 {
                        [f1].into()
                    } else if tol >= 2 {
                        [f1, f2].into()
                    } else {
                        continue;
                    };
                    let lost: BTreeSet<usize> = failed
                        .iter()
                        .flat_map(|&node| code.node_blocks(node).iter().copied())
                        .collect();
                    let available: BTreeSet<usize> = (0..code.distinct_blocks())
                        .filter(|b| {
                            code.block_locations(*b)
                                .iter()
                                .any(|node| !failed.contains(node))
                        })
                        .collect();
                    let targets: Vec<usize> = lost
                        .iter()
                        .copied()
                        .filter(|b| !available.contains(b))
                        .collect();
                    if targets.is_empty() {
                        continue;
                    }
                    let rec = StripeReconstructor::plan(s, &available, &targets)
                        .unwrap_or_else(|e| panic!("{kind}: plan {failed:?}: {e}"));
                    let sources: Vec<&[u8]> = rec.sources().iter().map(|&b| block(b)).collect();
                    let mut outs = vec![vec![0xeeu8; len]; targets.len()];
                    rec.reconstruct_into(&sources, &mut outs);
                    for (ti, &t) in rec.targets().iter().enumerate() {
                        assert_eq!(outs[ti], block(t), "{kind}: block {t} after {failed:?}");
                    }
                }
            }
        }
    }

    /// Chunked application is byte-identical to one whole-block pass, with
    /// non-dividing chunk sizes and at pool widths 1 and 4.
    #[test]
    fn range_application_is_chunk_and_thread_invariant() {
        let len = 40_000;
        let code = CodeKind::Heptagon.build().unwrap();
        let k = code.data_blocks();
        let data: Vec<Vec<u8>> = (0..k).map(|b| sample_block(len, b)).collect();
        let coded = code.encode(&data).unwrap();
        // Withhold the first data block from the available set to force a
        // real GF solve rather than a unit-row copy.
        let lost = 0usize;
        let available: BTreeSet<usize> = (1..code.distinct_blocks()).collect();
        let rec = StripeReconstructor::plan(code.structure(), &available, &[lost]).unwrap();
        let sources: Vec<&[u8]> = rec.sources().iter().map(|&b| coded[b].as_slice()).collect();
        let mut whole = vec![vec![0u8; len]];
        rec.reconstruct_into(&sources, &mut whole);
        assert_eq!(whole[0], data[lost]);
        for threads in [1usize, 4] {
            for chunk in [len + 5, 4096, 7777] {
                let mut chunked = vec![vec![0x11u8; len]];
                rayon::with_num_threads(threads, || {
                    let mut off = 0;
                    while off < len {
                        let lim = (off + chunk).min(len);
                        rec.reconstruct_range(&sources, &mut chunked, off, lim);
                        off = lim;
                    }
                });
                assert_eq!(chunked, whole, "chunk {chunk} at {threads} threads");
            }
        }
    }

    /// The source selection mirrors decode's: a full decode from the same
    /// available set reads exactly the reconstructor's sources (plus the
    /// data rows it returns directly).
    #[test]
    fn unavailable_target_is_unrecoverable() {
        let code = CodeKind::TWO_REP.build().unwrap();
        // Both replicas of block 0 lost: nothing spans it.
        let available: BTreeSet<usize> = (1..code.data_blocks()).collect();
        let err = StripeReconstructor::plan(code.structure(), &available, &[0]).unwrap_err();
        assert!(matches!(err, CodeError::Unrecoverable { .. }), "{err}");
    }

    /// Against the oracle: targeted reconstruction agrees with the full
    /// decode on every data block it is asked for.
    #[test]
    fn agrees_with_full_decode() {
        let len = 256;
        // A Reed–Solomon stripe can afford to lose two distinct blocks;
        // the polygon codes only carry one parity among their distinct
        // blocks (their tolerance comes from replication).
        let code = CodeKind::ReedSolomon { data: 6, parity: 3 }
            .build()
            .unwrap();
        let s = code.structure();
        let k = code.data_blocks();
        let data: Vec<Vec<u8>> = (0..k).map(|b| sample_block(len, b)).collect();
        let coded = code.encode(&data).unwrap();
        // Drop data blocks 0 and 3.
        let mut payloads: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
        for (b, payload) in coded.iter().enumerate() {
            if b == 0 || b == 3 {
                continue;
            }
            payloads.insert(b, payload.clone());
        }
        let decoded = s.decode(&payloads, len).unwrap();
        let available: BTreeSet<usize> = payloads.keys().copied().collect();
        let rec = StripeReconstructor::plan(s, &available, &[0, 3]).unwrap();
        let sources: Vec<&[u8]> = rec
            .sources()
            .iter()
            .map(|&b| payloads[&b].as_slice())
            .collect();
        let mut outs = vec![vec![0u8; len]; 2];
        rec.reconstruct_into(&sources, &mut outs);
        assert_eq!(outs[0], decoded[0]);
        assert_eq!(outs[1], decoded[3]);
    }
}
