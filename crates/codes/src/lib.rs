//! Erasure codes with inherent double replication, for Hadoop-style storage.
//!
//! This crate is the core of the reproduction of *"Evaluation of Codes with
//! Inherent Double Replication for Hadoop"* (HotStorage 2014). It implements
//! the two coding schemes the paper evaluates — the **pentagon** /
//! **heptagon** repair-by-transfer regenerating codes and the
//! **heptagon-local** locally regenerating code — together with every
//! comparison scheme the paper uses: 2-/3-way replication, `(n, n-1)`
//! RAID+mirroring, and single-copy Reed–Solomon.
//!
//! All codes share the [`ErasureCode`] trait, which exposes:
//!
//! * the stripe *structure* (generator matrix + node layout) used by the
//!   placement, locality and reliability analyses,
//! * `encode` / `decode` over real block payloads, plus the zero-allocation
//!   [`ErasureCode::encode_into`] fast path and the buffer-reusing
//!   [`StripeEncoder`] built on it,
//! * failure analysis (`can_recover`, `fault_tolerance`,
//!   `count_fatal_patterns`), and
//! * repair and degraded-read *plans* whose network cost is measured in
//!   blocks — including the partial-parity repairs that give the array codes
//!   their repair-bandwidth advantage (§2.1, §3.1 of the paper).
//!
//! # Quick start
//!
//! ```
//! use drc_codes::{CodeKind, ErasureCode};
//!
//! # fn main() -> Result<(), drc_codes::CodeError> {
//! let pentagon = CodeKind::Pentagon.build()?;
//!
//! // Encode a stripe of 9 data blocks.
//! let data: Vec<Vec<u8>> = (0..9).map(|i| vec![i as u8; 1024]).collect();
//! let coded = pentagon.encode(&data)?;
//! assert_eq!(coded.len(), 10); // 9 data blocks + 1 XOR parity, each stored twice
//!
//! // Any two node failures are survivable...
//! assert!(pentagon.can_recover(&[0, 3].into_iter().collect()));
//! // ...and repairing them moves only 10 blocks over the network.
//! let plan = pentagon.repair_plan(&[0, 3].into_iter().collect())?;
//! assert_eq!(plan.network_blocks(), 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codes;
mod encoder;
mod error;
mod layout;
mod reconstruct;
mod registry;
mod repair;
mod traits;

pub use codes::{PolygonCode, PolygonLocalCode, RaidMirrorCode, ReplicationCode, RsCode};
pub use encoder::StripeEncoder;
pub use error::CodeError;
pub use layout::{CodeStructure, NodeLayout};
pub use reconstruct::StripeReconstructor;
pub use registry::CodeKind;
pub use repair::{
    combine_partial_parity_into, ReadPlan, ReadSource, RepairPlan, Transfer, TransferPayload,
};
pub use traits::{encode_parities_into, ErasureCode};
