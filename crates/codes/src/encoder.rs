//! Buffer-reusing stripe encoding.
//!
//! Writing a large file means encoding stripe after stripe with the same
//! code and block length. [`StripeEncoder`] owns the parity scratch buffers
//! and hands them to [`ErasureCode::encode_into`], so after the first stripe
//! every subsequent encode performs **no heap allocation** — the buffers are
//! only reallocated when the code geometry or block length changes.
//!
//! Encodes are additionally *shard-parallel*: `encode_into` bottoms out in
//! the fused `drc_gf::slice::matrix_mul_into`, which splits block-sized
//! shards into byte ranges across the workspace worker pool (worker count
//! from `DRC_SIM_THREADS`; results are byte-identical to a single-threaded
//! run, and `DRC_SIM_THREADS=1` keeps the whole path serial and
//! allocation-free).

use crate::{CodeError, ErasureCode};

/// Reusable scratch buffers for encoding a sequence of stripes.
///
/// # Example
///
/// ```
/// use drc_codes::{CodeKind, ErasureCode, StripeEncoder};
///
/// # fn main() -> Result<(), drc_codes::CodeError> {
/// let code = CodeKind::Pentagon.build()?;
/// let mut encoder = StripeEncoder::new();
/// for stripe in 0..4u8 {
///     let data: Vec<Vec<u8>> = (0..9).map(|i| vec![stripe ^ i; 1024]).collect();
///     // After the first iteration this allocates nothing.
///     let parities = encoder.encode(code.as_ref(), &data)?;
///     assert_eq!(parities.len(), 1); // the pentagon's XOR parity
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct StripeEncoder {
    parities: Vec<Vec<u8>>,
}

impl StripeEncoder {
    /// Creates an encoder with no scratch space yet.
    pub fn new() -> Self {
        StripeEncoder::default()
    }

    /// Encodes one stripe, returning the non-data distinct blocks (blocks
    /// `k..distinct_blocks()` — the local and global parities).
    ///
    /// The data blocks may live in any borrowable container (`Vec<u8>`,
    /// `bytes::Bytes`, `&[u8]` views): the encoder reads them in place, so
    /// a repair path holding freshly decoded blocks feeds them straight in
    /// without cloning each one into a `Vec<u8>` first.
    ///
    /// The returned slice borrows the encoder's scratch buffers; copy out
    /// whatever must outlive the next call.
    ///
    /// # Errors
    ///
    /// As [`ErasureCode::encode_into`].
    pub fn encode<'a, B: AsRef<[u8]>>(
        &'a mut self,
        code: &dyn ErasureCode,
        data: &[B],
    ) -> Result<&'a [Vec<u8>], CodeError> {
        let parity_count = code.distinct_blocks() - code.data_blocks();
        let len = data.first().map(|b| b.as_ref().len()).unwrap_or(0);
        if self.parities.len() != parity_count || self.parities.iter().any(|b| b.len() != len) {
            // Geometry changed: shelve the old scratch and draw fresh
            // buffers from the block pool so back-to-back encoders (one per
            // experiment cell) stop malloc/freeing block-sized vectors.
            for old in self.parities.drain(..) {
                drc_gf::bufpool::recycle(old);
            }
            for _ in 0..parity_count {
                self.parities.push(drc_gf::bufpool::take(len));
            }
        }
        crate::traits::encode_parities_into(code, data, &mut self.parities)?;
        Ok(&self.parities)
    }
}

impl Drop for StripeEncoder {
    fn drop(&mut self) {
        for buf in self.parities.drain(..) {
            drc_gf::bufpool::recycle(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CodeKind;

    #[test]
    fn matches_plain_encode_for_every_code() {
        let mut encoder = StripeEncoder::new();
        for kind in [
            CodeKind::TWO_REP,
            CodeKind::Pentagon,
            CodeKind::Heptagon,
            CodeKind::HeptagonLocal,
            CodeKind::RAID_M_10_9,
            CodeKind::ReedSolomon { data: 6, parity: 3 },
        ] {
            let code = kind.build().unwrap();
            let k = code.data_blocks();
            let data: Vec<Vec<u8>> = (0..k)
                .map(|i| (0..97).map(|j| (i * 13 + j * 7 + 3) as u8).collect())
                .collect();
            let full = code.encode(&data).unwrap();
            let parities = encoder.encode(code.as_ref(), &data).unwrap();
            assert_eq!(parities, &full[k..], "parity mismatch for {kind}");
        }
    }

    #[test]
    fn reuses_buffers_across_stripes() {
        let code = CodeKind::Heptagon.build().unwrap();
        let mut encoder = StripeEncoder::new();
        let k = code.data_blocks();
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; 256]).collect();
        let first_ptr = {
            let p = encoder.encode(code.as_ref(), &data).unwrap();
            p[0].as_ptr()
        };
        let second_ptr = {
            let p = encoder.encode(code.as_ref(), &data).unwrap();
            p[0].as_ptr()
        };
        assert_eq!(first_ptr, second_ptr, "scratch buffers must be reused");
    }
}
