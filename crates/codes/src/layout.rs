//! The *array-code* structure shared by every code in this crate.
//!
//! A stripe of any of the evaluated codes is described by two things:
//!
//! 1. a **generator matrix** over GF(2^8): each *distinct* coded block is a
//!    linear combination of the stripe's `k` data blocks (the first `k`
//!    distinct blocks are always the data blocks themselves — every code here
//!    is systematic), and
//! 2. a **node layout**: which distinct blocks are stored on which of the
//!    stripe's `n` nodes. A distinct block stored on two nodes is *inherently
//!    replicated*; codes that put several blocks of the stripe on the same
//!    node are *array codes* — the property that drives the data-locality
//!    findings of the paper.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use drc_gf::Matrix;

use crate::CodeError;

/// Mapping from the stripe's nodes to the distinct blocks each node stores.
///
/// `layout[node]` lists distinct-block indices, in storage order. A distinct
/// block may appear on multiple nodes (replication) but at most once per node.
///
/// # Example
///
/// ```
/// use drc_codes::NodeLayout;
///
/// // Two nodes, each storing the same single block: 2-way replication.
/// let layout = NodeLayout::new(vec![vec![0], vec![0]]).unwrap();
/// assert_eq!(layout.node_count(), 2);
/// assert_eq!(layout.distinct_blocks(), 1);
/// assert_eq!(layout.block_locations(0), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeLayout {
    per_node: Vec<Vec<usize>>,
    /// Inverse map: distinct block -> nodes hosting it (sorted).
    locations: Vec<Vec<usize>>,
    stored_blocks: usize,
}

impl NodeLayout {
    /// Builds a layout from the per-node block lists.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if the layout is empty, any
    /// node stores no blocks, a node stores the same block twice, or the set
    /// of block indices is not contiguous starting at zero.
    pub fn new(per_node: Vec<Vec<usize>>) -> Result<Self, CodeError> {
        let invalid = |reason: &str| CodeError::InvalidParameters {
            code: "node layout".to_string(),
            reason: reason.to_string(),
        };
        if per_node.is_empty() {
            return Err(invalid("layout has no nodes"));
        }
        let mut max_block = 0usize;
        let mut stored_blocks = 0usize;
        for blocks in &per_node {
            let Some(&node_max) = blocks.iter().max() else {
                return Err(invalid("a node stores no blocks"));
            };
            let unique: BTreeSet<usize> = blocks.iter().copied().collect();
            if unique.len() != blocks.len() {
                return Err(invalid("a node stores the same block twice"));
            }
            stored_blocks += blocks.len();
            max_block = max_block.max(node_max);
        }
        let distinct = max_block + 1;
        let mut locations = vec![Vec::new(); distinct];
        for (node, blocks) in per_node.iter().enumerate() {
            for &b in blocks {
                locations[b].push(node);
            }
        }
        if locations.iter().any(|l| l.is_empty()) {
            return Err(invalid("block indices are not contiguous from zero"));
        }
        Ok(NodeLayout {
            per_node,
            locations,
            stored_blocks,
        })
    }

    /// Number of nodes the stripe spans (the paper's *code length*).
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// Number of distinct coded blocks in the stripe.
    pub fn distinct_blocks(&self) -> usize {
        self.locations.len()
    }

    /// Total number of stored blocks (counting replicas).
    pub fn stored_blocks(&self) -> usize {
        self.stored_blocks
    }

    /// The distinct blocks stored on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_blocks(&self, node: usize) -> &[usize] {
        &self.per_node[node]
    }

    /// The nodes that store a replica of `block`, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block_locations(&self, block: usize) -> &[usize] {
        &self.locations[block]
    }

    /// Number of replicas of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn replication_of(&self, block: usize) -> usize {
        self.locations[block].len()
    }

    /// Iterates over `(node, blocks)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.per_node
            .iter()
            .enumerate()
            .map(|(n, b)| (n, b.as_slice()))
    }

    /// The set of distinct blocks that survive when `failed_nodes` are lost.
    pub fn surviving_blocks(&self, failed_nodes: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut alive = BTreeSet::new();
        for (node, blocks) in self.iter() {
            if !failed_nodes.contains(&node) {
                alive.extend(blocks.iter().copied());
            }
        }
        alive
    }

    /// The distinct blocks for which *every* replica lives on a failed node.
    pub fn fully_lost_blocks(&self, failed_nodes: &BTreeSet<usize>) -> BTreeSet<usize> {
        (0..self.distinct_blocks())
            .filter(|&b| self.locations[b].iter().all(|n| failed_nodes.contains(n)))
            .collect()
    }

    /// Maximum number of blocks any single node stores.
    pub fn max_blocks_per_node(&self) -> usize {
        self.per_node.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The complete static description of one stripe of a code: its generator
/// matrix plus its node layout.
///
/// Every concrete code in this crate is a thin wrapper that builds a
/// `CodeStructure` once and then answers all structural queries from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeStructure {
    /// Display name, e.g. `"pentagon"` or `"(10,9) RAID+m"`.
    pub name: String,
    /// Number of data blocks `k` per stripe.
    pub data_blocks: usize,
    /// Generator matrix (`distinct_blocks × k`): row `b` gives the coefficients
    /// of distinct block `b` over the data blocks. The first `k` rows are the
    /// identity (systematic codes).
    pub generator: Matrix,
    /// Which distinct blocks live on which node.
    pub layout: NodeLayout,
    /// Groups of nodes that a rack-aware placement should keep in separate
    /// racks (e.g. the two heptagons and the global-parity node of the
    /// heptagon-local code). Nodes are stripe-local indices.
    pub rack_groups: Vec<Vec<usize>>,
}

impl CodeStructure {
    /// Validates internal consistency of the structure.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if the generator's dimensions
    /// do not match the layout, the code is not systematic, or the rack groups
    /// do not partition the nodes.
    pub fn validate(&self) -> Result<(), CodeError> {
        let invalid = |reason: String| CodeError::InvalidParameters {
            code: self.name.clone(),
            reason,
        };
        if self.generator.rows() != self.layout.distinct_blocks() {
            return Err(invalid(format!(
                "generator has {} rows but layout has {} distinct blocks",
                self.generator.rows(),
                self.layout.distinct_blocks()
            )));
        }
        if self.generator.cols() != self.data_blocks {
            return Err(invalid(format!(
                "generator has {} columns but code has {} data blocks",
                self.generator.cols(),
                self.data_blocks
            )));
        }
        // Systematic: first k rows must be the identity.
        for i in 0..self.data_blocks {
            for j in 0..self.data_blocks {
                let expected = if i == j { 1 } else { 0 };
                if self.generator[(i, j)].value() != expected {
                    return Err(invalid("generator is not systematic".to_string()));
                }
            }
        }
        // Rack groups must partition the node set.
        let mut seen = BTreeSet::new();
        for group in &self.rack_groups {
            for &n in group {
                if n >= self.layout.node_count() || !seen.insert(n) {
                    return Err(invalid(
                        "rack groups do not partition the nodes".to_string(),
                    ));
                }
            }
        }
        if seen.len() != self.layout.node_count() {
            return Err(invalid("rack groups do not cover all nodes".to_string()));
        }
        Ok(())
    }

    /// Storage overhead: stored blocks per data block.
    pub fn storage_overhead(&self) -> f64 {
        self.layout.stored_blocks() as f64 / self.data_blocks as f64
    }

    /// Decodes the `k` data blocks from the distinct blocks that are
    /// available, by solving the linear system given by the generator rows.
    ///
    /// `available` maps distinct-block index to its content; `block_len` is
    /// the common block length.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::Unrecoverable`] if the available rows do not span
    /// the data space, and other variants for malformed input.
    pub fn decode(
        &self,
        available: &BTreeMap<usize, Vec<u8>>,
        block_len: usize,
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        let k = self.data_blocks;
        for (&b, content) in available {
            if b >= self.layout.distinct_blocks() {
                return Err(CodeError::IndexOutOfRange {
                    what: "distinct block",
                    index: b,
                    limit: self.layout.distinct_blocks(),
                });
            }
            if content.len() != block_len {
                return Err(CodeError::UnequalBlockLengths);
            }
        }
        // Fast path: all data blocks directly available.
        if (0..k).all(|b| available.contains_key(&b)) {
            return Ok((0..k).map(|b| available[&b].clone()).collect());
        }
        // Select k available rows that form an invertible matrix. Greedy by
        // preferring data rows (identity rows) first keeps the system small.
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        let mut candidates: Vec<usize> = available.keys().copied().collect();
        candidates.sort_unstable();
        // Data rows first, then parity rows.
        candidates.sort_by_key(|&b| if b < k { 0 } else { 1 });
        for &b in &candidates {
            if chosen.len() == k {
                break;
            }
            chosen.push(b);
            let sub = self.generator.select_rows(&chosen);
            if sub.rank() != chosen.len() {
                chosen.pop();
            }
        }
        if chosen.len() < k {
            return Err(CodeError::Unrecoverable {
                detail: format!(
                    "available blocks span only {} of {} data dimensions",
                    chosen.len(),
                    k
                ),
            });
        }
        let sub = self.generator.select_rows(&chosen);
        let decode = sub.inverse().map_err(CodeError::from)?;
        let chosen_blocks: Vec<&[u8]> = chosen.iter().map(|b| available[b].as_slice()).collect();
        let mut out = Vec::with_capacity(k);
        for row in 0..k {
            out.push(drc_gf::slice::linear_combination(
                decode.row(row),
                &chosen_blocks,
                block_len,
            ));
        }
        Ok(out)
    }

    /// Returns `true` if the given set of available distinct blocks determines
    /// all data blocks.
    pub fn recoverable_from_blocks(&self, available: &BTreeSet<usize>) -> bool {
        let k = self.data_blocks;
        if (0..k).all(|b| available.contains(&b)) {
            return true;
        }
        let rows: Vec<usize> = available
            .iter()
            .copied()
            .filter(|&b| b < self.layout.distinct_blocks())
            .collect();
        if rows.len() < k {
            return false;
        }
        self.generator.select_rows(&rows).rank() == k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drc_gf::Gf256;

    fn simple_structure() -> CodeStructure {
        // k = 2 data blocks, one XOR parity, spread over 3 nodes (1 block each).
        let mut generator = Matrix::identity(2);
        let parity = Matrix::from_rows(&[vec![1, 1]]).unwrap();
        generator = generator.stack(&parity).unwrap();
        CodeStructure {
            name: "toy".to_string(),
            data_blocks: 2,
            generator,
            layout: NodeLayout::new(vec![vec![0], vec![1], vec![2]]).unwrap(),
            rack_groups: vec![vec![0, 1, 2]],
        }
    }

    #[test]
    fn layout_validation() {
        assert!(NodeLayout::new(vec![]).is_err());
        assert!(NodeLayout::new(vec![vec![]]).is_err());
        assert!(NodeLayout::new(vec![vec![0, 0]]).is_err());
        assert!(NodeLayout::new(vec![vec![0], vec![2]]).is_err());
        assert!(NodeLayout::new(vec![vec![0, 1], vec![1, 0]]).is_ok());
    }

    #[test]
    fn layout_queries() {
        let l = NodeLayout::new(vec![vec![0, 1], vec![1, 2], vec![2, 0]]).unwrap();
        assert_eq!(l.node_count(), 3);
        assert_eq!(l.distinct_blocks(), 3);
        assert_eq!(l.stored_blocks(), 6);
        assert_eq!(l.node_blocks(1), &[1, 2]);
        assert_eq!(l.block_locations(0), &[0, 2]);
        assert_eq!(l.replication_of(2), 2);
        assert_eq!(l.max_blocks_per_node(), 2);
        let failed: BTreeSet<usize> = [0].into_iter().collect();
        assert_eq!(l.surviving_blocks(&failed), [0, 1, 2].into_iter().collect());
        assert!(l.fully_lost_blocks(&failed).is_empty());
        let failed2: BTreeSet<usize> = [0, 2].into_iter().collect();
        assert_eq!(l.surviving_blocks(&failed2), [1, 2].into_iter().collect());
        assert_eq!(l.fully_lost_blocks(&failed2), [0].into_iter().collect());
    }

    #[test]
    fn structure_validation_accepts_consistent() {
        simple_structure().validate().unwrap();
    }

    #[test]
    fn structure_validation_rejects_inconsistencies() {
        let mut s = simple_structure();
        s.data_blocks = 3;
        assert!(s.validate().is_err());

        let mut s = simple_structure();
        s.rack_groups = vec![vec![0, 1]];
        assert!(s.validate().is_err());

        let mut s = simple_structure();
        s.rack_groups = vec![vec![0, 1, 2, 3]];
        assert!(s.validate().is_err());

        let mut s = simple_structure();
        // Break systematicity.
        s.generator[(0, 0)] = Gf256::new(2);
        assert!(s.validate().is_err());
    }

    #[test]
    fn decode_from_parity() {
        let s = simple_structure();
        let d0 = vec![1u8, 2, 3];
        let d1 = vec![9u8, 8, 7];
        let parity: Vec<u8> = d0.iter().zip(&d1).map(|(a, b)| a ^ b).collect();
        // Lose data block 0; decode from block 1 and parity.
        let mut available = BTreeMap::new();
        available.insert(1, d1.clone());
        available.insert(2, parity);
        let decoded = s.decode(&available, 3).unwrap();
        assert_eq!(decoded[0], d0);
        assert_eq!(decoded[1], d1);
    }

    #[test]
    fn decode_error_cases() {
        let s = simple_structure();
        let mut available = BTreeMap::new();
        available.insert(1, vec![0u8; 3]);
        assert!(matches!(
            s.decode(&available, 3),
            Err(CodeError::Unrecoverable { .. })
        ));
        let mut bad_len = BTreeMap::new();
        bad_len.insert(0, vec![0u8; 2]);
        bad_len.insert(1, vec![0u8; 3]);
        assert!(matches!(
            s.decode(&bad_len, 3),
            Err(CodeError::UnequalBlockLengths)
        ));
        let mut bad_idx = BTreeMap::new();
        bad_idx.insert(9, vec![0u8; 3]);
        assert!(matches!(
            s.decode(&bad_idx, 3),
            Err(CodeError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn recoverable_from_blocks_rank_check() {
        let s = simple_structure();
        assert!(s.recoverable_from_blocks(&[0, 1].into_iter().collect()));
        assert!(s.recoverable_from_blocks(&[0, 2].into_iter().collect()));
        assert!(s.recoverable_from_blocks(&[1, 2].into_iter().collect()));
        assert!(!s.recoverable_from_blocks(&[2].into_iter().collect()));
        assert!(!s.recoverable_from_blocks(&BTreeSet::new()));
    }

    #[test]
    fn storage_overhead_toy() {
        assert!((simple_structure().storage_overhead() - 1.5).abs() < 1e-12);
    }
}
