//! Differential tests for parallel repair arithmetic: partial-parity
//! combination and stripe encoding split across the worker pool must equal
//! the single-threaded result byte-for-byte, for **every** failure pattern
//! up to each array code's fault tolerance.

use std::collections::BTreeSet;

use drc_codes::{combine_partial_parity_into, CodeKind, TransferPayload};
use drc_gf::{slice, Gf256};

/// All node subsets of `0..n` with 1..=r elements.
fn failure_patterns(n: usize, r: usize) -> Vec<BTreeSet<usize>> {
    let mut patterns = Vec::new();
    for size in 1..=r {
        let mut subset: Vec<usize> = (0..size).collect();
        loop {
            patterns.push(subset.iter().copied().collect());
            let mut i = size;
            let mut done = true;
            while i > 0 {
                i -= 1;
                if subset[i] != i + n - size {
                    subset[i] += 1;
                    for j in i + 1..size {
                        subset[j] = subset[j - 1] + 1;
                    }
                    done = false;
                    break;
                }
            }
            if done {
                break;
            }
        }
    }
    patterns
}

fn payload(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 37 + salt * 101 + 13) as u8).collect()
}

/// Every partial-parity transfer of every repair plan, for every failure
/// pattern up to the code's tolerance, combined with 1 worker and with 4
/// workers on block-sized payloads: the bytes must be identical.
#[test]
fn partial_parity_repair_is_thread_count_invariant_for_all_patterns() {
    let len = slice::PAR_ENGAGE_MIN + 129; // engages the parallel split
    for kind in [
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
    ] {
        let code = kind.build().expect("code builds");
        let blocks: Vec<Vec<u8>> = (0..code.distinct_blocks())
            .map(|b| payload(len, b))
            .collect();
        // A coefficient per distinct block (plans may combine parity blocks
        // too, whose XOR weight the caller supplies): non-zero pseudo-random
        // weights exercise the full GF path, not just the XOR fast path.
        let weights: Vec<Gf256> = (0..code.distinct_blocks())
            .map(|b| Gf256::new((b * 17 + 3) as u8))
            .collect();
        let tolerance = code.fault_tolerance();
        // Plan every failure pattern up to tolerance, collecting the distinct
        // (combines, target) partial-parity transfers across all of them —
        // identical transfers recur in many patterns, so deduplicating keeps
        // the block-sized combine work bounded without losing coverage.
        let mut partials: BTreeSet<(Vec<usize>, usize)> = BTreeSet::new();
        for pattern in failure_patterns(code.node_count(), tolerance) {
            let plan = code
                .repair_plan(&pattern)
                .unwrap_or_else(|e| panic!("{kind}: {pattern:?} must be repairable: {e}"));
            for transfer in &plan.transfers {
                if let TransferPayload::PartialParity { combines, target } = &transfer.payload {
                    partials.insert((combines.clone(), *target));
                }
            }
        }
        assert!(
            !partials.is_empty(),
            "{kind}: the array codes must exercise partial-parity transfers"
        );
        for (combines, target) in &partials {
            let inputs: Vec<&[u8]> = combines.iter().map(|&b| blocks[b].as_slice()).collect();
            let mut serial = vec![0u8; len];
            rayon::with_num_threads(1, || {
                combine_partial_parity_into(&weights, combines, &inputs, &mut serial)
            });
            let mut parallel = vec![0xeeu8; len];
            rayon::with_num_threads(4, || {
                combine_partial_parity_into(&weights, combines, &inputs, &mut parallel)
            });
            // Cross-check against the direct definition of the sum.
            let mut expect = vec![0u8; len];
            for (&b, input) in combines.iter().zip(&inputs) {
                slice::mul_acc(&mut expect, input, weights[b]);
            }
            assert_eq!(
                serial, expect,
                "{kind}: serial combine for target block {target} is wrong"
            );
            assert_eq!(
                serial, parallel,
                "{kind}: partial parity for target block {target} diverged"
            );
        }
    }
}

/// Stripe encoding through the default `encode_into` (the fused parallel
/// matrix product) is thread-count invariant for every evaluated code.
#[test]
fn stripe_encode_is_thread_count_invariant_for_every_code() {
    let len = slice::PAR_ENGAGE_MIN + 321;
    for kind in [
        CodeKind::TWO_REP,
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
        CodeKind::RAID_M_10_9,
        CodeKind::ReedSolomon { data: 6, parity: 3 },
    ] {
        let code = kind.build().expect("code builds");
        let k = code.data_blocks();
        let data: Vec<Vec<u8>> = (0..k).map(|i| payload(len, i)).collect();
        let parity_count = code.distinct_blocks() - k;
        let mut serial = vec![vec![0u8; len]; parity_count];
        rayon::with_num_threads(1, || code.encode_into(&data, &mut serial).expect("encodes"));
        let mut parallel = vec![vec![0x11u8; len]; parity_count];
        rayon::with_num_threads(4, || {
            code.encode_into(&data, &mut parallel).expect("encodes")
        });
        assert_eq!(serial, parallel, "{kind} diverged across thread counts");
    }
}
