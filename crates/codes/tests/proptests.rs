//! Property-based tests on the erasure-code invariants.

use std::collections::{BTreeMap, BTreeSet};

use drc_codes::CodeKind;
use proptest::prelude::*;

/// All code kinds used in the paper's evaluation.
fn any_paper_code() -> impl Strategy<Value = CodeKind> {
    prop_oneof![
        Just(CodeKind::TWO_REP),
        Just(CodeKind::THREE_REP),
        Just(CodeKind::Pentagon),
        Just(CodeKind::Heptagon),
        Just(CodeKind::HeptagonLocal),
        Just(CodeKind::RAID_M_10_9),
        Just(CodeKind::RAID_M_12_11),
        Just(CodeKind::ReedSolomon {
            data: 10,
            parity: 4
        }),
    ]
}

fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|j| (seed as usize ^ (i * 131 + j * 31 + 17)) as u8)
                .collect()
        })
        .collect()
}

/// Picks `count` distinct nodes below `n` pseudo-randomly from a seed.
fn pick_nodes(n: usize, count: usize, mut seed: u64) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    while out.len() < count.min(n) {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.insert((seed % n as u64) as usize);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants that must hold for every code.
    #[test]
    fn structural_invariants(kind in any_paper_code()) {
        let code = kind.build().unwrap();
        let s = code.structure();
        s.validate().unwrap();
        // Stored blocks = sum over nodes of blocks per node.
        let stored: usize = (0..code.node_count()).map(|n| code.node_blocks(n).len()).sum();
        prop_assert_eq!(stored, code.stored_blocks());
        // Every distinct block has at least one location and locations are consistent.
        for b in 0..code.distinct_blocks() {
            let locs = code.block_locations(b);
            prop_assert!(!locs.is_empty());
            for &node in locs {
                prop_assert!(code.node_blocks(node).contains(&b));
            }
        }
        // Overhead is stored/data.
        prop_assert!((code.storage_overhead() - stored as f64 / code.data_blocks() as f64).abs() < 1e-12);
        // Double-replication codes store >= 2 replicas of every data block.
        if kind.has_inherent_double_replication() {
            for b in 0..code.data_blocks() {
                prop_assert!(code.block_locations(b).len() >= 2);
            }
        }
    }

    /// Encoding then decoding from any survivable failure pattern recovers the data.
    #[test]
    fn decode_after_tolerated_failures(
        kind in any_paper_code(),
        seed in any::<u64>(),
        len in 1usize..64,
        extra_failures in 0usize..2,
    ) {
        let code = kind.build().unwrap();
        let t = code.fault_tolerance();
        let failures = (t + extra_failures).min(code.node_count());
        let failed = pick_nodes(code.node_count(), failures, seed);
        let data = random_data(code.data_blocks(), len, seed);
        let coded = code.encode(&data).unwrap();
        let mut available = BTreeMap::new();
        for node in 0..code.node_count() {
            if failed.contains(&node) {
                continue;
            }
            for &b in code.node_blocks(node) {
                available.insert(b, coded[b].clone());
            }
        }
        if code.can_recover(&failed) {
            let decoded = code.decode(&available, len).unwrap();
            prop_assert_eq!(decoded, data);
        } else {
            prop_assert!(code.decode(&available, len).is_err());
        }
    }

    /// Repair plans restore every block of the failed nodes and only move data
    /// from live nodes (or previously repaired replacements).
    #[test]
    fn repair_plans_are_complete(
        kind in any_paper_code(),
        seed in any::<u64>(),
        failures in 1usize..3,
    ) {
        let code = kind.build().unwrap();
        let failed = pick_nodes(code.node_count(), failures.min(code.fault_tolerance().max(1)), seed);
        if !code.can_recover(&failed) {
            prop_assert!(code.repair_plan(&failed).is_err());
            return Ok(());
        }
        let plan = code.repair_plan(&failed).unwrap();
        // Every block stored on a failed node must be scheduled for restore.
        let mut needed: BTreeSet<usize> = BTreeSet::new();
        for &node in &failed {
            needed.extend(code.node_blocks(node).iter().copied());
        }
        let restored: BTreeSet<usize> = plan.blocks_to_restore.iter().copied().collect();
        prop_assert!(needed.is_subset(&restored));
        // Fully-lost blocks really have no live replica.
        for &b in &plan.fully_lost_blocks {
            prop_assert!(code.block_locations(b).iter().all(|n| failed.contains(n)));
        }
        // Repair bandwidth is at least the number of blocks on the failed nodes
        // that cannot be locally regenerated, and is bounded by a full decode
        // per failed node.
        prop_assert!(plan.network_blocks() >= needed.len().saturating_sub(code.distinct_blocks()));
        prop_assert!(plan.network_blocks() <= code.data_blocks() * failed.len() + needed.len());
    }

    /// Degraded reads always cost at least one network block when the local
    /// replica is gone, and replica reads are exactly one block.
    #[test]
    fn degraded_read_costs(kind in any_paper_code(), seed in any::<u64>()) {
        let code = kind.build().unwrap();
        let block = (seed as usize) % code.data_blocks();
        let hosts: Vec<usize> = code.block_locations(block).to_vec();
        // One host down (if the code has >= 2 replicas, another replica serves it).
        let down: BTreeSet<usize> = [hosts[0]].into_iter().collect();
        let plan = code.degraded_read_plan(block, &down).unwrap();
        if hosts.len() >= 2 {
            prop_assert_eq!(plan.network_blocks, 1);
            prop_assert!(plan.is_replica_read());
        } else {
            prop_assert!(plan.network_blocks >= 1);
            prop_assert!(!plan.is_replica_read());
        }
        // No failures at all: always a single-block replica read.
        let plan = code.degraded_read_plan(block, &BTreeSet::new()).unwrap();
        prop_assert_eq!(plan.network_blocks, 1);
    }

    /// The fault-tolerance number is consistent with exhaustive pattern counting.
    #[test]
    fn fault_tolerance_consistent_with_pattern_counts(kind in any_paper_code()) {
        let code = kind.build().unwrap();
        let t = code.fault_tolerance();
        if t >= 1 {
            let (fatal, total) = code.count_fatal_patterns(t);
            prop_assert_eq!(fatal, 0);
            prop_assert!(total > 0);
        }
        if t < code.node_count() {
            let (fatal, _) = code.count_fatal_patterns(t + 1);
            prop_assert!(fatal > 0);
        }
    }
}
