//! Galois-field arithmetic substrate for the double-replication Hadoop codes.
//!
//! The heptagon-local code of the paper computes two *global parity* blocks as
//! RAID-6-style functions of all 40 data blocks, which requires arithmetic over
//! a finite field. This crate provides a self-contained implementation of
//! GF(2^8):
//!
//! * [`Gf256`] — a field element with full arithmetic (add/sub = XOR,
//!   branch-free table multiplication, inversion, exponentiation),
//! * [`mod@slice`] — bulk operations on byte slices (XOR-accumulate,
//!   multiply-accumulate, fused matrix×block-vector products) used on whole
//!   storage blocks,
//! * [`kernel`] — the runtime-dispatched SIMD kernel layer behind [`mod@slice`],
//! * [`Matrix`] — dense matrices over GF(2^8) with Gauss–Jordan inversion,
//!   Vandermonde and Cauchy constructors,
//! * [`Polynomial`] — polynomials over GF(2^8) with evaluation and Lagrange
//!   interpolation,
//! * [`ReedSolomon`] — a systematic Reed–Solomon erasure codec built on the
//!   matrix machinery; it backs both the stand-alone RS baseline and the
//!   global-parity computation of the heptagon-local code.
//!
//! # Kernel dispatch and performance
//!
//! Bulk operations bottom out in table-lookup SIMD kernels. On AVX-512
//! hosts with GFNI, a per-coefficient 8×8 bit-matrix drives one
//! `gf2p8affineqb` per 64-byte lane; elsewhere, split-nibble lookups — for a
//! coefficient `c`, the products of `c` with all 16 low nibbles and all 16
//! high nibbles are precomputed (at compile time, for every `c`) into two
//! 16-byte tables, so a single `vpermb`/`pshufb`/`tbl` instruction
//! multiplies 16–64 bytes at once; see the `tables` internals and
//! [`kernel`] for the exact variants (GFNI, AVX-512VBMI, AVX2, SSSE3, NEON,
//! portable wide-scalar, reference). The widest kernel the CPU supports is
//! detected **once** per process via `is_x86_feature_detected!` and cached;
//! everything in [`mod@slice`] then dispatches through two function-pointer
//! loads per *block-sized* call.
//!
//! Encode paths are allocation-free end to end: callers hand
//! [`ReedSolomon::encode_into`] (and the `*_into` functions in [`mod@slice`])
//! caller-owned output buffers, and the fused [`slice::matrix_mul_into`]
//! applies the whole parity sub-matrix one cache tile at a time rather than
//! one full pass per parity row.
//!
//! On top of the SIMD kernels, block-sized operations are *shard-parallel*:
//! buffers of at least [`slice::PAR_ENGAGE_MIN`] bytes are split into
//! tile-aligned byte ranges (each worker getting at least a
//! [`slice::PAR_MIN_LEN`] share) across the workspace worker pool. The pool width comes from
//! `DRC_SIM_THREADS` (the sibling knob of `DRC_GF_KERNEL`);
//! `DRC_SIM_THREADS=1` keeps every path serial and allocation-free, and all
//! thread counts produce byte-identical output.
//!
//! # Safety
//!
//! The crate is `#![deny(unsafe_code)]` with a single, audited exception: the
//! [`kernel`] module, whose module docs state the two invariants (CPU feature
//! verified before a SIMD kernel becomes reachable; all pointer arithmetic
//! in-bounds with unaligned-tolerant loads/stores) that every `unsafe` block
//! there upholds.
//!
//! # Example
//!
//! ```
//! use drc_gf::{Gf256, ReedSolomon};
//!
//! # fn main() -> Result<(), drc_gf::GfError> {
//! // Field arithmetic.
//! let a = Gf256::new(0x57);
//! let b = Gf256::new(0x83);
//! assert_eq!(a * b, Gf256::new(0x31));
//! assert_eq!((a / b) * b, a);
//!
//! // Erasure coding: 4 data shards, 2 parity shards, any 2 losses recoverable.
//! let rs = ReedSolomon::new(4, 2)?;
//! let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
//! let mut shards = rs.encode(&data)?;
//! shards[1].clear(); // lose a data shard
//! shards[4].clear(); // lose a parity shard
//! let present: Vec<Option<&[u8]>> = shards
//!     .iter()
//!     .map(|s| if s.is_empty() { None } else { Some(s.as_slice()) })
//!     .collect();
//! let recovered = rs.reconstruct(&present, 16)?;
//! assert_eq!(recovered[1], vec![1u8; 16]);
//!
//! // Zero-allocation encoding into caller-owned parity buffers.
//! let mut parity = vec![vec![0u8; 16]; 2];
//! rs.encode_into(&data, &mut parity)?;
//! assert_eq!(parity[0], recovered[4]);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod bufpool;
mod error;
mod gf256;
pub mod kernel;
mod matrix;
mod poly;
mod rs;
pub mod slice;
mod tables;

pub use error::GfError;
pub use gf256::{Gf256, FIELD_SIZE, GROUP_ORDER, PRIMITIVE_POLY};
pub use matrix::Matrix;
pub use poly::Polynomial;
pub use rs::ReedSolomon;
