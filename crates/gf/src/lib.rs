//! Galois-field arithmetic substrate for the double-replication Hadoop codes.
//!
//! The heptagon-local code of the paper computes two *global parity* blocks as
//! RAID-6-style functions of all 40 data blocks, which requires arithmetic over
//! a finite field. This crate provides a self-contained implementation of
//! GF(2^8):
//!
//! * [`Gf256`] — a field element with full arithmetic (add/sub = XOR,
//!   log/antilog-table multiplication, inversion, exponentiation),
//! * [`slice`] — bulk operations on byte slices (XOR-accumulate,
//!   multiply-accumulate) used on whole storage blocks,
//! * [`Matrix`] — dense matrices over GF(2^8) with Gauss–Jordan inversion,
//!   Vandermonde and Cauchy constructors,
//! * [`Polynomial`] — polynomials over GF(2^8) with evaluation and Lagrange
//!   interpolation,
//! * [`ReedSolomon`] — a systematic Reed–Solomon erasure codec built on the
//!   matrix machinery; it backs both the stand-alone RS baseline and the
//!   global-parity computation of the heptagon-local code.
//!
//! # Example
//!
//! ```
//! use drc_gf::{Gf256, ReedSolomon};
//!
//! # fn main() -> Result<(), drc_gf::GfError> {
//! // Field arithmetic.
//! let a = Gf256::new(0x57);
//! let b = Gf256::new(0x83);
//! assert_eq!(a * b, Gf256::new(0x31));
//! assert_eq!((a / b) * b, a);
//!
//! // Erasure coding: 4 data shards, 2 parity shards, any 2 losses recoverable.
//! let rs = ReedSolomon::new(4, 2)?;
//! let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
//! let mut shards = rs.encode(&data)?;
//! shards[1].clear(); // lose a data shard
//! shards[4].clear(); // lose a parity shard
//! let present: Vec<Option<&[u8]>> = shards
//!     .iter()
//!     .map(|s| if s.is_empty() { None } else { Some(s.as_slice()) })
//!     .collect();
//! let recovered = rs.reconstruct(&present, 16)?;
//! assert_eq!(recovered[1], vec![1u8; 16]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gf256;
mod matrix;
mod poly;
mod rs;
pub mod slice;

pub use error::GfError;
pub use gf256::Gf256;
pub use matrix::Matrix;
pub use poly::Polynomial;
pub use rs::ReedSolomon;
