//! The field GF(2^8) represented with log/antilog tables.
//!
//! The field is constructed as GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), i.e.
//! with the primitive polynomial `0x11d` that is also used by RAID-6 and most
//! storage erasure-coding implementations. The generator `0x02` is primitive
//! for this polynomial, so every non-zero element is a power of 2 and
//! multiplication reduces to an addition of discrete logarithms.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::GfError;

pub use crate::tables::{FIELD_SIZE, GROUP_ORDER, PRIMITIVE_POLY};

use crate::tables::TABLES;

/// An element of the finite field GF(2^8).
///
/// Addition and subtraction are both bitwise XOR; multiplication and division
/// are table-driven. All operators panic only on division by zero — use
/// [`Gf256::checked_inv`] / [`Gf256::checked_div`] for fallible variants.
///
/// # Example
///
/// ```
/// use drc_gf::Gf256;
///
/// let a = Gf256::new(0x53);
/// let b = Gf256::new(0xca);
/// assert_eq!(a + b, Gf256::new(0x99));
/// assert_eq!(a - b, a + b); // characteristic 2
/// assert_eq!(a * Gf256::ONE, a);
/// assert_eq!((a * b) / b, a);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The canonical generator (primitive element) of the multiplicative group.
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Creates a field element from its byte representation.
    ///
    /// Every byte value is a valid field element, so this is a total function.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the byte representation of the element.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `g^power` for the canonical generator `g = 2`.
    ///
    /// The exponent is reduced modulo 255 (the group order), so any `u32`
    /// exponent is accepted.
    #[inline]
    pub fn generator_pow(power: u32) -> Self {
        Gf256(TABLES.exp[(power % GROUP_ORDER as u32) as usize])
    }

    /// Raises the element to the given power.
    ///
    /// `0^0` is defined as `1`, matching the usual convention for evaluating
    /// polynomials at zero.
    pub fn pow(self, mut exponent: u32) -> Self {
        if self.is_zero() {
            return if exponent == 0 {
                Gf256::ONE
            } else {
                Gf256::ZERO
            };
        }
        exponent %= GROUP_ORDER as u32;
        let log = TABLES.log[self.0 as usize] as u32;
        Gf256(TABLES.exp[((log * exponent) % GROUP_ORDER as u32) as usize])
    }

    /// Returns the multiplicative inverse, or an error for zero.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DivisionByZero`] if the element is zero.
    #[inline]
    pub fn checked_inv(self) -> Result<Self, GfError> {
        if self.is_zero() {
            Err(GfError::DivisionByZero)
        } else {
            let log = TABLES.log[self.0 as usize] as usize;
            Ok(Gf256(TABLES.exp[GROUP_ORDER - log]))
        }
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the element is zero.
    #[inline]
    pub fn inv(self) -> Self {
        // drc-lint: allow(panic-hygiene): documented panic contract ("Panics if
        // the element is zero"); `checked_inv` is the fallible surface.
        self.checked_inv().expect("inverse of zero in GF(2^8)")
    }

    /// Divides `self` by `rhs`, returning an error when `rhs` is zero.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DivisionByZero`] if `rhs` is zero.
    #[inline]
    pub fn checked_div(self, rhs: Self) -> Result<Self, GfError> {
        Ok(self * rhs.checked_inv()?)
    }

    /// Multiplies two raw bytes interpreted as field elements.
    ///
    /// This is the hot-path primitive used by the bulk slice operations in
    /// [`crate::slice`].
    /// Branch-free: `log[0]` is a sentinel large enough that any log-sum
    /// involving it indexes the zero padding of the antilog table (see the
    /// `tables` module), so zero operands need no test — the hot bulk
    /// loops stay free of data-dependent branches.
    #[inline]
    pub fn mul_bytes(a: u8, b: u8) -> u8 {
        let log_sum = TABLES.log[a as usize] as usize + TABLES.log[b as usize] as usize;
        TABLES.exp[log_sum]
    }

    /// Iterates over every element of the field, starting at zero.
    pub fn all_elements() -> impl Iterator<Item = Gf256> {
        (0u16..FIELD_SIZE as u16).map(|v| Gf256(v as u8))
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // GF(2^8) addition IS xor
    fn add(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // GF(2^8) addition IS xor
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // characteristic 2: sub == add == xor
    fn sub(self, rhs: Self) -> Self {
        // Characteristic 2: subtraction is identical to addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // characteristic 2: sub == add == xor
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Self {
        // -a == a in characteristic 2.
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Gf256(Gf256::mul_bytes(self.0, rhs.0))
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        // drc-lint: allow(panic-hygiene): `Div` mirrors integer `/` — panics on
        // zero divisor by contract; `checked_div` is the fallible surface.
        self.checked_div(rhs).expect("division by zero in GF(2^8)")
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Self {
        iter.fold(Gf256::ZERO, |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Gf256> for Gf256 {
    fn sum<I: Iterator<Item = &'a Gf256>>(iter: I) -> Self {
        iter.copied().sum()
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Self {
        iter.fold(Gf256::ONE, |acc, x| acc * x)
    }
}

impl<'a> Product<&'a Gf256> for Gf256 {
    fn product<I: Iterator<Item = &'a Gf256>>(iter: I) -> Self {
        iter.copied().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // exp and log are mutually inverse on the non-zero elements.
        for v in 1..=255u16 {
            let e = Gf256::new(v as u8);
            let log = TABLES.log[v as usize] as usize;
            assert_eq!(TABLES.exp[log], v as u8, "exp(log({v})) != {v}");
            assert_eq!(Gf256::generator_pow(log as u32), e);
        }
    }

    #[test]
    fn generator_has_full_order() {
        // 2 must generate all 255 non-zero elements.
        let mut seen = [false; 256];
        let mut x = Gf256::ONE;
        for _ in 0..GROUP_ORDER {
            assert!(!seen[x.value() as usize], "generator order < 255");
            seen[x.value() as usize] = true;
            x *= Gf256::GENERATOR;
        }
        assert_eq!(x, Gf256::ONE, "generator^255 should be 1");
    }

    #[test]
    fn addition_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            for b in [0u8, 1, 3, 0x53, 0xca, 0xff] {
                let x = Gf256::new(a);
                let y = Gf256::new(b);
                assert_eq!((x + y).value(), a ^ b);
                assert_eq!(x + y + y, x);
                assert_eq!(x - y, x + y);
                assert_eq!(-x, x);
            }
        }
    }

    #[test]
    fn multiplication_matches_carryless_reference() {
        // Reference: schoolbook carry-less multiplication with reduction.
        fn slow_mul(a: u8, b: u8) -> u8 {
            let mut result: u16 = 0;
            let mut a = a as u16;
            let mut b = b as u16;
            while b != 0 {
                if b & 1 != 0 {
                    result ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= PRIMITIVE_POLY;
                }
                b >>= 1;
            }
            result as u8
        }
        for a in 0..=255u16 {
            for b in (0..=255u16).step_by(7) {
                assert_eq!(
                    Gf256::mul_bytes(a as u8, b as u8),
                    slow_mul(a as u8, b as u8),
                    "mismatch for {a} * {b}"
                );
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for v in 1..=255u8 {
            let x = Gf256::new(v);
            assert_eq!(x * x.inv(), Gf256::ONE);
            assert_eq!(x.checked_inv().unwrap() * x, Gf256::ONE);
        }
    }

    #[test]
    fn zero_has_no_inverse() {
        assert_eq!(Gf256::ZERO.checked_inv(), Err(GfError::DivisionByZero));
        assert_eq!(
            Gf256::ONE.checked_div(Gf256::ZERO),
            Err(GfError::DivisionByZero)
        );
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for v in [0u8, 1, 2, 3, 0x1d, 0x80, 0xff] {
            let x = Gf256::new(v);
            let mut acc = Gf256::ONE;
            for e in 0..520u32 {
                assert_eq!(x.pow(e), acc, "pow mismatch for {v}^{e}");
                acc *= x;
            }
        }
    }

    #[test]
    fn pow_zero_conventions() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
    }

    #[test]
    fn distributivity_spot_checks() {
        for a in (0..=255u16).step_by(11) {
            for b in (0..=255u16).step_by(13) {
                for c in (0..=255u16).step_by(17) {
                    let (a, b, c) = (
                        Gf256::new(a as u8),
                        Gf256::new(b as u8),
                        Gf256::new(c as u8),
                    );
                    assert_eq!(a * (b + c), a * b + a * c);
                    assert_eq!((a * b) * c, a * (b * c));
                }
            }
        }
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Gf256::new(1), Gf256::new(2), Gf256::new(3)];
        let s: Gf256 = xs.iter().sum();
        assert_eq!(s, Gf256::new(1 ^ 2 ^ 3));
        let p: Gf256 = xs.iter().product();
        assert_eq!(p, Gf256::new(1) * Gf256::new(2) * Gf256::new(3));
        let s2: Gf256 = xs.into_iter().sum();
        assert_eq!(s, s2);
    }

    #[test]
    fn formatting_impls() {
        let x = Gf256::new(0xab);
        assert_eq!(format!("{x}"), "0xab");
        assert_eq!(format!("{x:x}"), "ab");
        assert_eq!(format!("{x:X}"), "AB");
        assert_eq!(format!("{x:b}"), "10101011");
        assert_eq!(format!("{x:o}"), "253");
        assert!(!format!("{x:?}").is_empty());
    }

    #[test]
    fn conversions() {
        let x: Gf256 = 7u8.into();
        assert_eq!(x.value(), 7);
        let b: u8 = x.into();
        assert_eq!(b, 7);
        assert_eq!(Gf256::default(), Gf256::ZERO);
    }

    #[test]
    fn all_elements_covers_field() {
        let v: Vec<Gf256> = Gf256::all_elements().collect();
        assert_eq!(v.len(), 256);
        assert_eq!(v[0], Gf256::ZERO);
        assert_eq!(v[255], Gf256::new(255));
    }

    #[test]
    fn type_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gf256>();
    }
}
