//! A systematic Reed–Solomon erasure codec over GF(2^8).
//!
//! The codec turns `k` equally-sized data shards into `k + m` coded shards
//! (the first `k` are the data shards verbatim) such that *any* `k` of the
//! coded shards suffice to reconstruct the data. It is used in two places in
//! the reproduction:
//!
//! * as the stand-alone single-copy Reed–Solomon baseline (the kind of code
//!   Facebook's HDFS-RAID applies to cold data, mentioned in the paper's
//!   introduction), and
//! * to compute the two *global parity* blocks of the heptagon-local code,
//!   which the paper describes as "Galois field arithmetic as in the case of
//!   RAID-6".

use serde::{Deserialize, Serialize};

use crate::slice;
use crate::{Gf256, GfError, Matrix};

/// A systematic Reed–Solomon codec with `data` data shards and `parity`
/// parity shards.
///
/// # Example
///
/// ```
/// use drc_gf::ReedSolomon;
///
/// # fn main() -> Result<(), drc_gf::GfError> {
/// let rs = ReedSolomon::new(6, 3)?;
/// assert_eq!(rs.total_shards(), 9);
/// assert!((rs.storage_overhead() - 1.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReedSolomon {
    data: usize,
    parity: usize,
    /// Full generator matrix: identity on top, parity rows below.
    generator: Matrix,
}

impl ReedSolomon {
    /// Creates a codec with the given numbers of data and parity shards.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::InvalidShardCounts`] if either count is zero or the
    /// total exceeds 256 (the construction would run out of distinct
    /// evaluation points).
    pub fn new(data: usize, parity: usize) -> Result<Self, GfError> {
        if data == 0 || parity == 0 || data + parity > 256 {
            return Err(GfError::InvalidShardCounts { data, parity });
        }
        // Build a systematic generator from a Vandermonde matrix: take the
        // (data+parity) x data Vandermonde matrix, then right-multiply by the
        // inverse of its top square so the top block becomes the identity.
        let vand = Matrix::vandermonde(data + parity, data)?;
        let top: Vec<usize> = (0..data).collect();
        let top_inv = vand.select_rows(&top).inverse()?;
        let generator = vand.checked_mul(&top_inv)?;
        Ok(ReedSolomon {
            data,
            parity,
            generator,
        })
    }

    /// Number of data shards `k`.
    pub fn data_shards(&self) -> usize {
        self.data
    }

    /// Number of parity shards `m`.
    pub fn parity_shards(&self) -> usize {
        self.parity
    }

    /// Total number of coded shards `k + m`.
    pub fn total_shards(&self) -> usize {
        self.data + self.parity
    }

    /// Storage overhead: stored shards per data shard.
    pub fn storage_overhead(&self) -> f64 {
        self.total_shards() as f64 / self.data as f64
    }

    /// Returns the full systematic generator matrix (`(k+m) × k`).
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// Returns the coefficients of parity shard `p` (`0 <= p < parity`) over
    /// the data shards.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.parity_shards()`.
    pub fn parity_row(&self, p: usize) -> &[Gf256] {
        assert!(p < self.parity, "parity row index out of bounds");
        self.generator.row(self.data + p)
    }

    /// Encodes data shards into `k + m` coded shards.
    ///
    /// The first `k` output shards are copies of the input data shards.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of shards is not `k` or shard lengths
    /// differ.
    pub fn encode<S: AsRef<[u8]>>(&self, shards: &[S]) -> Result<Vec<Vec<u8>>, GfError> {
        if shards.len() != self.data {
            return Err(GfError::WrongShardCount {
                expected: self.data,
                found: shards.len(),
            });
        }
        let len = shards[0].as_ref().len();
        if shards.iter().any(|s| s.as_ref().len() != len) {
            return Err(GfError::UnequalShardLengths);
        }
        let mut out: Vec<Vec<u8>> = shards.iter().map(|s| s.as_ref().to_vec()).collect();
        for p in 0..self.parity {
            let coeffs = self.parity_row(p);
            out.push(slice::linear_combination(coeffs, shards, len));
        }
        Ok(out)
    }

    /// Computes only the parity shards for the given data shards.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`ReedSolomon::encode`].
    pub fn encode_parity<S: AsRef<[u8]>>(&self, shards: &[S]) -> Result<Vec<Vec<u8>>, GfError> {
        let all = self.encode(shards)?;
        Ok(all[self.data..].to_vec())
    }

    /// Verifies that a complete set of shards is consistent with the code.
    ///
    /// # Errors
    ///
    /// Returns an error if the shard count or lengths are wrong.
    pub fn verify<S: AsRef<[u8]>>(&self, shards: &[S]) -> Result<bool, GfError> {
        if shards.len() != self.total_shards() {
            return Err(GfError::WrongShardCount {
                expected: self.total_shards(),
                found: shards.len(),
            });
        }
        let data: Vec<&[u8]> = shards[..self.data].iter().map(|s| s.as_ref()).collect();
        let expected = self.encode(&data)?;
        Ok(expected
            .iter()
            .zip(shards)
            .all(|(e, s)| e.as_slice() == s.as_ref()))
    }

    /// Reconstructs all `k + m` shards from any `k` surviving shards.
    ///
    /// `present[i]` is `Some(bytes)` if coded shard `i` survives and `None`
    /// otherwise; `shard_len` gives the length every shard must have (used
    /// when all data shards are missing).
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than `k` shards are present, lengths are
    /// inconsistent, or the input vector is not of length `k + m`.
    pub fn reconstruct(
        &self,
        present: &[Option<&[u8]>],
        shard_len: usize,
    ) -> Result<Vec<Vec<u8>>, GfError> {
        if present.len() != self.total_shards() {
            return Err(GfError::WrongShardCount {
                expected: self.total_shards(),
                found: present.len(),
            });
        }
        let available: Vec<usize> = present
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect();
        if available.len() < self.data {
            return Err(GfError::TooFewShards {
                needed: self.data,
                present: available.len(),
            });
        }
        if present
            .iter()
            .flatten()
            .any(|s| s.len() != shard_len)
        {
            return Err(GfError::UnequalShardLengths);
        }

        // Select k surviving rows of the generator and invert them to obtain
        // the decoding matrix.
        let chosen = &available[..self.data];
        let sub = self.generator.select_rows(chosen);
        let decode = sub.inverse()?;

        // Recover the data shards: data_j = sum_i decode[j][i] * shard[chosen[i]].
        let chosen_shards: Vec<&[u8]> = chosen
            .iter()
            .map(|&i| present[i].expect("chosen shard must be present"))
            .collect();
        let mut data_shards: Vec<Vec<u8>> = Vec::with_capacity(self.data);
        for j in 0..self.data {
            data_shards.push(slice::linear_combination(
                decode.row(j),
                &chosen_shards,
                shard_len,
            ));
        }
        // Re-encode to obtain every shard (cheaper than special-casing which
        // parities were lost, and sizes here are tiny).
        self.encode(&data_shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| (i * 37 + j * 11 + 5) as u8).collect())
            .collect()
    }

    #[test]
    fn constructor_validation() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(3, 0).is_err());
        assert!(ReedSolomon::new(200, 100).is_err());
        assert!(ReedSolomon::new(10, 4).is_ok());
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 32);
        let coded = rs.encode(&data).unwrap();
        assert_eq!(coded.len(), 6);
        assert_eq!(&coded[..4], data.as_slice());
        assert!(rs.verify(&coded).unwrap());
    }

    #[test]
    fn single_parity_protects_any_single_loss() {
        // With one parity shard, losing any single shard must be recoverable.
        let rs = ReedSolomon::new(5, 1).unwrap();
        assert!(rs.parity_row(0).iter().all(|c| !c.is_zero()));
        let data = sample_data(5, 16);
        let coded = rs.encode(&data).unwrap();
        for lost in 0..6 {
            let present: Vec<Option<&[u8]>> = coded
                .iter()
                .enumerate()
                .map(|(i, s)| (i != lost).then_some(s.as_slice()))
                .collect();
            assert_eq!(rs.reconstruct(&present, 16).unwrap(), coded);
        }
    }

    #[test]
    fn reconstruct_from_every_possible_loss_pattern() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = sample_data(5, 24);
        let coded = rs.encode(&data).unwrap();
        let n = rs.total_shards();
        // Every subset of up to 3 lost shards must be recoverable.
        for a in 0..n {
            for b in a..n {
                for c in b..n {
                    let mut present: Vec<Option<&[u8]>> =
                        coded.iter().map(|s| Some(s.as_slice())).collect();
                    present[a] = None;
                    present[b] = None;
                    present[c] = None;
                    let rec = rs.reconstruct(&present, 24).unwrap();
                    assert_eq!(rec, coded, "failed for losses {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn reconstruct_fails_with_too_few_shards() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 8);
        let coded = rs.encode(&data).unwrap();
        let present: Vec<Option<&[u8]>> = coded
            .iter()
            .enumerate()
            .map(|(i, s)| if i < 3 { Some(s.as_slice()) } else { None })
            .collect();
        assert_eq!(
            rs.reconstruct(&present, 8),
            Err(GfError::TooFewShards {
                needed: 4,
                present: 3
            })
        );
    }

    #[test]
    fn shard_count_and_length_validation() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        assert!(rs.encode(&sample_data(2, 8)).is_err());
        let mut bad = sample_data(3, 8);
        bad[1].push(0);
        assert_eq!(rs.encode(&bad), Err(GfError::UnequalShardLengths));
        assert!(rs.verify(&sample_data(3, 8)).is_err());
        let coded = rs.encode(&sample_data(3, 8)).unwrap();
        let mut present: Vec<Option<&[u8]>> = coded.iter().map(|s| Some(s.as_slice())).collect();
        present.pop();
        assert!(rs.reconstruct(&present, 8).is_err());
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut coded = rs.encode(&sample_data(4, 16)).unwrap();
        assert!(rs.verify(&coded).unwrap());
        coded[5][0] ^= 0xff;
        assert!(!rs.verify(&coded).unwrap());
    }

    #[test]
    fn encode_parity_matches_encode_tail() {
        let rs = ReedSolomon::new(6, 2).unwrap();
        let data = sample_data(6, 10);
        let coded = rs.encode(&data).unwrap();
        let parity = rs.encode_parity(&data).unwrap();
        assert_eq!(parity.as_slice(), &coded[6..]);
    }

    #[test]
    fn accessors() {
        let rs = ReedSolomon::new(9, 1).unwrap();
        assert_eq!(rs.data_shards(), 9);
        assert_eq!(rs.parity_shards(), 1);
        assert_eq!(rs.total_shards(), 10);
        assert!((rs.storage_overhead() - 10.0 / 9.0).abs() < 1e-12);
        assert_eq!(rs.generator().rows(), 10);
        assert_eq!(rs.generator().cols(), 9);
    }
}
