//! A systematic Reed–Solomon erasure codec over GF(2^8).
//!
//! The codec turns `k` equally-sized data shards into `k + m` coded shards
//! (the first `k` are the data shards verbatim) such that *any* `k` of the
//! coded shards suffice to reconstruct the data. It is used in two places in
//! the reproduction:
//!
//! * as the stand-alone single-copy Reed–Solomon baseline (the kind of code
//!   Facebook's HDFS-RAID applies to cold data, mentioned in the paper's
//!   introduction), and
//! * to compute the two *global parity* blocks of the heptagon-local code,
//!   which the paper describes as "Galois field arithmetic as in the case of
//!   RAID-6".

use serde::{Deserialize, Serialize};

use crate::slice;
use crate::{Gf256, GfError, Matrix};

/// A systematic Reed–Solomon codec with `data` data shards and `parity`
/// parity shards.
///
/// # Example
///
/// ```
/// use drc_gf::ReedSolomon;
///
/// # fn main() -> Result<(), drc_gf::GfError> {
/// let rs = ReedSolomon::new(6, 3)?;
/// assert_eq!(rs.total_shards(), 9);
/// assert!((rs.storage_overhead() - 1.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReedSolomon {
    data: usize,
    parity: usize,
    /// Full generator matrix: identity on top, parity rows below.
    generator: Matrix,
}

impl ReedSolomon {
    /// Creates a codec with the given numbers of data and parity shards.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::InvalidShardCounts`] if either count is zero or the
    /// total exceeds 256 (the construction would run out of distinct
    /// evaluation points).
    pub fn new(data: usize, parity: usize) -> Result<Self, GfError> {
        if data == 0 || parity == 0 || data + parity > 256 {
            return Err(GfError::InvalidShardCounts { data, parity });
        }
        // Build a systematic generator from a Vandermonde matrix: take the
        // (data+parity) x data Vandermonde matrix, then right-multiply by the
        // inverse of its top square so the top block becomes the identity.
        let vand = Matrix::vandermonde(data + parity, data)?;
        let top: Vec<usize> = (0..data).collect();
        let top_inv = vand.select_rows(&top).inverse()?;
        let generator = vand.checked_mul(&top_inv)?;
        Ok(ReedSolomon {
            data,
            parity,
            generator,
        })
    }

    /// Number of data shards `k`.
    pub fn data_shards(&self) -> usize {
        self.data
    }

    /// Number of parity shards `m`.
    pub fn parity_shards(&self) -> usize {
        self.parity
    }

    /// Total number of coded shards `k + m`.
    pub fn total_shards(&self) -> usize {
        self.data + self.parity
    }

    /// Storage overhead: stored shards per data shard.
    pub fn storage_overhead(&self) -> f64 {
        self.total_shards() as f64 / self.data as f64
    }

    /// Returns the full systematic generator matrix (`(k+m) × k`).
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// Returns the coefficients of parity shard `p` (`0 <= p < parity`) over
    /// the data shards.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.parity_shards()`.
    pub fn parity_row(&self, p: usize) -> &[Gf256] {
        assert!(p < self.parity, "parity row index out of bounds");
        self.generator.row(self.data + p)
    }

    /// Encodes data shards into `k + m` coded shards.
    ///
    /// The first `k` output shards are copies of the input data shards.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of shards is not `k` or shard lengths
    /// differ.
    pub fn encode<S: AsRef<[u8]>>(&self, shards: &[S]) -> Result<Vec<Vec<u8>>, GfError> {
        let len = self.validate_data_shards(shards)?;
        let mut out: Vec<Vec<u8>> = shards.iter().map(|s| s.as_ref().to_vec()).collect();
        out.resize(self.total_shards(), vec![0u8; len]);
        let (data, parity) = out.split_at_mut(self.data);
        self.encode_into(&*data, parity)?;
        Ok(out)
    }

    /// Computes the parity shards into caller-owned output buffers, without
    /// allocating.
    ///
    /// `parity_out` must hold exactly `m` buffers, each of the common shard
    /// length; they are fully overwritten (no zeroing needed beforehand).
    /// This is the hot encode path: it applies the whole parity sub-matrix
    /// through the fused, cache-blocked [`slice::matrix_mul_into`] and
    /// performs **no heap allocation** — per block or otherwise.
    ///
    /// # Errors
    ///
    /// Returns an error if the number or lengths of the data shards are
    /// wrong, or if `parity_out` does not match the parity count / shard
    /// length.
    pub fn encode_into<S, B>(&self, shards: &[S], parity_out: &mut [B]) -> Result<(), GfError>
    where
        S: AsRef<[u8]>,
        B: AsMut<[u8]>,
    {
        let len = self.validate_data_shards(shards)?;
        if parity_out.len() != self.parity {
            return Err(GfError::WrongShardCount {
                expected: self.parity,
                found: parity_out.len(),
            });
        }
        if parity_out.iter_mut().any(|b| b.as_mut().len() != len) {
            return Err(GfError::UnequalShardLengths);
        }
        let coeffs = self.generator.rows_flat(self.data, self.total_shards());
        slice::matrix_mul_into(coeffs, self.data, shards, parity_out);
        Ok(())
    }

    /// Computes only the parity shards for the given data shards.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`ReedSolomon::encode`].
    pub fn encode_parity<S: AsRef<[u8]>>(&self, shards: &[S]) -> Result<Vec<Vec<u8>>, GfError> {
        let len = self.validate_data_shards(shards)?;
        let mut parity = vec![vec![0u8; len]; self.parity];
        self.encode_into(shards, &mut parity)?;
        Ok(parity)
    }

    /// Checks shard count and length consistency, returning the shard length.
    fn validate_data_shards<S: AsRef<[u8]>>(&self, shards: &[S]) -> Result<usize, GfError> {
        if shards.len() != self.data {
            return Err(GfError::WrongShardCount {
                expected: self.data,
                found: shards.len(),
            });
        }
        let len = shards[0].as_ref().len();
        if shards.iter().any(|s| s.as_ref().len() != len) {
            return Err(GfError::UnequalShardLengths);
        }
        Ok(len)
    }

    /// Verifies that a complete set of shards is consistent with the code.
    ///
    /// # Errors
    ///
    /// Returns an error if the shard count or lengths are wrong.
    pub fn verify<S: AsRef<[u8]>>(&self, shards: &[S]) -> Result<bool, GfError> {
        if shards.len() != self.total_shards() {
            return Err(GfError::WrongShardCount {
                expected: self.total_shards(),
                found: shards.len(),
            });
        }
        let data: Vec<&[u8]> = shards[..self.data].iter().map(|s| s.as_ref()).collect();
        let expected = self.encode(&data)?;
        Ok(expected
            .iter()
            .zip(shards)
            .all(|(e, s)| e.as_slice() == s.as_ref()))
    }

    /// Reconstructs all `k + m` shards from any `k` surviving shards.
    ///
    /// `present[i]` is `Some(bytes)` if coded shard `i` survives and `None`
    /// otherwise; `shard_len` gives the length every shard must have (used
    /// when all data shards are missing).
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than `k` shards are present, lengths are
    /// inconsistent, or the input vector is not of length `k + m`.
    pub fn reconstruct(
        &self,
        present: &[Option<&[u8]>],
        shard_len: usize,
    ) -> Result<Vec<Vec<u8>>, GfError> {
        let mut out = vec![vec![0u8; shard_len]; self.total_shards()];
        self.reconstruct_into(present, shard_len, &mut out)?;
        Ok(out)
    }

    /// Reconstructs all `k + m` shards into caller-owned output buffers.
    ///
    /// Semantics match [`ReedSolomon::reconstruct`]; `out` must hold
    /// `k + m` buffers of length `shard_len`, which are fully overwritten.
    /// No block-sized buffers are allocated: surviving data shards are
    /// copied, missing ones decoded directly into their output buffer, and
    /// parities re-encoded through the fused zero-allocation path (only the
    /// small `k × k` decoding matrix is heap-allocated, and only when a data
    /// shard is actually missing).
    ///
    /// # Errors
    ///
    /// As [`ReedSolomon::reconstruct`], plus an error if `out` has the wrong
    /// shard count or lengths.
    pub fn reconstruct_into<B>(
        &self,
        present: &[Option<&[u8]>],
        shard_len: usize,
        out: &mut [B],
    ) -> Result<(), GfError>
    where
        B: AsRef<[u8]> + AsMut<[u8]>,
    {
        if present.len() != self.total_shards() {
            return Err(GfError::WrongShardCount {
                expected: self.total_shards(),
                found: present.len(),
            });
        }
        if out.len() != self.total_shards() {
            return Err(GfError::WrongShardCount {
                expected: self.total_shards(),
                found: out.len(),
            });
        }
        if out.iter_mut().any(|b| b.as_mut().len() != shard_len) {
            return Err(GfError::UnequalShardLengths);
        }
        let available: Vec<usize> = present
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect();
        if available.len() < self.data {
            return Err(GfError::TooFewShards {
                needed: self.data,
                present: available.len(),
            });
        }
        if present.iter().flatten().any(|s| s.len() != shard_len) {
            return Err(GfError::UnequalShardLengths);
        }

        let (data_out, parity_out) = out.split_at_mut(self.data);

        if (0..self.data).all(|j| present[j].is_some()) {
            // All data shards survive: plain copies, no matrix inversion.
            for (j, buf) in data_out.iter_mut().enumerate() {
                buf.as_mut()
                    // drc-lint: allow(panic-hygiene): this branch requires all data
                    // shards present (the `all(is_some)` condition above).
                    .copy_from_slice(present[j].expect("checked present"));
            }
        } else {
            // Select k surviving rows of the generator and invert them to
            // obtain the decoding matrix.
            let chosen = &available[..self.data];
            let sub = self.generator.select_rows(chosen);
            let decode = sub.inverse()?;
            let chosen_shards: Vec<&[u8]> = chosen
                .iter()
                // drc-lint: allow(panic-hygiene): `chosen` indexes only shards that
                // were present when the row subset was selected above.
                .map(|&i| present[i].expect("chosen shard must be present"))
                .collect();
            // Recover each data shard directly into its output buffer:
            // data_j = sum_i decode[j][i] * shard[chosen[i]]. Surviving data
            // shards are cheaper to copy than to re-derive.
            for (j, buf) in data_out.iter_mut().enumerate() {
                match present[j] {
                    Some(shard) => buf.as_mut().copy_from_slice(shard),
                    None => {
                        slice::linear_combination_into(decode.row(j), &chosen_shards, buf.as_mut())
                    }
                }
            }
        }
        // Re-encode every parity from the recovered data (fused, no
        // allocation); restoring surviving parities by copy would cost the
        // same memory traffic.
        self.encode_into(&*data_out, parity_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| (i * 37 + j * 11 + 5) as u8).collect())
            .collect()
    }

    #[test]
    fn constructor_validation() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(3, 0).is_err());
        assert!(ReedSolomon::new(200, 100).is_err());
        assert!(ReedSolomon::new(10, 4).is_ok());
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 32);
        let coded = rs.encode(&data).unwrap();
        assert_eq!(coded.len(), 6);
        assert_eq!(&coded[..4], data.as_slice());
        assert!(rs.verify(&coded).unwrap());
    }

    #[test]
    fn single_parity_protects_any_single_loss() {
        // With one parity shard, losing any single shard must be recoverable.
        let rs = ReedSolomon::new(5, 1).unwrap();
        assert!(rs.parity_row(0).iter().all(|c| !c.is_zero()));
        let data = sample_data(5, 16);
        let coded = rs.encode(&data).unwrap();
        for lost in 0..6 {
            let present: Vec<Option<&[u8]>> = coded
                .iter()
                .enumerate()
                .map(|(i, s)| (i != lost).then_some(s.as_slice()))
                .collect();
            assert_eq!(rs.reconstruct(&present, 16).unwrap(), coded);
        }
    }

    #[test]
    fn reconstruct_from_every_possible_loss_pattern() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = sample_data(5, 24);
        let coded = rs.encode(&data).unwrap();
        let n = rs.total_shards();
        // Every subset of up to 3 lost shards must be recoverable.
        for a in 0..n {
            for b in a..n {
                for c in b..n {
                    let mut present: Vec<Option<&[u8]>> =
                        coded.iter().map(|s| Some(s.as_slice())).collect();
                    present[a] = None;
                    present[b] = None;
                    present[c] = None;
                    let rec = rs.reconstruct(&present, 24).unwrap();
                    assert_eq!(rec, coded, "failed for losses {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn reconstruct_fails_with_too_few_shards() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 8);
        let coded = rs.encode(&data).unwrap();
        let present: Vec<Option<&[u8]>> = coded
            .iter()
            .enumerate()
            .map(|(i, s)| if i < 3 { Some(s.as_slice()) } else { None })
            .collect();
        assert_eq!(
            rs.reconstruct(&present, 8),
            Err(GfError::TooFewShards {
                needed: 4,
                present: 3
            })
        );
    }

    #[test]
    fn shard_count_and_length_validation() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        assert!(rs.encode(&sample_data(2, 8)).is_err());
        let mut bad = sample_data(3, 8);
        bad[1].push(0);
        assert_eq!(rs.encode(&bad), Err(GfError::UnequalShardLengths));
        assert!(rs.verify(&sample_data(3, 8)).is_err());
        let coded = rs.encode(&sample_data(3, 8)).unwrap();
        let mut present: Vec<Option<&[u8]>> = coded.iter().map(|s| Some(s.as_slice())).collect();
        present.pop();
        assert!(rs.reconstruct(&present, 8).is_err());
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut coded = rs.encode(&sample_data(4, 16)).unwrap();
        assert!(rs.verify(&coded).unwrap());
        coded[5][0] ^= 0xff;
        assert!(!rs.verify(&coded).unwrap());
    }

    #[test]
    fn encode_parity_matches_encode_tail() {
        let rs = ReedSolomon::new(6, 2).unwrap();
        let data = sample_data(6, 10);
        let coded = rs.encode(&data).unwrap();
        let parity = rs.encode_parity(&data).unwrap();
        assert_eq!(parity.as_slice(), &coded[6..]);
    }

    #[test]
    fn accessors() {
        let rs = ReedSolomon::new(9, 1).unwrap();
        assert_eq!(rs.data_shards(), 9);
        assert_eq!(rs.parity_shards(), 1);
        assert_eq!(rs.total_shards(), 10);
        assert!((rs.storage_overhead() - 10.0 / 9.0).abs() < 1e-12);
        assert_eq!(rs.generator().rows(), 10);
        assert_eq!(rs.generator().cols(), 9);
    }
}
