use std::fmt;

/// Errors produced by Galois-field and Reed–Solomon operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GfError {
    /// Division (or inversion) of the zero element was attempted.
    DivisionByZero,
    /// A matrix operation received dimensions that do not fit the operation.
    DimensionMismatch {
        /// Textual description of the expected shape.
        expected: String,
        /// Textual description of the shape that was supplied.
        found: String,
    },
    /// The matrix is singular and cannot be inverted.
    SingularMatrix,
    /// A Reed–Solomon codec was constructed with invalid parameters.
    InvalidShardCounts {
        /// Number of data shards requested.
        data: usize,
        /// Number of parity shards requested.
        parity: usize,
    },
    /// Encode/decode was given the wrong number of shards.
    WrongShardCount {
        /// Number of shards expected by the codec.
        expected: usize,
        /// Number of shards supplied.
        found: usize,
    },
    /// Shards passed to a single call did not all have the same length.
    UnequalShardLengths,
    /// Too few shards survive to reconstruct the original data.
    TooFewShards {
        /// Number of shards required for reconstruction.
        needed: usize,
        /// Number of shards that were actually present.
        present: usize,
    },
    /// Interpolation was requested through points with duplicate x-coordinates.
    DuplicateInterpolationPoint,
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::DivisionByZero => write!(f, "division by zero in GF(2^8)"),
            GfError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            GfError::SingularMatrix => write!(f, "matrix is singular over GF(2^8)"),
            GfError::InvalidShardCounts { data, parity } => write!(
                f,
                "invalid Reed-Solomon parameters: {data} data and {parity} parity shards"
            ),
            GfError::WrongShardCount { expected, found } => {
                write!(f, "expected {expected} shards, found {found}")
            }
            GfError::UnequalShardLengths => write!(f, "shards have unequal lengths"),
            GfError::TooFewShards { needed, present } => {
                write!(
                    f,
                    "too few shards to reconstruct: need {needed}, have {present}"
                )
            }
            GfError::DuplicateInterpolationPoint => {
                write!(f, "duplicate x-coordinate in interpolation points")
            }
        }
    }
}

impl std::error::Error for GfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = vec![
            GfError::DivisionByZero,
            GfError::SingularMatrix,
            GfError::UnequalShardLengths,
            GfError::DuplicateInterpolationPoint,
            GfError::InvalidShardCounts { data: 0, parity: 1 },
            GfError::WrongShardCount {
                expected: 3,
                found: 2,
            },
            GfError::TooFewShards {
                needed: 4,
                present: 2,
            },
            GfError::DimensionMismatch {
                expected: "3x3".into(),
                found: "2x3".into(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GfError>();
    }
}
