//! Bulk GF(2^8) operations on byte slices.
//!
//! Storage blocks are megabytes of payload; encoding and repairing them means
//! applying the same field operation to every byte of a block. These helpers
//! are the building blocks used by the Reed–Solomon codec and by the XOR
//! parities of the pentagon/heptagon codes.

use crate::Gf256;

/// XOR-accumulates `src` into `dst` (`dst[i] += src[i]` over GF(2^8)).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "xor_assign requires equal-length slices"
    );
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

/// Returns the element-wise XOR of all input slices.
///
/// Returns an empty vector when `slices` is empty.
///
/// # Panics
///
/// Panics if the slices do not all have the same length.
pub fn xor_all<S: AsRef<[u8]>>(slices: &[S]) -> Vec<u8> {
    let Some(first) = slices.first() else {
        return Vec::new();
    };
    let mut out = first.as_ref().to_vec();
    for s in &slices[1..] {
        xor_assign(&mut out, s.as_ref());
    }
    out
}

/// Multiplies every byte of `data` by the scalar `coeff` in place.
pub fn scale_assign(data: &mut [u8], coeff: Gf256) {
    if coeff == Gf256::ONE {
        return;
    }
    if coeff == Gf256::ZERO {
        data.fill(0);
        return;
    }
    for b in data.iter_mut() {
        *b = Gf256::mul_bytes(*b, coeff.value());
    }
}

/// Computes `dst[i] += coeff * src[i]` over GF(2^8).
///
/// This is the fused multiply-accumulate at the heart of matrix–vector
/// encoding: a parity block is the sum of `coeff_j * data_j` over all data
/// blocks `j`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    assert_eq!(dst.len(), src.len(), "mul_acc requires equal-length slices");
    if coeff == Gf256::ZERO {
        return;
    }
    if coeff == Gf256::ONE {
        xor_assign(dst, src);
        return;
    }
    let c = coeff.value();
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= Gf256::mul_bytes(*s, c);
    }
}

/// Computes the linear combination `sum_j coeffs[j] * blocks[j]`.
///
/// Returns a zero-filled vector of length `len` when `blocks` is empty.
///
/// # Panics
///
/// Panics if `coeffs` and `blocks` have different lengths, or if any block's
/// length differs from `len`.
pub fn linear_combination<S: AsRef<[u8]>>(coeffs: &[Gf256], blocks: &[S], len: usize) -> Vec<u8> {
    assert_eq!(
        coeffs.len(),
        blocks.len(),
        "one coefficient is required per block"
    );
    let mut out = vec![0u8; len];
    for (c, b) in coeffs.iter().zip(blocks) {
        mul_acc(&mut out, b.as_ref(), *c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_assign_basic() {
        let mut a = vec![0b1010u8, 0xff, 0x00];
        xor_assign(&mut a, &[0b0110, 0xff, 0x55]);
        assert_eq!(a, vec![0b1100, 0x00, 0x55]);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn xor_assign_length_mismatch_panics() {
        let mut a = vec![0u8; 3];
        xor_assign(&mut a, &[0u8; 4]);
    }

    #[test]
    fn xor_all_handles_empty_and_single() {
        let empty: Vec<Vec<u8>> = vec![];
        assert!(xor_all(&empty).is_empty());
        assert_eq!(xor_all(&[vec![1u8, 2, 3]]), vec![1, 2, 3]);
    }

    #[test]
    fn xor_all_is_parity() {
        let blocks = vec![vec![1u8, 2, 3], vec![4u8, 5, 6], vec![7u8, 8, 9]];
        let p = xor_all(&blocks);
        assert_eq!(p, vec![1 ^ 4 ^ 7, 2 ^ 5 ^ 8, 3 ^ 6 ^ 9]);
        // XOR of the parity with all but one block recovers the remaining block.
        let recovered = xor_all(&[p.as_slice(), blocks[0].as_slice(), blocks[2].as_slice()]);
        assert_eq!(recovered, blocks[1]);
    }

    #[test]
    fn scale_assign_special_cases() {
        let mut d = vec![1u8, 2, 3];
        scale_assign(&mut d, Gf256::ONE);
        assert_eq!(d, vec![1, 2, 3]);
        scale_assign(&mut d, Gf256::ZERO);
        assert_eq!(d, vec![0, 0, 0]);
    }

    #[test]
    fn scale_assign_matches_elementwise_mul() {
        let mut d: Vec<u8> = (0..=255).collect();
        let c = Gf256::new(0x1d);
        scale_assign(&mut d, c);
        for (i, b) in d.iter().enumerate() {
            assert_eq!(*b, (Gf256::new(i as u8) * c).value());
        }
    }

    #[test]
    fn mul_acc_matches_manual() {
        let src: Vec<u8> = (0..16).collect();
        let mut dst = vec![0xaau8; 16];
        let c = Gf256::new(7);
        let expected: Vec<u8> = dst
            .iter()
            .zip(&src)
            .map(|(d, s)| d ^ (Gf256::new(*s) * c).value())
            .collect();
        mul_acc(&mut dst, &src, c);
        assert_eq!(dst, expected);
    }

    #[test]
    fn mul_acc_zero_and_one_coefficients() {
        let src = vec![9u8, 8, 7];
        let mut dst = vec![1u8, 2, 3];
        mul_acc(&mut dst, &src, Gf256::ZERO);
        assert_eq!(dst, vec![1, 2, 3]);
        mul_acc(&mut dst, &src, Gf256::ONE);
        assert_eq!(dst, vec![1 ^ 9, 2 ^ 8, 3 ^ 7]);
    }

    #[test]
    fn linear_combination_of_unit_vectors_selects_block() {
        let blocks = vec![vec![1u8, 1, 1], vec![2u8, 2, 2], vec![3u8, 3, 3]];
        let coeffs = [Gf256::ZERO, Gf256::ONE, Gf256::ZERO];
        assert_eq!(linear_combination(&coeffs, &blocks, 3), vec![2, 2, 2]);
    }

    #[test]
    fn linear_combination_empty_inputs() {
        let blocks: Vec<Vec<u8>> = vec![];
        let coeffs: Vec<Gf256> = vec![];
        assert_eq!(linear_combination(&coeffs, &blocks, 4), vec![0u8; 4]);
    }
}
