//! Bulk GF(2^8) operations on byte slices.
//!
//! Storage blocks are megabytes of payload; encoding and repairing them means
//! applying the same field operation to every byte of a block. Every function
//! here dispatches to the widest SIMD [`crate::kernel`] the host CPU
//! supports (GFNI / AVX-512VBMI / AVX2 / SSSE3 / NEON / portable), selected
//! once per process.
//!
//! Two API tiers:
//!
//! * the original allocating helpers ([`xor_all`], [`linear_combination`])
//!   used by cold paths and tests, and
//! * zero-allocation `*_into` variants ([`linear_combination_into`],
//!   [`matrix_mul_into`]) where the caller owns every output buffer —
//!   [`matrix_mul_into`] additionally applies a whole parity sub-matrix per
//!   cache tile (all outputs advance together through one [`TILE`]-sized
//!   window of the inputs) instead of making one full pass per output row,
//!   which is what the Reed–Solomon encoder and the erasure-code stripe
//!   encoders build on.
//!
//! # Shard parallelism
//!
//! Blocks of at least [`PAR_ENGAGE_MIN`] bytes (enough total work to
//! amortise one pool dispatch) are split — giving every worker at least a
//! [`PAR_MIN_LEN`] share, see [`workers_for`] — into [`TILE`]-aligned byte
//! ranges and
//! spread over the workspace worker pool (the vendored `rayon` stand-in — a
//! persistent pool of condvar-parked workers; worker count from
//! `DRC_SIM_THREADS`, the sibling knob of `DRC_GF_KERNEL`).
//! Every output byte is computed by the same sequence of field operations
//! regardless of the split, so parallel and single-threaded runs are
//! **byte-identical** — `DRC_SIM_THREADS=1` (or short blocks) takes the
//! serial path, which remains allocation-free; the parallel path allocates
//! only per-range bookkeeping, never block-sized buffers.

use crate::kernel;
use crate::Gf256;

/// Tile width (bytes) for the fused matrix–vector product: small enough that
/// one source tile plus a handful of output tiles stay resident in L1 while
/// every parity row consumes the source tile.
pub const TILE: usize = 4096;

/// Minimum bytes of work *per worker* when splitting across the pool: a
/// woken worker's share of the arithmetic must dwarf its share of the
/// dispatch. At the ~10 GB/s these kernels sustain, 16 KiB is ~1.6 µs of
/// GF work per worker against a sub-microsecond per-worker wake — the
/// floor below which an extra worker stops paying for itself.
///
/// The vendored pool keeps its workers parked on a condvar between calls
/// (see `vendor/rayon`), so this per-worker floor can sit at 16 KiB instead
/// of the 64 KiB the spawn-per-call pool needed. Whether to parallelise *at
/// all* is a separate question — see [`PAR_ENGAGE_MIN`].
pub const PAR_MIN_LEN: usize = 4 * TILE;

/// Minimum *total* block length for engaging the pool at all: the scope
/// itself pays the whole dispatch round-trip (measured ~0.5 µs at width 2,
/// ~1.3 µs at width 4 — `pool_dispatch_ns` in `BENCH_sim.json`), so the
/// time a split can save must clear that fixed cost by a wide margin. A
/// 2-way split of 64 KiB saves ~3.2 µs of ~6.4 µs serial work — several
/// times the dispatch even before bandwidth contention; at half this
/// length the saving (~1.6 µs) is too thin a multiple to survive it, and
/// measured 2-thread throughput drops below serial. Blocks shorter than
/// this stay on the serial, allocation-free path regardless of pool width.
pub const PAR_ENGAGE_MIN: usize = 16 * TILE;

/// How many pool workers a `len`-byte operation should actually use: zero
/// (serial) for blocks under [`PAR_ENGAGE_MIN`], otherwise capped so every
/// worker gets at least [`PAR_MIN_LEN`] bytes. A result below 2 means
/// "stay serial".
pub fn workers_for(len: usize) -> usize {
    if len < PAR_ENGAGE_MIN {
        return 0;
    }
    rayon::current_num_threads().min(len / PAR_MIN_LEN)
}

/// Splits `len` bytes into at most `workers` contiguous `(start, end)`
/// ranges with [`TILE`]-aligned interior boundaries (the last range takes
/// the slack). This is the splitting the parallel paths here use; it is
/// public so sibling crates can spread their own per-byte-range work over
/// the same worker pool with identical chunking.
pub fn par_ranges(len: usize, workers: usize) -> impl Iterator<Item = (usize, usize)> {
    // A zero worker count (e.g. `workers_for` on a short buffer) means "one
    // serial range", not a division by zero.
    let chunk = len.div_ceil(workers.max(1)).div_ceil(TILE).max(1) * TILE;
    (0..len.div_ceil(chunk)).map(move |i| (i * chunk, ((i + 1) * chunk).min(len)))
}

/// XOR-accumulates `src` into `dst` (`dst[i] += src[i]` over GF(2^8)).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "xor_assign requires equal-length slices"
    );
    kernel::active().xor_assign(dst, src);
}

/// Returns the element-wise XOR of all input slices.
///
/// Returns an empty vector when `slices` is empty.
///
/// # Panics
///
/// Panics if the slices do not all have the same length.
pub fn xor_all<S: AsRef<[u8]>>(slices: &[S]) -> Vec<u8> {
    let Some(first) = slices.first() else {
        return Vec::new();
    };
    let mut out = first.as_ref().to_vec();
    for s in &slices[1..] {
        xor_assign(&mut out, s.as_ref());
    }
    out
}

/// Multiplies every byte of `data` by the scalar `coeff` in place.
pub fn scale_assign(data: &mut [u8], coeff: Gf256) {
    if coeff == Gf256::ONE {
        return;
    }
    if coeff == Gf256::ZERO {
        data.fill(0);
        return;
    }
    kernel::active().scale_assign(data, coeff.value());
}

/// Computes `dst[i] += coeff * src[i]` over GF(2^8).
///
/// This is the fused multiply-accumulate at the heart of matrix–vector
/// encoding: a parity block is the sum of `coeff_j * data_j` over all data
/// blocks `j`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc(dst: &mut [u8], src: &[u8], coeff: Gf256) {
    assert_eq!(dst.len(), src.len(), "mul_acc requires equal-length slices");
    if coeff == Gf256::ZERO {
        return;
    }
    if coeff == Gf256::ONE {
        kernel::active().xor_assign(dst, src);
        return;
    }
    kernel::active().mul_acc(dst, src, coeff.value());
}

/// Computes the linear combination `sum_j coeffs[j] * blocks[j]`.
///
/// Returns a zero-filled vector of length `len` when `blocks` is empty.
///
/// # Panics
///
/// Panics if `coeffs` and `blocks` have different lengths, or if any block's
/// length differs from `len`.
pub fn linear_combination<S: AsRef<[u8]>>(coeffs: &[Gf256], blocks: &[S], len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    linear_combination_into(coeffs, blocks, &mut out);
    out
}

/// Computes `out = sum_j coeffs[j] * blocks[j]` into a caller-owned buffer.
///
/// Allocation-free: `out` is fully overwritten (it does not need to be
/// zeroed beforehand).
///
/// # Panics
///
/// Panics if `coeffs` and `blocks` have different lengths, or if any block's
/// length differs from `out.len()`.
pub fn linear_combination_into<S: AsRef<[u8]>>(coeffs: &[Gf256], blocks: &[S], out: &mut [u8]) {
    assert_eq!(
        coeffs.len(),
        blocks.len(),
        "one coefficient is required per block"
    );
    let workers = workers_for(out.len());
    if workers > 1 && !blocks.is_empty() {
        let len = out.len();
        let views: Vec<&[u8]> = blocks.iter().map(|b| b.as_ref()).collect();
        for b in &views {
            assert_eq!(b.len(), len, "blocks must match the output length");
        }
        let views = &views;
        rayon::scope(|s| {
            let mut rest = &mut *out;
            for (start, end) in par_ranges(len, workers) {
                let (head, tail) = rest.split_at_mut(end - start);
                rest = tail;
                s.spawn(move |_| {
                    head.fill(0);
                    for (c, b) in coeffs.iter().zip(views) {
                        mul_acc(head, &b[start..end], *c);
                    }
                });
            }
        });
        return;
    }
    out.fill(0);
    for (c, b) in coeffs.iter().zip(blocks) {
        mul_acc(out, b.as_ref(), *c);
    }
}

/// Fused, cache-blocked matrix × block-vector product:
/// `outs[p] = sum_j coeffs[p * k + j] * blocks[j]` for every output row `p`.
///
/// `coeffs` is a row-major `outs.len() × k` coefficient matrix (one row per
/// output block). Instead of computing each output with a separate full pass
/// over the inputs, the product walks the blocks one [`TILE`] at a time and
/// applies the *whole* sub-matrix to that tile, so each source tile is read
/// from L1 once per output row instead of once per output row per pass, and
/// the output tiles stay cache-resident across all `k` accumulations.
///
/// Callers own every buffer; `outs` are fully overwritten. Blocks large
/// enough to feed several workers (see [`workers_for`]) are additionally
/// split into TILE-aligned ranges across the worker pool (byte-identical to
/// the serial path); the serial path performs no heap allocation.
///
/// # Panics
///
/// Panics if `blocks.len() != k`, `coeffs.len() != outs.len() * k`, or any
/// block/output length differs from the common block length.
pub fn matrix_mul_into<S, B>(coeffs: &[Gf256], k: usize, blocks: &[S], outs: &mut [B])
where
    S: AsRef<[u8]>,
    B: AsMut<[u8]>,
{
    assert_eq!(blocks.len(), k, "one block per matrix column is required");
    assert_eq!(
        coeffs.len(),
        outs.len() * k,
        "coefficient matrix must be outs.len() x k"
    );
    let len = blocks
        .first()
        .map(|b| b.as_ref().len())
        .unwrap_or_else(|| outs.first_mut().map(|o| o.as_mut().len()).unwrap_or(0));
    for b in blocks {
        assert_eq!(b.as_ref().len(), len, "blocks must have equal lengths");
    }
    for o in outs.iter_mut() {
        assert_eq!(o.as_mut().len(), len, "outputs must match the block length");
    }
    let workers = workers_for(len);
    if workers > 1 && !outs.is_empty() && k > 0 {
        matrix_mul_into_parallel(coeffs, k, blocks, outs, len, workers);
        return;
    }
    for o in outs.iter_mut() {
        o.as_mut().fill(0);
    }
    let kern = kernel::active();
    let mut start = 0;
    while start < len {
        let end = (start + TILE).min(len);
        for (j, block) in blocks.iter().enumerate() {
            let src = &block.as_ref()[start..end];
            for (p, out) in outs.iter_mut().enumerate() {
                let c = coeffs[p * k + j];
                if c == Gf256::ZERO {
                    continue;
                }
                let dst = &mut out.as_mut()[start..end];
                if c == Gf256::ONE {
                    kern.xor_assign(dst, src);
                } else {
                    kern.mul_acc(dst, src, c.value());
                }
            }
        }
        start = end;
    }
}

/// The parallel arm of [`matrix_mul_into`]: every output buffer is split at
/// the same TILE-aligned boundaries, and each byte range (with its window of
/// every output) becomes one worker-pool task running the same fused tile
/// loop. Ranges are disjoint, so the result is byte-identical to the serial
/// path; only per-range bookkeeping is allocated.
fn matrix_mul_into_parallel<S, B>(
    coeffs: &[Gf256],
    k: usize,
    blocks: &[S],
    outs: &mut [B],
    len: usize,
    workers: usize,
) where
    S: AsRef<[u8]>,
    B: AsMut<[u8]>,
{
    let views: Vec<&[u8]> = blocks.iter().map(|b| b.as_ref()).collect();
    let ranges: Vec<(usize, usize)> = par_ranges(len, workers).collect();
    let mut chunked: Vec<Vec<&mut [u8]>> = ranges
        .iter()
        .map(|_| Vec::with_capacity(outs.len()))
        .collect();
    for o in outs.iter_mut() {
        let mut rest = o.as_mut();
        for (ci, (start, end)) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(end - start);
            chunked[ci].push(head);
            rest = tail;
        }
    }
    let views = &views;
    let ranges = &ranges;
    rayon::scope(|s| {
        for (ci, mut window) in chunked.into_iter().enumerate() {
            let (start, end) = ranges[ci];
            s.spawn(move |_| matrix_mul_window(coeffs, k, views, start, end, &mut window));
        }
    });
}

/// One independent matrix × block-vector product inside a
/// [`matrix_mul_batch`] call: a row-major `outs.len() × k` coefficient
/// matrix applied to `k` equal-length source slices, writing `outs.len()`
/// equal-length outputs (the same contract as [`matrix_mul_into`]).
///
/// The sources and outputs are plain borrowed slices so callers can batch
/// work over buffers of heterogeneous ownership (reference-counted block
/// handles as inputs, freshly allocated rebuild buffers as outputs).
pub struct MatrixMulTask<'a> {
    /// Row-major `outs.len() × k` coefficient matrix.
    pub coeffs: &'a [Gf256],
    /// Number of source blocks (matrix columns).
    pub k: usize,
    /// The `k` source blocks, all of one common length.
    pub sources: Vec<&'a [u8]>,
    /// The output blocks, each of the sources' common length.
    pub outs: Vec<&'a mut [u8]>,
}

impl MatrixMulTask<'_> {
    fn len(&self) -> usize {
        self.sources
            .first()
            .map(|s| s.len())
            .or_else(|| self.outs.first().map(|o| o.len()))
            .unwrap_or(0)
    }

    fn validate(&self) {
        assert_eq!(
            self.sources.len(),
            self.k,
            "one source per matrix column is required"
        );
        assert_eq!(
            self.coeffs.len(),
            self.outs.len() * self.k,
            "coefficient matrix must be outs.len() x k"
        );
        let len = self.len();
        for s in &self.sources {
            assert_eq!(s.len(), len, "sources must have equal lengths");
        }
        for o in &self.outs {
            assert_eq!(o.len(), len, "outputs must match the source length");
        }
    }
}

/// One pool unit of a batched product: the owning task's coefficients and
/// source count, its source payloads, the `[start, end)` byte range, and
/// the output windows covering exactly that range.
type BatchUnit<'a> = (
    &'a [Gf256],
    usize,
    &'a [&'a [u8]],
    usize,
    usize,
    Vec<&'a mut [u8]>,
);

/// Runs many independent matrix × block-vector products as **one** worker
/// pool dispatch, splitting the pool across the *total* bytes of the batch.
///
/// [`matrix_mul_into`] decides whether to engage the pool from one
/// product's block length, so a caller looping over many small stripes
/// (e.g. a repair pass rebuilding chunk-sized pieces of hundreds of
/// stripes) either stays serial per stripe or pays one dispatch per
/// stripe. This entry point makes the engagement decision on the batch:
/// when `Σ len` clears [`PAR_ENGAGE_MIN`], every task is cut into
/// [`TILE`]-aligned byte ranges and all `(task, range)` units run under a
/// single [`rayon::scope`], so the pool is saturated across stripes even
/// when each individual product is far below the per-block threshold.
///
/// Tiles never interact — each output byte is produced by the same
/// sequence of field operations regardless of the split — so the result is
/// **byte-identical** to calling [`matrix_mul_into`] on each task alone,
/// at any pool width.
///
/// # Panics
///
/// Panics if any task violates the [`matrix_mul_into`] shape contract.
pub fn matrix_mul_batch(tasks: &mut [MatrixMulTask<'_>]) {
    for task in tasks.iter() {
        task.validate();
    }
    let total: usize = tasks.iter().map(|t| t.len()).sum();
    let workers = workers_for(total);
    if workers > 1 {
        // One TILE-aligned target share per worker, measured on the batch.
        let share = total.div_ceil(workers).div_ceil(TILE).max(1) * TILE;
        let mut units: Vec<BatchUnit<'_>> = Vec::new();
        for task in tasks.iter_mut() {
            let len = task.len();
            let ranges: Vec<(usize, usize)> = (0..len.div_ceil(share).max(usize::from(len == 0)))
                .map(|i| (i * share, ((i + 1) * share).min(len)))
                .collect();
            let mut rests: Vec<&mut [u8]> = task.outs.iter_mut().map(|o| &mut o[..]).collect();
            for &(start, end) in &ranges {
                let mut window = Vec::with_capacity(rests.len());
                for rest in rests.iter_mut() {
                    let taken = std::mem::take(rest);
                    let (head, tail) = taken.split_at_mut(end - start);
                    window.push(head);
                    *rest = tail;
                }
                units.push((task.coeffs, task.k, &task.sources, start, end, window));
            }
        }
        rayon::scope(|s| {
            for (coeffs, k, sources, start, end, mut window) in units {
                s.spawn(move |_| matrix_mul_window(coeffs, k, sources, start, end, &mut window));
            }
        });
        return;
    }
    for task in tasks.iter_mut() {
        let len = task.len();
        matrix_mul_window(task.coeffs, task.k, &task.sources, 0, len, &mut task.outs);
    }
}

/// Applies the whole coefficient sub-matrix to the byte range
/// `offset..limit` of the source blocks, writing the matching windows of the
/// outputs (`window[p]` is `outs[p][offset..limit]`).
fn matrix_mul_window(
    coeffs: &[Gf256],
    k: usize,
    blocks: &[&[u8]],
    offset: usize,
    limit: usize,
    window: &mut [&mut [u8]],
) {
    let kern = kernel::active();
    for o in window.iter_mut() {
        o.fill(0);
    }
    let mut start = offset;
    while start < limit {
        let end = (start + TILE).min(limit);
        for (j, block) in blocks.iter().enumerate() {
            let src = &block[start..end];
            for (p, out) in window.iter_mut().enumerate() {
                let c = coeffs[p * k + j];
                if c == Gf256::ZERO {
                    continue;
                }
                let dst = &mut out[start - offset..end - offset];
                if c == Gf256::ONE {
                    kern.xor_assign(dst, src);
                } else {
                    kern.mul_acc(dst, src, c.value());
                }
            }
        }
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_assign_basic() {
        let mut a = vec![0b1010u8, 0xff, 0x00];
        xor_assign(&mut a, &[0b0110, 0xff, 0x55]);
        assert_eq!(a, vec![0b1100, 0x00, 0x55]);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn xor_assign_length_mismatch_panics() {
        let mut a = vec![0u8; 3];
        xor_assign(&mut a, &[0u8; 4]);
    }

    #[test]
    fn xor_all_handles_empty_and_single() {
        let empty: Vec<Vec<u8>> = vec![];
        assert!(xor_all(&empty).is_empty());
        assert_eq!(xor_all(&[vec![1u8, 2, 3]]), vec![1, 2, 3]);
    }

    #[test]
    fn xor_all_is_parity() {
        let blocks = vec![vec![1u8, 2, 3], vec![4u8, 5, 6], vec![7u8, 8, 9]];
        let p = xor_all(&blocks);
        assert_eq!(p, vec![1 ^ 4 ^ 7, 2 ^ 5 ^ 8, 3 ^ 6 ^ 9]);
        // XOR of the parity with all but one block recovers the remaining block.
        let recovered = xor_all(&[p.as_slice(), blocks[0].as_slice(), blocks[2].as_slice()]);
        assert_eq!(recovered, blocks[1]);
    }

    #[test]
    fn scale_assign_special_cases() {
        let mut d = vec![1u8, 2, 3];
        scale_assign(&mut d, Gf256::ONE);
        assert_eq!(d, vec![1, 2, 3]);
        scale_assign(&mut d, Gf256::ZERO);
        assert_eq!(d, vec![0, 0, 0]);
    }

    #[test]
    fn scale_assign_matches_elementwise_mul() {
        let mut d: Vec<u8> = (0..=255).collect();
        let c = Gf256::new(0x1d);
        scale_assign(&mut d, c);
        for (i, b) in d.iter().enumerate() {
            assert_eq!(*b, (Gf256::new(i as u8) * c).value());
        }
    }

    #[test]
    fn mul_acc_matches_manual() {
        let src: Vec<u8> = (0..16).collect();
        let mut dst = vec![0xaau8; 16];
        let c = Gf256::new(7);
        let expected: Vec<u8> = dst
            .iter()
            .zip(&src)
            .map(|(d, s)| d ^ (Gf256::new(*s) * c).value())
            .collect();
        mul_acc(&mut dst, &src, c);
        assert_eq!(dst, expected);
    }

    #[test]
    fn mul_acc_zero_and_one_coefficients() {
        let src = vec![9u8, 8, 7];
        let mut dst = vec![1u8, 2, 3];
        mul_acc(&mut dst, &src, Gf256::ZERO);
        assert_eq!(dst, vec![1, 2, 3]);
        mul_acc(&mut dst, &src, Gf256::ONE);
        assert_eq!(dst, vec![1 ^ 9, 2 ^ 8, 3 ^ 7]);
    }

    #[test]
    fn linear_combination_of_unit_vectors_selects_block() {
        let blocks = vec![vec![1u8, 1, 1], vec![2u8, 2, 2], vec![3u8, 3, 3]];
        let coeffs = [Gf256::ZERO, Gf256::ONE, Gf256::ZERO];
        assert_eq!(linear_combination(&coeffs, &blocks, 3), vec![2, 2, 2]);
    }

    #[test]
    fn linear_combination_empty_inputs() {
        let blocks: Vec<Vec<u8>> = vec![];
        let coeffs: Vec<Gf256> = vec![];
        assert_eq!(linear_combination(&coeffs, &blocks, 4), vec![0u8; 4]);
    }

    #[test]
    fn linear_combination_into_overwrites_dirty_buffer() {
        let blocks = vec![vec![3u8; 8], vec![5u8; 8]];
        let coeffs = [Gf256::new(2), Gf256::new(7)];
        let fresh = linear_combination(&coeffs, &blocks, 8);
        let mut out = vec![0xffu8; 8];
        linear_combination_into(&coeffs, &blocks, &mut out);
        assert_eq!(out, fresh);
    }

    #[test]
    fn matrix_mul_into_matches_row_by_row() {
        // 3 outputs x 4 inputs, over lengths spanning several tiles.
        let k = 4;
        let len = 3 * TILE + 17;
        let blocks: Vec<Vec<u8>> = (0..k)
            .map(|j| (0..len).map(|i| (i * 31 + j * 7 + 1) as u8).collect())
            .collect();
        let coeffs: Vec<Gf256> = (0..3 * k)
            .map(|i| Gf256::new([0, 1, 2, 0x1d, 0x80, 255][i % 6]))
            .collect();
        let mut outs = vec![vec![0xabu8; len], vec![0xcdu8; len], vec![0xefu8; len]];
        matrix_mul_into(&coeffs, k, &blocks, &mut outs);
        for p in 0..3 {
            let row = &coeffs[p * k..(p + 1) * k];
            assert_eq!(outs[p], linear_combination(row, &blocks, len), "row {p}");
        }
    }

    #[test]
    fn workers_for_respects_both_floors() {
        rayon::with_num_threads(8, || {
            // Below the engagement floor: serial, no matter how wide the pool.
            assert_eq!(workers_for(PAR_ENGAGE_MIN - 1), 0);
            // At the floor the split engages, each worker >= PAR_MIN_LEN.
            let w = workers_for(PAR_ENGAGE_MIN);
            assert!(w >= 2, "engagement floor must actually engage, got {w}");
            assert!(PAR_ENGAGE_MIN / w >= PAR_MIN_LEN);
            // Large blocks are capped by the pool width.
            assert_eq!(workers_for(64 * PAR_ENGAGE_MIN), 8);
        });
        // A 1-wide pool never splits.
        rayon::with_num_threads(1, || assert!(workers_for(64 * PAR_ENGAGE_MIN) < 2));
    }

    #[test]
    fn parallel_split_matches_serial_byte_for_byte() {
        let k = 5;
        let len = PAR_ENGAGE_MIN + 3 * PAR_MIN_LEN + 123; // several parallel ranges + slack
        let blocks: Vec<Vec<u8>> = (0..k)
            .map(|j| (0..len).map(|i| (i * 13 + j * 29 + 5) as u8).collect())
            .collect();
        let coeffs: Vec<Gf256> = (0..3 * k).map(|i| Gf256::new((i * 7 + 1) as u8)).collect();

        let mut serial = vec![vec![0u8; len]; 3];
        rayon::with_num_threads(1, || matrix_mul_into(&coeffs, k, &blocks, &mut serial));
        let mut parallel = vec![vec![0u8; len]; 3];
        rayon::with_num_threads(4, || matrix_mul_into(&coeffs, k, &blocks, &mut parallel));
        assert_eq!(serial, parallel);

        let mut lin_serial = vec![0u8; len];
        rayon::with_num_threads(1, || {
            linear_combination_into(&coeffs[..k], &blocks, &mut lin_serial)
        });
        let mut lin_parallel = vec![0xffu8; len];
        rayon::with_num_threads(4, || {
            linear_combination_into(&coeffs[..k], &blocks, &mut lin_parallel)
        });
        assert_eq!(lin_serial, lin_parallel);
    }

    #[test]
    fn par_ranges_are_tile_aligned_and_cover() {
        // workers == 0 (what workers_for returns for short buffers) must
        // degrade to one serial range, not panic.
        assert_eq!(par_ranges(5 * TILE, 0).collect::<Vec<_>>(), [(0, 5 * TILE)]);
        for (len, workers) in [(PAR_MIN_LEN, 4), (3 * PAR_MIN_LEN + 17, 3), (TILE + 1, 8)] {
            let ranges: Vec<_> = par_ranges(len, workers).collect();
            assert!(ranges.len() <= workers);
            assert_eq!(ranges.first().map(|r| r.0), Some(0));
            assert_eq!(ranges.last().map(|r| r.1), Some(len));
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
                assert_eq!(w[0].1 % TILE, 0, "interior boundaries are TILE-aligned");
            }
        }
    }

    #[test]
    fn batch_matches_per_task_at_any_pool_width() {
        // Heterogeneous batch: task lengths straddle TILE boundaries and
        // none alone clears PAR_ENGAGE_MIN, but the batch total does — the
        // case matrix_mul_into would run serially task-by-task.
        let shapes = [
            (3usize, 2usize, 5 * TILE + 17),
            (2, 1, TILE / 2),
            (4, 3, 6 * TILE),
            (1, 1, 3 * TILE + 1),
            (5, 2, 4 * TILE + 4095),
        ];
        let sources: Vec<Vec<Vec<u8>>> = shapes
            .iter()
            .map(|&(k, _, len)| {
                (0..k)
                    .map(|j| (0..len).map(|i| (i * 31 + j * 7 + 3) as u8).collect())
                    .collect()
            })
            .collect();
        let coeffs: Vec<Vec<Gf256>> = shapes
            .iter()
            .map(|&(k, outs, _)| {
                (0..k * outs)
                    .map(|i| Gf256::new((i * 29 + 1) as u8))
                    .collect()
            })
            .collect();
        let mut expected: Vec<Vec<Vec<u8>>> = shapes
            .iter()
            .map(|&(_, outs, len)| vec![vec![0u8; len]; outs])
            .collect();
        for (i, &(k, _, _)) in shapes.iter().enumerate() {
            matrix_mul_into(&coeffs[i], k, &sources[i], &mut expected[i]);
        }
        for threads in [1, 4] {
            let mut got: Vec<Vec<Vec<u8>>> = shapes
                .iter()
                .map(|&(_, outs, len)| vec![vec![0xa5u8; len]; outs])
                .collect();
            rayon::with_num_threads(threads, || {
                let mut tasks: Vec<MatrixMulTask<'_>> = got
                    .iter_mut()
                    .enumerate()
                    .map(|(i, outs)| MatrixMulTask {
                        coeffs: &coeffs[i],
                        k: shapes[i].0,
                        sources: sources[i].iter().map(|s| s.as_slice()).collect(),
                        outs: outs.iter_mut().map(|o| o.as_mut_slice()).collect(),
                    })
                    .collect();
                matrix_mul_batch(&mut tasks);
            });
            assert_eq!(got, expected, "batch at {threads} threads");
        }
    }

    #[test]
    fn empty_batch_and_empty_task_are_noops() {
        matrix_mul_batch(&mut []);
        let mut tasks = vec![MatrixMulTask {
            coeffs: &[],
            k: 0,
            sources: vec![],
            outs: vec![],
        }];
        matrix_mul_batch(&mut tasks);
    }

    #[test]
    fn matrix_mul_into_zero_outputs_and_blocks() {
        let blocks: Vec<Vec<u8>> = vec![];
        let coeffs: Vec<Gf256> = vec![];
        let mut outs: Vec<Vec<u8>> = vec![];
        matrix_mul_into(&coeffs, 0, &blocks, &mut outs);
        let mut outs = vec![vec![7u8; 5]];
        matrix_mul_into(&[], 0, &blocks, &mut outs);
        assert_eq!(outs[0], vec![0u8; 5], "no inputs yields the zero block");
    }
}
