//! Polynomials over GF(2^8).
//!
//! Used for Lagrange-interpolation-based decoding checks and as an
//! independent reference implementation against which the matrix-based
//! Reed–Solomon codec is tested.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Gf256, GfError};

/// A polynomial over GF(2^8), stored by ascending-degree coefficients.
///
/// The representation is canonical: the highest-degree coefficient is always
/// non-zero, and the zero polynomial has an empty coefficient vector.
///
/// # Example
///
/// ```
/// use drc_gf::{Gf256, Polynomial};
///
/// // p(x) = 3 + 2x + x^2
/// let p = Polynomial::new(vec![Gf256::new(3), Gf256::new(2), Gf256::new(1)]);
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.eval(Gf256::ZERO), Gf256::new(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Polynomial {
    coeffs: Vec<Gf256>,
}

impl Polynomial {
    /// Creates a polynomial from ascending-degree coefficients.
    ///
    /// Trailing zero coefficients are trimmed so the representation is
    /// canonical.
    pub fn new(mut coeffs: Vec<Gf256>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Polynomial { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Gf256) -> Self {
        Polynomial::new(vec![c])
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Returns the degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Returns the coefficients in ascending-degree order.
    pub fn coefficients(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Evaluates the polynomial at `x` using Horner's rule.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        self.coeffs
            .iter()
            .rev()
            .fold(Gf256::ZERO, |acc, &c| acc * x + c)
    }

    /// Adds two polynomials.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![Gf256::ZERO; n];
        for (i, c) in self.coeffs.iter().enumerate() {
            out[i] += *c;
        }
        for (i, c) in other.coeffs.iter().enumerate() {
            out[i] += *c;
        }
        Polynomial::new(out)
    }

    /// Multiplies two polynomials.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.is_zero() || other.is_zero() {
            return Polynomial::zero();
        }
        let mut out = vec![Gf256::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in other.coeffs.iter().enumerate() {
                out[i + j] += *a * *b;
            }
        }
        Polynomial::new(out)
    }

    /// Multiplies the polynomial by a scalar.
    pub fn scale(&self, c: Gf256) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// Computes the unique polynomial of degree `< points.len()` passing
    /// through all `(x, y)` points, by Lagrange interpolation.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DuplicateInterpolationPoint`] if two points share an
    /// x-coordinate.
    pub fn interpolate(points: &[(Gf256, Gf256)]) -> Result<Polynomial, GfError> {
        for (i, (xi, _)) in points.iter().enumerate() {
            if points[i + 1..].iter().any(|(xj, _)| xj == xi) {
                return Err(GfError::DuplicateInterpolationPoint);
            }
        }
        let mut result = Polynomial::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            // Build the Lagrange basis polynomial L_i(x).
            let mut basis = Polynomial::constant(Gf256::ONE);
            let mut denom = Gf256::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                // (x - xj) == (x + xj) in characteristic 2.
                basis = basis.mul(&Polynomial::new(vec![xj, Gf256::ONE]));
                denom *= xi + xj;
            }
            let denom_inv = denom
                .checked_inv()
                .map_err(|_| GfError::DuplicateInterpolationPoint)?;
            result = result.add(&basis.scale(yi * denom_inv));
        }
        Ok(result)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match i {
                0 => write!(f, "{:#04x}", c.value())?,
                1 => write!(f, "{:#04x}*x", c.value())?,
                _ => write!(f, "{:#04x}*x^{i}", c.value())?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf(v: u8) -> Gf256 {
        Gf256::new(v)
    }

    #[test]
    fn canonical_form_trims_zeros() {
        let p = Polynomial::new(vec![gf(1), gf(0), gf(0)]);
        assert_eq!(p.degree(), Some(0));
        let z = Polynomial::new(vec![gf(0), gf(0)]);
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(Polynomial::default(), Polynomial::zero());
    }

    #[test]
    fn eval_horner_matches_naive() {
        let p = Polynomial::new(vec![gf(7), gf(3), gf(0), gf(5)]);
        for x in [gf(0), gf(1), gf(2), gf(0x53), gf(0xff)] {
            let naive: Gf256 = p
                .coefficients()
                .iter()
                .enumerate()
                .map(|(i, c)| *c * x.pow(i as u32))
                .sum();
            assert_eq!(p.eval(x), naive);
        }
    }

    #[test]
    fn add_is_pointwise() {
        let p = Polynomial::new(vec![gf(1), gf(2)]);
        let q = Polynomial::new(vec![gf(3), gf(0), gf(9)]);
        let s = p.add(&q);
        for x in Gf256::all_elements().step_by(17) {
            assert_eq!(s.eval(x), p.eval(x) + q.eval(x));
        }
        // Adding a polynomial to itself gives zero (characteristic 2).
        assert!(p.add(&p).is_zero());
    }

    #[test]
    fn mul_is_pointwise() {
        let p = Polynomial::new(vec![gf(1), gf(2), gf(3)]);
        let q = Polynomial::new(vec![gf(5), gf(7)]);
        let m = p.mul(&q);
        assert_eq!(m.degree(), Some(3));
        for x in Gf256::all_elements().step_by(13) {
            assert_eq!(m.eval(x), p.eval(x) * q.eval(x));
        }
        assert!(p.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let p = Polynomial::new(vec![gf(0x12), gf(0x34), gf(0x56), gf(0x78)]);
        let points: Vec<(Gf256, Gf256)> = (0u8..4).map(|i| (gf(i), p.eval(gf(i)))).collect();
        let q = Polynomial::interpolate(&points).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn interpolation_through_arbitrary_points() {
        let points = vec![
            (gf(1), gf(9)),
            (gf(2), gf(200)),
            (gf(7), gf(0)),
            (gf(9), gf(77)),
        ];
        let q = Polynomial::interpolate(&points).unwrap();
        assert!(q.degree().unwrap_or(0) < points.len());
        for (x, y) in points {
            assert_eq!(q.eval(x), y);
        }
    }

    #[test]
    fn interpolation_rejects_duplicate_x() {
        let points = vec![(gf(1), gf(9)), (gf(1), gf(10))];
        assert_eq!(
            Polynomial::interpolate(&points),
            Err(GfError::DuplicateInterpolationPoint)
        );
    }

    #[test]
    fn display_readable() {
        let p = Polynomial::new(vec![gf(3), gf(0), gf(1)]);
        assert_eq!(p.to_string(), "0x03 + 0x01*x^2");
        assert_eq!(Polynomial::zero().to_string(), "0");
    }
}
